"""``repro.obs`` — deterministic observability for the whole stack.

One :class:`Observability` object threads three things through every tier
(client populations → links → gateways → transport → fleet → cards):

* a :class:`~repro.obs.context.Tracer` collecting per-request span trees
  (and per-control-plane-order traces) with seeded head-based sampling;
* a :class:`~repro.obs.registry.MetricsRegistry` that owns every counter
  the layers used to hand-roll, under the canonical names in
  :mod:`repro.obs.names`;
* exporters (:mod:`repro.obs.export`) emitting Chrome ``trace_event`` JSON
  and flat metrics snapshots, byte-identical across processes for a fixed
  seed.

Determinism contract: with ``enabled=False`` (and with no ``Observability``
installed at all — the default everywhere) instrumentation sites reduce to
one ``is None`` check, no RNG is consumed, no kernel event is spawned, and
every schedule digest and BENCH fingerprint is byte-identical to the
pre-observability repo.  With it enabled, tracing still spawns no kernel
work and consumes no randomness, so even *traced* runs keep their schedule
digests — the property the perf-smoke ``obs`` section asserts.

Usage::

    from repro.core.builder import build_fleet, build_frontdoor
    from repro.obs import Observability

    obs = Observability(sample_rate=0.1, seed=7)
    fleet = build_fleet(cards=2, observability=obs)
    ...
    export_chrome_trace(obs.spans, "trace.json")
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.obs import names
from repro.obs.context import Span, TraceContext, Tracer
from repro.obs.export import (
    chrome_trace_json,
    export_chrome_trace,
    export_metrics_snapshot,
    metrics_snapshot_json,
    to_chrome_trace,
    trace_fingerprint,
)
from repro.obs.incident import (
    FlightRecorder,
    Incident,
    export_incidents,
    incidents_fingerprint,
    incidents_json,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MetricsRegistry,
)
from repro.obs.slo import Alert, BurnWindow, SloEngine, SloSpec
from repro.obs.tail import TailSampler


class Observability:
    """The one knob: tracer + registry + policy, handed to the builders."""

    def __init__(
        self,
        enabled: bool = True,
        sample_rate: float = 1.0,
        seed: int = 0,
        capacity: int = 1_000_000,
        bridge_device: bool = True,
        registry: Optional[MetricsRegistry] = None,
        slos: Optional[Sequence[SloSpec]] = None,
        tail: Optional[TailSampler] = None,
    ) -> None:
        self.enabled = enabled
        #: Bridge per-card device trace events (PCI/MCU/reconfig/codec
        #: activity) into ``card.*`` sub-spans of each service span.
        self.bridge_device = bridge_device
        self.tracer = Tracer(sample_rate=sample_rate, seed=seed, capacity=capacity)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.slo_engine: Optional[SloEngine] = None
        self.recorder: Optional[FlightRecorder] = None
        self.tail: Optional[TailSampler] = None
        if enabled:
            tracer = self.tracer
            self.registry.gauge(
                names.GAUGE_SPANS_RECORDED, fn=lambda: len(tracer.spans)
            )
            self.registry.gauge(
                names.GAUGE_SPANS_DROPPED, fn=lambda: tracer.dropped
            )
            if tail is True:
                tail = TailSampler()
            if tail is not None:
                self._install_tail(tail)
            if slos:
                self.install_slos(slos)

    # --------------------------------------------------------- installation
    def install_slos(self, specs: Sequence[SloSpec]) -> "SloEngine":
        """Build the SLO engine + flight recorder (idempotent per instance).

        Called from ``__init__`` (``Observability(slos=[...])``) or by the
        builders when specs arrive after construction
        (``build_frontdoor(fleet, slos=[...])``).
        """
        if not self.enabled:
            raise ValueError("cannot install SLOs on a disabled Observability")
        if self.slo_engine is not None:
            raise ValueError("SLOs are already installed on this Observability")
        engine = SloEngine(specs, registry=self.registry)
        recorder = FlightRecorder(registry=self.registry)
        engine.on_alert = recorder.on_alert
        engine.on_resolve = recorder.on_resolved
        self.tracer._observer = recorder.on_span
        if self.tail is not None:
            self.tail.incident_windows = recorder.incident_windows
            self.tail.on_retain = recorder.on_retained_trace
        self.slo_engine = engine
        self.recorder = recorder
        return engine

    def _install_tail(self, sampler: TailSampler) -> None:
        self.tail = sampler
        self.tracer.tail_sampler = sampler
        self.registry.gauge(
            names.GAUGE_TAIL_RETAINED, fn=lambda: sampler.retained_traces
        )
        self.registry.gauge(
            names.GAUGE_TAIL_DISCARDED, fn=lambda: sampler.discarded_traces
        )
        self.registry.gauge(
            names.GAUGE_TAIL_BUDGET_DROPPED,
            fn=lambda: sampler.budget_dropped_traces,
        )
        if self.recorder is not None:
            sampler.incident_windows = self.recorder.incident_windows
            sampler.on_retain = self.recorder.on_retained_trace

    # -------------------------------------------------------------- teardown
    def finish(self, now_ns: float) -> None:
        """End-of-run settlement: flush the tail sampler's rootless traces
        and close still-open incidents.  No-op without SLOs/tail (or when
        disabled), and safe to call more than once."""
        if not self.enabled:
            return
        if self.tail is not None:
            self.tail.flush(self.tracer)
        if self.recorder is not None:
            self.recorder.flush(now_ns)

    # --------------------------------------------------------------- queries
    @property
    def spans(self):
        return self.tracer.spans

    @property
    def alerts(self):
        return self.slo_engine.alerts if self.slo_engine is not None else []

    @property
    def incidents(self):
        return self.recorder.incidents if self.recorder is not None else []

    def snapshot(self):
        return self.registry.snapshot()


__all__ = [
    "Alert",
    "BurnWindow",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Incident",
    "LabeledCounter",
    "MetricsRegistry",
    "Observability",
    "SloEngine",
    "SloSpec",
    "Span",
    "TailSampler",
    "TraceContext",
    "Tracer",
    "chrome_trace_json",
    "export_chrome_trace",
    "export_incidents",
    "export_metrics_snapshot",
    "incidents_fingerprint",
    "incidents_json",
    "metrics_snapshot_json",
    "names",
    "to_chrome_trace",
    "trace_fingerprint",
]
