"""Canonical span and metric names — the single source of truth.

Every instrument registered on a :class:`~repro.obs.registry.MetricsRegistry`
and every span recorded on a :class:`~repro.obs.context.Tracer` takes its
name from this module, so the naming convention cannot silently fork: the
lint test asserts that every constant here matches ``NAME_PATTERN``, that no
two constants collide, and that a fully-instrumented fleet + front door only
ever registers/records names derived from this module.

Convention: lower-case dotted paths, ``[a-z0-9_.]`` only, most-significant
subsystem first (``fleet.``, ``net.``, ``card.``, ``order.``, ``obs.``).
Device-level sub-spans bridged from the per-card
:class:`~repro.sim.trace.TraceRecorder` are dynamic —
``card.<component>.<action>`` via :func:`device_span_name`, which sanitises
component names like ``config-module`` into ``config_module``.
"""

from __future__ import annotations

import re

#: Every span/metric name must match this (the lint the registry enforces).
NAME_PATTERN = r"^[a-z0-9_.]+$"
NAME_RE = re.compile(NAME_PATTERN)

# --------------------------------------------------------------------- spans
#: Root span of one logical client request (network path): first transport
#: send to terminal verdict delivery.
SPAN_CLIENT_REQUEST = "client.request"
#: Root span of one request submitted directly to the fleet (no front door):
#: dispatcher arrival to terminal outcome.
SPAN_FLEET_REQUEST = "fleet.request"
#: One packet's life on a link: send() to far-end delivery.
SPAN_LINK_TRANSIT = "net.link.transit"
#: One transport attempt: uplink send to the verdict/timeout that ended it.
SPAN_NET_ATTEMPT = "net.attempt"
#: One retry backoff sleep.
SPAN_NET_BACKOFF = "net.backoff"
#: Gateway admission verdict (zero-duration; ``verdict`` attribute).
SPAN_GW_ADMISSION = "gw.admission"
#: Dispatcher enqueue to worker pop — the queue-wait the E12 story hinges on.
SPAN_FLEET_QUEUE = "fleet.queue"
#: Card service: worker starts serving to service-time elapsed.
SPAN_CARD_SERVICE = "card.service"
#: Zero-duration markers for non-completion terminal events and bounces.
SPAN_FLEET_FAILOVER = "fleet.failover"
SPAN_FLEET_REJECTED = "fleet.rejected"
SPAN_FLEET_EXPIRED = "fleet.expired"
#: Control-plane order spans (each order is its own trace) — the ROADMAP's
#: order-level trace hook.
SPAN_ORDER_SCRUB = "order.scrub"
SPAN_ORDER_HEAL = "order.heal"
SPAN_ORDER_DEFRAG = "order.defrag"
SPAN_ORDER_MIGRATE_CAPTURE = "order.migrate.capture"
SPAN_ORDER_MIGRATE_RESTORE = "order.migrate.restore"
SPAN_ORDER_MIGRATE_RELEASE = "order.migrate.release"
#: Gateway health-probe tick (zero-duration; ``cards_up`` attribute).
SPAN_ORDER_PROBE = "order.probe"

#: The static span vocabulary (dynamic ``card.*`` bridge names excluded).
SPAN_NAMES = (
    SPAN_CLIENT_REQUEST,
    SPAN_FLEET_REQUEST,
    SPAN_LINK_TRANSIT,
    SPAN_NET_ATTEMPT,
    SPAN_NET_BACKOFF,
    SPAN_GW_ADMISSION,
    SPAN_FLEET_QUEUE,
    SPAN_CARD_SERVICE,
    SPAN_FLEET_FAILOVER,
    SPAN_FLEET_REJECTED,
    SPAN_FLEET_EXPIRED,
    SPAN_ORDER_SCRUB,
    SPAN_ORDER_HEAL,
    SPAN_ORDER_DEFRAG,
    SPAN_ORDER_MIGRATE_CAPTURE,
    SPAN_ORDER_MIGRATE_RESTORE,
    SPAN_ORDER_MIGRATE_RELEASE,
    SPAN_ORDER_PROBE,
)

#: Prefix of the dynamic device-bridge span namespace.
DEVICE_SPAN_PREFIX = "card."

_SANITISE_RE = re.compile(r"[^a-z0-9_.]")


def device_span_name(component: str, action: str) -> str:
    """Bridge a per-card trace event identity into the span namespace.

    ``("config-module", "reconfigure")`` → ``card.config_module.reconfigure``.
    """
    key = f"{component}.{action}".lower().replace("-", "_")
    return DEVICE_SPAN_PREFIX + _SANITISE_RE.sub("_", key)


# ------------------------------------------------------------------- metrics
# Fleet reliability / control plane.
METRIC_CARD_FAILURES = "fleet.cards.failures"
METRIC_CARD_DEGRADATIONS = "fleet.cards.degradations"
METRIC_CARD_RECOVERIES = "fleet.cards.recoveries"
METRIC_FAILOVERS = "fleet.failovers"
METRIC_FAILOVERS_BY_REASON = "fleet.failovers.by_reason"
METRIC_FAILOVERS_BY_TENANT = "fleet.failovers.by_tenant"
METRIC_HEAL_ORDERS = "fleet.heal.orders"
METRIC_HEALS_COMPLETED = "fleet.heal.completed"
METRIC_HEALS_SKIPPED = "fleet.heal.skipped"
METRIC_HAZARD_COMPLETIONS = "fleet.hazard.completions"
# Migration / defragmentation.
METRIC_MIGRATION_ORDERS = "fleet.migration.orders"
METRIC_MIGRATIONS_COMPLETED = "fleet.migration.completed"
METRIC_MIGRATIONS_FAILED = "fleet.migration.failed"
METRIC_MIGRATION_FAILURES_BY_REASON = "fleet.migration.failures.by_reason"
METRIC_MIGRATED_FRAMES = "fleet.migration.frames"
METRIC_MIGRATED_BYTES = "fleet.migration.bytes"
METRIC_MIGRATION_BYTE_DIFFS = "fleet.migration.byte_diffs"
# Deadlines + network front door.
#: Deadline-expiry counters ("expirations", not "expired": the terminal
#: outcome *marker span* already owns ``fleet.expired``, and the lint keeps
#: the two vocabularies collision-free — same pattern as ``fleet.failover``
#: the event vs ``fleet.failovers`` the counter).
METRIC_EXPIRED = "fleet.expirations"
METRIC_EXPIRED_BY_TENANT = "fleet.expirations.by_tenant"
METRIC_NET_REQUESTS = "net.requests"
METRIC_NET_REQUESTS_BY_PRIORITY = "net.requests.by_priority"
METRIC_NET_ATTEMPTS = "net.attempts"
METRIC_NET_RETRIES = "net.retries"
METRIC_NET_TIMEOUTS = "net.timeouts"
METRIC_NET_COMPLETED = "net.completed"
METRIC_NET_COMPLETED_BY_PRIORITY = "net.completed.by_priority"
METRIC_NET_FAILED = "net.failed"
METRIC_NET_FAILURES_BY_REASON = "net.failures.by_reason"
METRIC_NET_SHED = "net.shed"
METRIC_NET_SHED_BY_PRIORITY = "net.shed.by_priority"
METRIC_BREAKER_OPENS = "net.breaker.opens"
METRIC_BREAKER_FAST_FAILS = "net.breaker.fast_fails"
METRIC_DUPLICATES_SUPPRESSED = "net.gateway.duplicates_suppressed"
METRIC_DUPLICATES_SERVED = "net.gateway.duplicates_served"
# Callback gauges registered by an observed Fleet.
GAUGE_CARDS_DOWN = "fleet.cards.down"
GAUGE_QUEUE_OUTSTANDING = "fleet.queue.outstanding"
GAUGE_SCRUB_PASSES = "fleet.scrub.passes"
GAUGE_SCRUB_FRAMES_CHECKED = "fleet.scrub.frames_checked"
GAUGE_SCRUB_DETECTED = "fleet.scrub.detected"
GAUGE_SCRUB_CORRECTED = "fleet.scrub.corrected"
GAUGE_SCRUB_UNCORRECTABLE = "fleet.scrub.uncorrectable"
GAUGE_HAZARD_EXECUTIONS = "fleet.hazard.executions"
GAUGE_DEFRAG_PASSES = "fleet.defrag.passes"
GAUGE_DEFRAG_MOVES = "fleet.defrag.moves"
GAUGE_SOJOURN_P50 = "fleet.sojourn.p50_ns"
GAUGE_SOJOURN_P95 = "fleet.sojourn.p95_ns"
GAUGE_SOJOURN_P99 = "fleet.sojourn.p99_ns"
# Callback gauges registered by an observed FrontDoor.
GAUGE_LINK_OFFERED = "net.link.offered"
GAUGE_LINK_DELIVERED = "net.link.delivered"
GAUGE_LINK_LOST = "net.link.lost"
GAUGE_LINK_DROPPED = "net.link.dropped"
GAUGE_GATEWAY_ADMITTED = "net.gateway.admitted"
GAUGE_BREAKERS_OPEN = "net.breaker.open_now"
# The observability layer's own accounting.
GAUGE_SPANS_RECORDED = "obs.spans.recorded"
GAUGE_SPANS_DROPPED = "obs.spans.dropped"
# SLO engine / multi-window burn-rate alerting (PR 9).  ``slo.*`` is metric
# vocabulary only — alerts are records, not spans — and the lint asserts it
# stays disjoint from the span namespace.
METRIC_SLO_ALERTS = "slo.alerts"
METRIC_SLO_ALERTS_BY_SLO = "slo.alerts.by_slo"
METRIC_SLO_ALERTS_RESOLVED = "slo.alerts.resolved"
GAUGE_SLO_WORST_BURN = "slo.burn.worst"
# Incident flight recorder.
METRIC_INCIDENTS_OPENED = "incident.opened"
METRIC_INCIDENTS_OVERFLOWED = "incident.overflowed"
GAUGE_INCIDENTS_OPEN = "incident.open_now"
# Tail-based trace sampling accounting.
GAUGE_TAIL_RETAINED = "obs.tail.retained_traces"
GAUGE_TAIL_DISCARDED = "obs.tail.discarded_traces"
GAUGE_TAIL_BUDGET_DROPPED = "obs.tail.budget_dropped_traces"

#: The static metric vocabulary (every name a fleet/front door registers).
METRIC_NAMES = tuple(
    value
    for key, value in sorted(globals().items())
    if key.startswith(("METRIC_", "GAUGE_"))
)


def all_names() -> tuple:
    """Every canonical name (spans + metrics) — what the lint test sweeps."""
    return SPAN_NAMES + METRIC_NAMES
