"""Distributed-trace primitives: spans, trace contexts and the tracer.

The tracing model is deliberately simulator-shaped rather than a clone of a
wall-clock tracing SDK:

* **Completed spans only.**  Instrumentation sites know both endpoints of
  every interval they care about (the kernel clock is cheap to read and
  never goes backwards), so spans are recorded once, finished, instead of
  through open/close bookkeeping.  A parent that must be recorded *after*
  its children (e.g. a root spanning a whole request) pre-allocates its
  span id with :meth:`Tracer.next_span_id` and passes it to the children.
* **Deterministic identity.**  Span ids come off a monotonic per-tracer
  counter; the simulation is single-threaded, so allocation order — and
  therefore the whole exported trace — is a pure function of the seed and
  workload.  Network requests use their transport ``request_id`` as the
  trace id; traces born inside the fleet (direct submissions, control-plane
  orders) draw *negative* ids from :meth:`Tracer.new_trace_id` so the two
  namespaces can never collide.
* **Seeded head-based sampling.**  Whether a trace is recorded is decided
  once, at its root, by hashing ``seed | trace_id`` (CRC-32) against the
  sample rate — no RNG stream is consumed, so enabling tracing can never
  perturb a workload's randomness, and the same (seed, rate) pair samples
  the same requests in every process.
* **Bounded memory.**  ``capacity`` caps retained spans; later spans are
  counted in ``dropped`` instead of retained, which with sampling is what
  keeps 10^6-request runs affordable.

All timestamps are integer nanoseconds on whatever clock the recording site
used (the shared kernel clock everywhere except bridged device sub-spans,
which are re-based onto kernel time by the bridge before recording).
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One completed, immutable-by-convention interval in a trace."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_ns", "end_ns", "attrs")

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        start_ns: int,
        end_ns: int,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.attrs = attrs

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parent = "" if self.parent_id is None else f" parent={self.parent_id}"
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}{parent}, "
            f"{self.start_ns}..{self.end_ns})"
        )


class TraceContext:
    """The propagated identity of one trace: trace id + parent span id.

    Carried across hops (transport → packet → gateway → fleet) by whatever
    side channel the hop already has; equality/ordering are value-based so
    contexts can key dicts in tests.
    """

    __slots__ = ("trace_id", "parent_id")

    def __init__(self, trace_id: int, parent_id: Optional[int]) -> None:
        self.trace_id = trace_id
        self.parent_id = parent_id

    def child(self, parent_id: int) -> "TraceContext":
        """The context a child hop should propagate onward."""
        return TraceContext(self.trace_id, parent_id)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.parent_id == other.parent_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.parent_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext(trace={self.trace_id}, parent={self.parent_id})"


class Tracer:
    """Collects spans for every sampled trace of one observed system."""

    def __init__(
        self,
        sample_rate: float = 1.0,
        seed: int = 0,
        capacity: int = 1_000_000,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.sample_rate = sample_rate
        self.seed = seed
        self.capacity = capacity
        self.spans: List[Span] = []
        self.dropped = 0
        self._next_span = 1
        self._next_trace = 1
        #: Inclusive CRC-32 acceptance threshold for head-based sampling.
        self._threshold = int(sample_rate * 0xFFFFFFFF)
        #: Optional tail-based retention policy (a
        #: :class:`~repro.obs.tail.TailSampler`).  When set, recorded spans
        #: are buffered per trace and only committed to ``spans`` once the
        #: whole trace is judged worth keeping.
        self.tail_sampler = None
        #: Optional per-span observer (the incident flight recorder's feed).
        #: Sees every recorded span regardless of tail retention.
        self._observer = None

    # ------------------------------------------------------------- identity
    def new_trace_id(self) -> int:
        """A fresh trace id for a trace born inside the system (negative —
        the namespace that can never collide with transport request ids)."""
        trace_id = -self._next_trace
        self._next_trace += 1
        return trace_id

    def next_span_id(self) -> int:
        """Pre-allocate a span id (for parents recorded after children)."""
        span_id = self._next_span
        self._next_span += 1
        return span_id

    def sampled(self, trace_id: int) -> bool:
        """Head-based sampling decision — pure function of (seed, trace_id)."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        key = zlib.crc32(b"%d|%d" % (self.seed, trace_id))
        return key <= self._threshold

    # ------------------------------------------------------------ recording
    def record(
        self,
        name: str,
        trace_id: int,
        parent_id: Optional[int],
        start_ns: float,
        end_ns: float,
        span_id: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        """Record one completed span; returns its span id.

        ``span_id`` accepts an id pre-allocated with :meth:`next_span_id`;
        otherwise a fresh one is drawn.  Fractional clock readings are
        rounded to integer nanoseconds (rounding is monotonic, so the
        ``end >= start`` invariant survives).
        """
        if end_ns < start_ns:
            raise ValueError(f"span {name!r} ends before it starts")
        if span_id is None:
            span_id = self._next_span
            self._next_span = span_id + 1
        tail = self.tail_sampler
        if tail is None and self._observer is None:
            # Historical fast path: head sampling only.
            if len(self.spans) >= self.capacity:
                self.dropped += 1
                return span_id
            self.spans.append(
                Span(
                    name,
                    trace_id,
                    span_id,
                    parent_id,
                    int(round(start_ns)),
                    int(round(end_ns)),
                    attrs,
                )
            )
            return span_id
        span = Span(
            name,
            trace_id,
            span_id,
            parent_id,
            int(round(start_ns)),
            int(round(end_ns)),
            attrs,
        )
        if self._observer is not None:
            self._observer(span)
        if tail is not None:
            tail.offer(self, span)
        elif len(self.spans) >= self.capacity:
            self.dropped += 1
        else:
            self.spans.append(span)
        return span_id

    def commit(self, spans: List[Span]) -> int:
        """Retain already-constructed spans (the tail sampler's keep path).

        Honours ``capacity`` the same way :meth:`record` does; returns how
        many spans were actually retained.
        """
        room = self.capacity - len(self.spans)
        if room <= 0:
            self.dropped += len(spans)
            return 0
        kept = spans[:room]
        self.spans.extend(kept)
        overflow = len(spans) - len(kept)
        if overflow > 0:
            self.dropped += overflow
        return len(kept)

    def marker(
        self,
        name: str,
        trace_id: int,
        parent_id: Optional[int],
        at_ns: float,
        **attrs: Any,
    ) -> int:
        """A zero-duration span (an event that happened *at* an instant)."""
        return self.record(name, trace_id, parent_id, at_ns, at_ns, **attrs)

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    def by_name(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def by_trace(self, trace_id: int) -> List[Span]:
        return [span for span in self.spans if span.trace_id == trace_id]

    def trace_ids(self) -> List[int]:
        """Distinct trace ids in first-seen order."""
        seen: Dict[int, None] = {}
        for span in self.spans:
            if span.trace_id not in seen:
                seen[span.trace_id] = None
        return list(seen)
