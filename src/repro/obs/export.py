"""Exporters: Chrome ``trace_event`` JSON and flat metrics snapshots.

Both emit deterministically — spans are sorted by (trace id, start, span
id), JSON keys are sorted, separators fixed — so the exported bytes for a
fixed seed are identical across processes, which is what the byte-identity
regression asserts and what makes exported traces diffable artefacts.

The Chrome format (load via ``chrome://tracing`` or https://ui.perfetto.dev)
maps one trace to one "thread" row: ``pid`` is the sampled trace's ordinal,
``tid`` the trace id, and each span a complete ``"ph": "X"`` event with
microsecond timestamps (the format's native unit; nanosecond precision is
preserved as fractional microseconds).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.obs.context import Span


def sorted_spans(spans: Iterable[Span]) -> List[Span]:
    """Canonical export order: by trace, then time, then allocation order."""
    return sorted(spans, key=lambda s: (s.trace_id, s.start_ns, s.span_id))


def to_chrome_trace(spans: Iterable[Span]) -> Dict[str, object]:
    """Build a Chrome ``trace_event`` document from *spans*."""
    events: List[dict] = []
    ordinals: Dict[int, int] = {}
    for span in sorted_spans(spans):
        ordinal = ordinals.setdefault(span.trace_id, len(ordinals))
        args: Dict[str, object] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key in sorted(span.attrs):
            args[key] = span.attrs[key]
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "pid": ordinal,
                "tid": span.trace_id,
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "args": args,
            }
        )
    return {"displayTimeUnit": "ns", "traceEvents": events}


def chrome_trace_json(spans: Iterable[Span]) -> str:
    """The exported document as canonical JSON text."""
    return json.dumps(
        to_chrome_trace(spans), sort_keys=True, separators=(",", ":")
    )


def export_chrome_trace(spans: Iterable[Span], path) -> int:
    """Write the Chrome trace JSON to *path*; returns the byte count."""
    text = chrome_trace_json(spans) + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return len(text)


def metrics_snapshot_json(registry) -> str:
    """A registry snapshot as canonical JSON text (sorted keys)."""
    return json.dumps(registry.snapshot(), sort_keys=True, indent=2)


def export_metrics_snapshot(registry, path) -> int:
    """Write the flat metrics snapshot to *path*; returns the byte count."""
    text = metrics_snapshot_json(registry) + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return len(text)


def trace_fingerprint(spans: Iterable[Span], limit: Optional[int] = None) -> str:
    """A short content hash over the canonical span stream.

    Hashes every span (or the first *limit* in canonical order) plus the
    total count, so reorderings, attribute drift and silent truncation all
    change the fingerprint.  The cross-process byte-identity tests and the
    perf-smoke ``obs`` section compare these.
    """
    import hashlib

    ordered = sorted_spans(spans)
    total = len(ordered)
    if limit is not None:
        ordered = ordered[:limit]
    digest = hashlib.sha256()
    digest.update(b"count|%d" % total)
    for span in ordered:
        digest.update(
            (
                f"|{span.name}|{span.trace_id}|{span.span_id}|{span.parent_id}"
                f"|{span.start_ns}|{span.end_ns}|{sorted(span.attrs.items())!r}"
            ).encode()
        )
    return digest.hexdigest()
