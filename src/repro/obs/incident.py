"""The incident flight recorder: evidence capture keyed to alert-fire.

When a burn-rate :class:`~repro.obs.slo.Alert` fires, the interesting data
is mostly in the *past* — the card kill that started the burn, the failovers
that followed, the heal orders already in flight.  The
:class:`FlightRecorder` therefore keeps small bounded rings of recent
symptom/control-plane spans and fault events at all times (a flight
recorder, not a camera you turn on after the crash), and on alert-fire
snapshots them into an :class:`Incident`:

* a correlated **timeline** — fault events (kills / wedges / upsets /
  stalls), ``order.*`` control-plane spans, symptom markers and the
  alert/resolve edges, merged in time order on the simulated clock;
* **metric deltas** — the registry snapshot at open vs. close, reduced to
  the numeric keys that moved;
* **retained traces** — summaries of the tail-sampled traces whose extent
  overlaps the incident window (the evidence head sampling throws away).

Incidents export as canonical JSON (:func:`incidents_json` /
:func:`export_incidents`) next to the Chrome trace, with a short
:func:`incidents_fingerprint` for BENCH files and cross-process tests.

Determinism: the recorder only folds over streams that are already
deterministic (spans, fault callbacks, registry state) using the simulated
clock — no wall clock, no RNG, no kernel events — so the exported JSON is
byte-identical across processes for a fixed workload.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Any, Dict, List, Optional

from repro.obs import names
from repro.obs.context import Span
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import Alert

#: Span names worth a timeline entry: control-plane orders + failure markers.
_TIMELINE_MARKERS = frozenset(
    (
        names.SPAN_FLEET_FAILOVER,
        names.SPAN_FLEET_REJECTED,
        names.SPAN_FLEET_EXPIRED,
    )
)
_ORDER_PREFIX = "order."


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


class Incident:
    """One opened (and eventually closed) incident with its evidence."""

    __slots__ = (
        "incident_id",
        "slo",
        "window",
        "opened_ns",
        "closed_ns",
        "burn_fast",
        "burn_slow",
        "timeline",
        "dropped_timeline_events",
        "metric_deltas",
        "traces",
        "_snapshot_at_open",
    )

    def __init__(self, incident_id: int, alert: Alert, opened_ns: int) -> None:
        self.incident_id = incident_id
        self.slo = alert.slo
        self.window = alert.window
        self.opened_ns = opened_ns
        self.closed_ns: Optional[int] = None
        self.burn_fast = alert.burn_fast
        self.burn_slow = alert.burn_slow
        #: Time-ordered ``{"t_ns": ..., "kind": ..., ...}`` event dicts.
        self.timeline: List[Dict[str, Any]] = []
        self.dropped_timeline_events = 0
        self.metric_deltas: Dict[str, float] = {}
        #: Summaries of tail-retained traces overlapping this incident.
        self.traces: List[Dict[str, Any]] = []
        self._snapshot_at_open: Dict[str, float] = {}

    @property
    def open(self) -> bool:
        return self.closed_ns is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "incident_id": self.incident_id,
            "slo": self.slo,
            "window": self.window,
            "opened_ns": self.opened_ns,
            "closed_ns": self.closed_ns,
            "burn_fast": round(self.burn_fast, 6),
            "burn_slow": round(self.burn_slow, 6),
            "timeline": self.timeline,
            "dropped_timeline_events": self.dropped_timeline_events,
            "metric_deltas": dict(sorted(self.metric_deltas.items())),
            "traces": self.traces,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"closed@{self.closed_ns}"
        return f"Incident(#{self.incident_id} {self.slo!r} @{self.opened_ns}, {state})"


class FlightRecorder:
    """Bounded always-on rings + per-alert incident capture."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        span_ring: int = 512,
        fault_ring: int = 256,
        max_incidents: int = 16,
        max_timeline_events: int = 256,
        max_traces_per_incident: int = 32,
        lookback_ns: float = 2_000_000.0,
    ) -> None:
        if max_incidents < 1:
            raise ValueError("max_incidents must be positive")
        self._span_ring: deque = deque(maxlen=span_ring)
        self._fault_ring: deque = deque(maxlen=fault_ring)
        self.max_incidents = max_incidents
        self.max_timeline_events = max_timeline_events
        self.max_traces_per_incident = max_traces_per_incident
        self.lookback_ns = float(lookback_ns)
        self.incidents: List[Incident] = []
        self.overflowed_alerts = 0
        self._registry = registry
        if registry is not None:
            self._opened = registry.counter(names.METRIC_INCIDENTS_OPENED)
            self._overflowed = registry.counter(names.METRIC_INCIDENTS_OVERFLOWED)
            recorder = self
            registry.gauge(
                names.GAUGE_INCIDENTS_OPEN,
                fn=lambda: sum(1 for incident in recorder.incidents if incident.open),
            )
        else:
            self._opened = None
            self._overflowed = None

    # ----------------------------------------------------------------- feeds
    def on_span(self, span: Span) -> None:
        """Tracer observer: sees *every* recorded span (pre tail decision)."""
        name = span.name
        if name not in _TIMELINE_MARKERS and not name.startswith(_ORDER_PREFIX):
            return
        self._span_ring.append(span)
        for incident in self.incidents:
            if incident.open:
                self._append_timeline(incident, self._span_event(span))

    def on_fault(self, kind: str, card: str, now_ns: float, **attrs: Any) -> None:
        """A fault-domain event: card kill, wedge, upset, port stall."""
        event = {"t_ns": int(now_ns), "kind": "fault", "fault": kind, "card": card}
        for key in sorted(attrs):
            event[key] = _json_safe(attrs[key])
        self._fault_ring.append(event)
        for incident in self.incidents:
            if incident.open:
                self._append_timeline(incident, dict(event))

    def on_alert(self, alert: Alert, now_ns: int) -> None:
        """SLO engine hook: open an incident and seed it from the rings."""
        if len(self.incidents) >= self.max_incidents:
            self.overflowed_alerts += 1
            if self._overflowed is not None:
                self._overflowed.inc()
            return
        incident = Incident(len(self.incidents) + 1, alert, now_ns)
        horizon = now_ns - self.lookback_ns
        events: List[Dict[str, Any]] = []
        for fault in self._fault_ring:
            if fault["t_ns"] >= horizon:
                events.append(dict(fault))
        for span in self._span_ring:
            if span.end_ns >= horizon:
                events.append(self._span_event(span))
        events.sort(key=lambda event: (event["t_ns"], event["kind"]))
        events.append(
            {
                "t_ns": now_ns,
                "kind": "alert",
                "slo": alert.slo,
                "burn_fast": round(alert.burn_fast, 6),
                "burn_slow": round(alert.burn_slow, 6),
            }
        )
        for event in events:
            self._append_timeline(incident, event)
        if self._registry is not None:
            incident._snapshot_at_open = _flatten_snapshot(self._registry.snapshot())
        self.incidents.append(incident)
        if self._opened is not None:
            self._opened.inc()

    def on_resolved(self, alert: Alert, now_ns: int) -> None:
        """SLO engine hook: close the matching open incident."""
        for incident in self.incidents:
            if incident.open and incident.slo == alert.slo and incident.window == alert.window:
                self._close(incident, now_ns, "resolved")
                return

    def on_retained_trace(
        self, trace_id: int, spans: List[Span], reason: str, root: Optional[Span]
    ) -> None:
        """Tail-sampler hook: attach overlapping retained traces."""
        if not spans:
            return
        start = min(span.start_ns for span in spans)
        end = max(span.end_ns for span in spans)
        summary = {
            "trace_id": trace_id,
            "reason": reason,
            "spans": len(spans),
            "start_ns": start,
            "end_ns": end,
            "root": None if root is None else root.name,
            "outcome": None
            if root is None
            else _json_safe(root.attrs.get("outcome")),
        }
        for incident in self.incidents:
            if len(incident.traces) >= self.max_traces_per_incident:
                continue
            window_start = incident.opened_ns - self.lookback_ns
            window_end = incident.closed_ns
            if end >= window_start and (window_end is None or start <= window_end):
                incident.traces.append(dict(summary))

    def flush(self, now_ns: float) -> None:
        """Close any still-open incidents (end of run)."""
        for incident in self.incidents:
            if incident.open:
                self._close(incident, int(now_ns), "run_end")

    # -------------------------------------------------------------- plumbing
    def incident_windows(self) -> List[tuple]:
        """``(opened_ns - lookback, closed_ns | None)`` windows for the
        tail sampler's incident-overlap retention check."""
        return [
            (incident.opened_ns - self.lookback_ns, incident.closed_ns)
            for incident in self.incidents
        ]

    def _span_event(self, span: Span) -> Dict[str, Any]:
        event: Dict[str, Any] = {
            "t_ns": span.end_ns,
            "kind": "span",
            "span": span.name,
            "trace_id": span.trace_id,
            "start_ns": span.start_ns,
        }
        for key in sorted(span.attrs):
            event[key] = _json_safe(span.attrs[key])
        return event

    def _append_timeline(self, incident: Incident, event: Dict[str, Any]) -> None:
        if len(incident.timeline) >= self.max_timeline_events:
            incident.dropped_timeline_events += 1
            return
        incident.timeline.append(event)

    def _close(self, incident: Incident, now_ns: int, why: str) -> None:
        incident.closed_ns = now_ns
        self._append_timeline(incident, {"t_ns": now_ns, "kind": why})
        if self._registry is not None and incident._snapshot_at_open:
            after = _flatten_snapshot(self._registry.snapshot())
            before = incident._snapshot_at_open
            deltas: Dict[str, float] = {}
            for key, value in after.items():
                delta = value - before.get(key, 0.0)
                if delta:
                    deltas[key] = round(delta, 6)
            incident.metric_deltas = deltas
            incident._snapshot_at_open = {}

    # --------------------------------------------------------------- queries
    @property
    def open_incidents(self) -> List[Incident]:
        return [incident for incident in self.incidents if incident.open]


def _flatten_snapshot(snapshot: Dict[str, object]) -> Dict[str, float]:
    """Reduce a registry snapshot to flat numeric ``name[.label]`` keys."""
    flat: Dict[str, float] = {}
    for name, value in snapshot.items():
        if isinstance(value, dict):
            for label, sub in value.items():
                if isinstance(sub, (int, float)):
                    flat[f"{name}.{label}"] = float(sub)
        elif isinstance(value, (int, float)):
            flat[name] = float(value)
    return flat


# ------------------------------------------------------------------- export
def incidents_json(recorder: FlightRecorder) -> str:
    """Canonical JSON for the incident list (byte-stable across processes)."""
    payload = {
        "incidents": [incident.to_dict() for incident in recorder.incidents],
        "overflowed_alerts": recorder.overflowed_alerts,
    }
    return json.dumps(payload, sort_keys=True, indent=2)


def export_incidents(recorder: FlightRecorder, path: str) -> str:
    """Write the incident JSON next to the Chrome trace; returns the JSON."""
    text = incidents_json(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


def incidents_fingerprint(recorder: FlightRecorder) -> str:
    """Short digest of the canonical incident JSON (BENCH / regression)."""
    return hashlib.sha256(incidents_json(recorder).encode()).hexdigest()[:16]


__all__ = [
    "FlightRecorder",
    "Incident",
    "export_incidents",
    "incidents_fingerprint",
    "incidents_json",
]
