"""Tail-based trace sampling: keep the *interesting* traces, whole.

Head sampling (the :class:`~repro.obs.context.Tracer` default) decides at a
trace's root whether to record it — a fair random slice, but exactly the
wrong slice when something breaks: the one slow request in ten thousand is
sampled at the same rate as the boring ones.  A :class:`TailSampler` defers
the decision to the *end* of each trace: spans are buffered per trace until
the root span lands, then the complete tree is judged —

* **error** — the root's terminal ``outcome`` isn't ``completed``, or the
  trace contains a failure marker span (``fleet.failover`` / ``fleet.
  rejected`` / ``fleet.expired``);
* **slow** — the root's duration is at least ``slow_ns``;
* **incident** — the trace's time extent overlaps an open/closed incident
  window reported by the flight recorder's ``incident_windows`` hook.

Kept traces are committed to the tracer's span list (so every exporter,
``critical_path`` included, works unchanged); everything else is discarded
and only counted.  A hard ``span_budget`` bounds total retained spans —
whole traces are dropped once it's spent, never truncated mid-tree — and
``max_spans_per_trace`` bounds any single pathological trace while buffered.

Determinism: the sampler is a pure fold over the span stream.  No clocks
read, no RNG, no kernel events — the keep/discard decision and the committed
span order are byte-reproducible for a fixed workload.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import names
from repro.obs.context import Span, Tracer

#: Marker spans whose presence flags a trace as an error trace.
_ERROR_MARKERS = frozenset(
    (
        names.SPAN_FLEET_FAILOVER,
        names.SPAN_FLEET_REJECTED,
        names.SPAN_FLEET_EXPIRED,
    )
)

REASON_ERROR = "error"
REASON_SLOW = "slow"
REASON_INCIDENT = "incident"


class TailSampler:
    """Buffer complete trace trees; retain error/slow/incident traces."""

    def __init__(
        self,
        slow_ns: Optional[float] = None,
        keep_errors: bool = True,
        span_budget: int = 100_000,
        max_spans_per_trace: int = 512,
    ) -> None:
        if span_budget < 1:
            raise ValueError("span budget must be positive")
        if max_spans_per_trace < 1:
            raise ValueError("max_spans_per_trace must be positive")
        self.slow_ns = None if slow_ns is None else float(slow_ns)
        self.keep_errors = keep_errors
        self.span_budget = span_budget
        self.max_spans_per_trace = max_spans_per_trace
        #: trace id -> buffered spans, in record order.
        self._pending: Dict[int, List[Span]] = {}
        #: Hook returning ``[(start_ns, end_ns), ...]`` incident windows
        #: (installed by the flight recorder; ``end_ns`` may be ``None`` for
        #: still-open incidents).
        self.incident_windows: Optional[Callable[[], list]] = None
        #: Hook called as ``on_retain(trace_id, spans, reason, root)`` for
        #: every kept trace (the flight recorder attaches them to incidents).
        self.on_retain: Optional[Callable] = None
        # Accounting (surfaced as obs.tail.* gauges).
        self.retained_traces = 0
        self.discarded_traces = 0
        self.budget_dropped_traces = 0
        self.truncated_spans = 0
        self.retained_spans = 0
        #: reason -> retained-trace count.
        self.keep_reasons: Dict[str, int] = {}

    # -------------------------------------------------------------- pipeline
    def offer(self, tracer: Tracer, span: Span) -> None:
        """Buffer one recorded span; finalize its trace at the root."""
        buffered = self._pending.get(span.trace_id)
        if buffered is None:
            buffered = []
            self._pending[span.trace_id] = buffered
        if len(buffered) >= self.max_spans_per_trace:
            self.truncated_spans += 1
        else:
            buffered.append(span)
        if span.parent_id is None:
            # Every trace in the stack has exactly one root, recorded last
            # (fleet.request / client.request / a single order.* span).
            del self._pending[span.trace_id]
            self._finalize(tracer, span.trace_id, buffered, span)

    def flush(self, tracer: Tracer) -> None:
        """Finalize rootless traces still buffered at end of run.

        A ``run(until_ns=...)`` cut-off can strand in-flight traces without
        their root; judge them on what was captured (deterministic order:
        first-buffered first).
        """
        pending = self._pending
        self._pending = {}
        for trace_id, buffered in pending.items():
            root = None
            for span in buffered:
                if span.parent_id is None:
                    root = span
                    break
            self._finalize(tracer, trace_id, buffered, root)

    # -------------------------------------------------------------- decision
    def _keep_reason(
        self, spans: List[Span], root: Optional[Span]
    ) -> Optional[str]:
        if self.keep_errors:
            if root is not None and root.attrs.get("outcome", "completed") != "completed":
                return REASON_ERROR
            for span in spans:
                if span.name in _ERROR_MARKERS:
                    return REASON_ERROR
        if (
            self.slow_ns is not None
            and root is not None
            and root.duration_ns >= self.slow_ns
        ):
            return REASON_SLOW
        if self.incident_windows is not None and spans:
            start = min(span.start_ns for span in spans)
            end = max(span.end_ns for span in spans)
            for window_start, window_end in self.incident_windows():
                if start <= (window_end if window_end is not None else end) and (
                    end >= window_start
                ):
                    return REASON_INCIDENT
        return None

    def _finalize(
        self,
        tracer: Tracer,
        trace_id: int,
        spans: List[Span],
        root: Optional[Span],
    ) -> None:
        reason = self._keep_reason(spans, root)
        if reason is None:
            self.discarded_traces += 1
            return
        if self.retained_spans + len(spans) > self.span_budget:
            # Whole-trace budget drop — a truncated tree would lie to the
            # critical-path analyzer.
            self.budget_dropped_traces += 1
            return
        kept = tracer.commit(spans)
        self.retained_spans += kept
        self.retained_traces += 1
        self.keep_reasons[reason] = self.keep_reasons.get(reason, 0) + 1
        if self.on_retain is not None:
            self.on_retain(trace_id, spans, reason, root)

    # --------------------------------------------------------------- queries
    @property
    def pending_traces(self) -> int:
        return len(self._pending)

    def summary(self) -> Dict[str, object]:
        return {
            "retained_traces": self.retained_traces,
            "retained_spans": self.retained_spans,
            "discarded_traces": self.discarded_traces,
            "budget_dropped_traces": self.budget_dropped_traces,
            "truncated_spans": self.truncated_spans,
            "keep_reasons": dict(sorted(self.keep_reasons.items())),
        }


__all__ = ["TailSampler", "REASON_ERROR", "REASON_SLOW", "REASON_INCIDENT"]
