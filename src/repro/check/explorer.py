"""Schedule-space exploration by stateless re-execution.

The :class:`Explorer` treats a scenario as a deterministic function of its
schedule-choice sequence: re-running the scenario under
``ScriptedPolicy(prefix)`` replays the first ``len(prefix)`` tie-break
points verbatim (everything before a choice point is fully determined by
the choices already made) and takes the default branch afterwards, while
recording the ready-set width at every point it passes.  That record is the
frontier: each run exposes its untaken siblings
(``choices[:i] + (alt,)`` for every ``alt`` the branch bound admits), and
DFS over those prefixes enumerates the schedule tree without ever
snapshotting simulator state — the simsched recipe, adapted to the kernel's
same-``(time, priority)`` ready sets.

Exploration is bounded three ways (schedule trees are exponential):

* ``max_schedules`` — total scenario executions,
* ``max_depth`` — choice points past this index are never branched
  (only replayed),
* ``max_branch`` — at most this many alternatives per choice point.

Seeded random *sampling* (:meth:`Explorer.sample`) complements DFS: DFS is
exhaustive near the root, sampling reaches deep interleavings DFS would
only hit after exhausting shallower ones.  Both produce the same artifact —
a replayable :class:`~repro.check.trace.ScheduleTrace` per schedule, with
the invariant pack's verdict attached — and any violating trace converts
into a one-line regression seed via ``trace.seed()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.check.invariants import check_invariants
from repro.check.trace import ScheduleTrace
from repro.sim.schedule import RandomTieBreakPolicy, ScriptedPolicy

#: A scenario: policy in, completed :class:`~repro.check.scenarios.
#: ScenarioRun` out.  Must be deterministic given the policy's choices.
Scenario = Callable


@dataclass
class ExplorationReport:
    """Everything one exploration produced."""

    #: Every executed schedule, in execution order.
    traces: List[ScheduleTrace] = field(default_factory=list)
    #: The subset of traces whose invariant check failed.
    violations: List[ScheduleTrace] = field(default_factory=list)
    #: True when the frontier still held unexplored prefixes at the
    #: ``max_schedules`` bound (coverage is partial, not exhausted).
    truncated: bool = False

    @property
    def schedules_run(self) -> int:
        return len(self.traces)

    @property
    def distinct_digests(self) -> int:
        """How many observably different outcomes the schedules produced."""
        return len({trace.digest for trace in self.traces})

    def highest_branching(self, count: int = 3) -> List[ScheduleTrace]:
        """The *count* traces with the widest ready sets (regression picks)."""
        ranked = sorted(
            self.traces, key=lambda t: (t.max_branching, t.depth), reverse=True
        )
        return ranked[:count]


class Explorer:
    """Bounded DFS + seeded sampling over a scenario's schedule space."""

    def __init__(
        self,
        scenario: Scenario,
        max_depth: int = 64,
        max_branch: int = 4,
        max_schedules: int = 200,
    ) -> None:
        if max_depth < 0 or max_branch < 1 or max_schedules < 1:
            raise ValueError("exploration bounds must be positive")
        self.scenario = scenario
        self.max_depth = max_depth
        self.max_branch = max_branch
        self.max_schedules = max_schedules

    # ------------------------------------------------------------ primitives
    def run_prefix(self, prefix: Tuple[int, ...] = ()) -> ScheduleTrace:
        """Execute the scenario under *prefix* and record the full trace."""
        policy = ScriptedPolicy(prefix)
        run = self.scenario(policy)
        return ScheduleTrace(
            choices=tuple(policy.choices),
            branching=tuple(policy.branching),
            digest=run.digest,
            violations=tuple(check_invariants(run.fleet, run.trace_length)),
        )

    def replay(self, trace: ScheduleTrace) -> ScheduleTrace:
        """Re-execute a recorded trace; the regression-seed entry point.

        Runs the scenario under ``ScriptedPolicy(trace.choices)`` and
        returns the fresh trace.  When the input carries a digest, replay
        verifies reproduction and raises ``AssertionError`` on mismatch —
        a trace that stops reproducing means the scenario changed out from
        under its pinned schedule.
        """
        replayed = self.run_prefix(trace.choices)
        if trace.digest and replayed.digest != trace.digest:
            raise AssertionError(
                f"replay diverged: digest {replayed.digest!r} != recorded "
                f"{trace.digest!r} for seed {trace.seed()!r}"
            )
        return replayed

    # ----------------------------------------------------------- exploration
    def explore(self) -> ExplorationReport:
        """Bounded DFS from the default schedule; returns every trace run."""
        report = ExplorationReport()
        stack: List[Tuple[int, ...]] = [()]
        while stack:
            if len(report.traces) >= self.max_schedules:
                report.truncated = True
                break
            prefix = stack.pop()
            trace = self.run_prefix(prefix)
            report.traces.append(trace)
            if trace.violations:
                report.violations.append(trace)
            # Expand untaken siblings of every choice point this run opened
            # (points before len(prefix) were expanded by an ancestor run).
            # Pushed deepest-first so the LIFO frontier explores near the
            # current schedule before backtracking — proper DFS order.
            for point in range(len(prefix), min(trace.depth, self.max_depth)):
                chosen = trace.choices[point]
                width = min(trace.branching[point], self.max_branch)
                for alternative in range(width - 1, chosen, -1):
                    stack.append(trace.choices[:point] + (alternative,))
        return report

    def sample(self, schedules: int, seed: int = 0) -> ExplorationReport:
        """Run *schedules* seeded-random tie-break schedules.

        Each sampled run records its choices, so every returned trace is
        scripted-replayable even though the schedule was chosen randomly.
        """
        report = ExplorationReport()
        for index in range(schedules):
            policy = RandomTieBreakPolicy(seed=seed + index)
            run = self.scenario(policy)
            trace = ScheduleTrace(
                choices=tuple(policy.choices),
                branching=tuple(policy.branching),
                digest=run.digest,
                violations=tuple(check_invariants(run.fleet, run.trace_length)),
            )
            report.traces.append(trace)
            if trace.violations:
                report.violations.append(trace)
        return report

    def first_violation(self) -> Optional[ScheduleTrace]:
        """DFS until the first invariant violation (or None when clean)."""
        report = ExplorationReport()
        stack: List[Tuple[int, ...]] = [()]
        while stack and len(report.traces) < self.max_schedules:
            prefix = stack.pop()
            trace = self.run_prefix(prefix)
            report.traces.append(trace)
            if trace.violations:
                return trace
            for point in range(len(prefix), min(trace.depth, self.max_depth)):
                chosen = trace.choices[point]
                width = min(trace.branching[point], self.max_branch)
                for alternative in range(width - 1, chosen, -1):
                    stack.append(trace.choices[:point] + (alternative,))
        return None
