"""``repro.check`` — schedule-space model checking of the control plane.

Determinism makes every test reproducible — and makes every test explore
exactly one interleaving.  This package searches the others: a
:class:`~repro.sim.schedule.SchedulePolicy` turns the kernel's
same-``(time, priority)`` tie-breaks into explicit choice points, the
:class:`Explorer` enumerates choice sequences by bounded DFS and seeded
random sampling (stateless re-execution, in the spirit of simsched/dPOR),
and the invariant pack asserts after every explored schedule what the
property suites assert after the default one.  A violating schedule
serialises to a one-line :class:`ScheduleTrace` seed that replays exactly.

See the "Model checking the control plane" chapter in docs/architecture.md.
"""

from repro.check.explorer import ExplorationReport, Explorer
from repro.check.invariants import (
    check_counter_conservation,
    check_invariants,
    check_memory_lockstep,
    check_request_conservation,
)
from repro.check.scenarios import ScenarioRun, tiny_control_plane, tiny_scenario_factory
from repro.check.trace import ScheduleTrace

__all__ = [
    "ExplorationReport",
    "Explorer",
    "ScenarioRun",
    "ScheduleTrace",
    "check_counter_conservation",
    "check_invariants",
    "check_memory_lockstep",
    "check_request_conservation",
    "tiny_control_plane",
    "tiny_scenario_factory",
]
