"""Replayable schedule traces.

A :class:`ScheduleTrace` is the compact, serialisable record of one explored
schedule: the choice index taken at every tie-break point, the ready-set
width observed there (so an explorer can enumerate untaken siblings), and
the fleet's completion-stream digest under that schedule.  The whole point
is that ``choices`` alone pins the schedule — re-running the same scenario
under ``ScriptedPolicy(trace.choices)`` reproduces the run event-for-event —
so a violating trace *is* the regression seed: paste ``trace.seed()`` into a
test, replay, assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class ScheduleTrace:
    """One explored schedule of a scenario, replayable from ``choices``."""

    #: Chosen ready-set index at each tie-break point, in dispatch order.
    choices: Tuple[int, ...]
    #: Ready-set width at each tie-break point (``branching[i] - 1`` siblings
    #: of ``choices[i]`` remain unexplored at point ``i``).
    branching: Tuple[int, ...] = ()
    #: Completion-stream digest of the fleet run under this schedule.
    digest: str = ""
    #: Invariant violations observed under this schedule (empty = clean).
    violations: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.branching) not in (0, len(self.choices)):
            raise ValueError("branching must be empty or parallel to choices")
        for point, (index, width) in enumerate(zip(self.choices, self.branching)):
            if not 0 <= index < width:
                raise ValueError(
                    f"choice point {point}: index {index} out of range for "
                    f"ready-set width {width}"
                )

    @property
    def depth(self) -> int:
        """Number of tie-break points this schedule passed through."""
        return len(self.choices)

    @property
    def max_branching(self) -> int:
        """Widest ready set seen (1 when the schedule had no tie-breaks)."""
        return max(self.branching) if self.branching else 1

    def seed(self) -> str:
        """Compact one-line regression seed, e.g. ``"0.2.1"`` (``""`` = root).

        Only the choices are encoded: branching and digest are recomputed on
        replay, which is exactly the check a regression test wants to make.
        """
        return ".".join(str(index) for index in self.choices)

    @classmethod
    def from_seed(cls, seed: str) -> "ScheduleTrace":
        """Parse a :meth:`seed` string back into a (choices-only) trace."""
        text = seed.strip()
        choices = tuple(int(part) for part in text.split(".")) if text else ()
        if any(index < 0 for index in choices):
            raise ValueError(f"negative choice index in seed {seed!r}")
        return cls(choices=choices)

    def to_json(self) -> str:
        """Full serialisation (choices + branching + digest + violations)."""
        return json.dumps(
            {
                "choices": list(self.choices),
                "branching": list(self.branching),
                "digest": self.digest,
                "violations": list(self.violations),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ScheduleTrace":
        payload = json.loads(text)
        return cls(
            choices=tuple(payload["choices"]),
            branching=tuple(payload.get("branching", ())),
            digest=payload.get("digest", ""),
            violations=tuple(payload.get("violations", ())),
        )
