"""Canonical scenarios for schedule exploration.

A *scenario* is a callable taking a
:class:`~repro.sim.schedule.SchedulePolicy` (or ``None``), running a fleet
workload to quiescence under it, and returning a :class:`ScenarioRun`.
Exploration re-executes the scenario once per schedule, so scenarios must be
(a) deterministic given the policy's choices and (b) small — the tiny
control-plane scenario below runs in milliseconds.

The tiny scenario is deliberately the worst case the control plane offers:
the whole working set preloaded on card 0 (maximal residency skew, so the
rebalancer orders migrations), periodic scrub and defrag services on both
cards, healing enabled, and a short two-tenant trace whose zero-delay queue
hand-offs collide with the service timers at shared timestamps — exactly
where same-``(time, priority)`` ready sets grow past one entry and
schedules branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.builder import build_fleet
from repro.core.config import SMALL_CONFIG
from repro.functions.bank import build_small_bank
from repro.sim.kernel import Simulator
from repro.sim.schedule import SchedulePolicy
from repro.workloads.multitenant import default_tenant_mix, multi_tenant_trace

#: Cached immutable scenario inputs: the bank memoises compiled netlists and
#: bitstreams, and the trace is a pure value — sharing them across explored
#: schedules is what makes per-schedule re-execution cheap.
_CACHE: dict = {}


@dataclass
class ScenarioRun:
    """One completed scenario execution under one schedule."""

    fleet: object
    stats: object
    trace_length: int

    @property
    def digest(self) -> str:
        """Replay probe: the full fleet fingerprint (events, time, counters,
        completion-stream digest) as a string — two runs took the same
        schedule iff their digests match."""
        return repr(self.fleet.fingerprint())


def _tiny_inputs(length: int, seed: int):
    key = (length, seed)
    cached = _CACHE.get(key)
    if cached is None:
        bank = _CACHE.get("bank")
        if bank is None:
            bank = _CACHE["bank"] = build_small_bank()
        trace = multi_tenant_trace(
            bank,
            default_tenant_mix(bank, tenants=2, skew=1.2),
            length=length,
            mean_interarrival_ns=4_000.0,
            seed=seed,
        )
        cached = _CACHE[key] = (bank, trace)
    return cached


def tiny_control_plane(
    policy: Optional[SchedulePolicy] = None,
    length: int = 16,
    seed: int = 23,
) -> ScenarioRun:
    """Run the tiny migrate+scrub+defrag fleet under *policy* to quiescence."""
    bank, trace = _tiny_inputs(length, seed)
    simulator = Simulator(schedule_policy=policy)
    fleet = build_fleet(
        cards=2,
        config=SMALL_CONFIG.with_overrides(seed=seed),
        bank=bank,
        policy="affinity",
        queue_depth=8,
        simulator=simulator,
        fault_tolerance=True,
        scrub_period_ns=20_000.0,
        scrub_frames_per_order=8,
        defrag_period_ns=25_000.0,
        defrag_moves_per_order=1,
        rebalance_period_ns=30_000.0,
        rebalance_min_queue_skew=2,
        rebalance_min_frame_skew=2,
    )
    # Maximal residency skew: the whole working set on card 0, so the
    # rebalancer has migrations to order while scrub/defrag timers fire.
    for name in bank.names():
        fleet.cards[0].driver.preload(name)
    stats = fleet.run(trace)
    return ScenarioRun(fleet=fleet, stats=stats, trace_length=len(trace))


def tiny_scenario_factory(
    length: int = 16, seed: int = 23
) -> Callable[[Optional[SchedulePolicy]], ScenarioRun]:
    """A parameterised scenario callable for :class:`~repro.check.Explorer`."""

    def scenario(policy: Optional[SchedulePolicy] = None) -> ScenarioRun:
        return tiny_control_plane(policy, length=length, seed=seed)

    return scenario
