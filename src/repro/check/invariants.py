"""The invariant pack: what must hold after *every* explored schedule.

These are the safety properties the property-test suites already encode —
request conservation (``tests/test_faults_properties.py``), ownership/CRC/
golden lockstep and byte-exact migration (``tests/test_rebalance_properties
.py``), and control-plane counter conservation — lifted into plain functions
so the schedule explorer can assert them after each interleaving instead of
only under the single default schedule.

Every checker returns a list of violation strings (empty = clean) rather
than asserting, so one explored schedule can report all its violations and
the explorer can fold them into the trace record.
"""

from __future__ import annotations

from typing import List


def check_request_conservation(fleet, trace_length: int) -> List[str]:
    """Nothing in flight, nothing dropped: the conservation law.

    Mirrors ``TestKilledCardConservation``: every arrival is completed,
    rejected or expired; no card retains outstanding work; every card queue
    drained; the per-tenant views balance the same way.
    """
    violations: List[str] = []
    stats = fleet.stats
    if stats.arrivals != trace_length:
        violations.append(
            f"arrivals {stats.arrivals} != trace length {trace_length}"
        )
    settled = stats.completed + stats.rejected + stats.expired
    if settled != stats.arrivals:
        violations.append(
            f"completed {stats.completed} + rejected {stats.rejected} + "
            f"expired {stats.expired} != arrivals {stats.arrivals}"
        )
    for card in fleet.cards:
        if card.outstanding != 0:
            violations.append(f"{card.name}: outstanding {card.outstanding} != 0")
        if len(card.queue) != 0:
            violations.append(f"{card.name}: {len(card.queue)} items left queued")
    for tenant in stats.tenants():
        arrivals = stats.per_tenant_arrivals.get(tenant, 0)
        done = stats.per_tenant_completed.get(tenant, 0)
        rejected = stats.per_tenant_rejected.get(tenant, 0)
        expired = stats.per_tenant_expired.get(tenant, 0)
        if done + rejected + expired != arrivals:
            violations.append(
                f"tenant {tenant}: {done}+{rejected}+{expired} != {arrivals}"
            )
    return violations


def check_memory_lockstep(fleet) -> List[str]:
    """Ownership indexes, CRCs and golden images agree on every up card.

    Mirrors ``_assert_memory_indexes_consistent`` plus the scrub suite's
    golden comparison: the O(1) ownership indexes must answer exactly like a
    naive scan, the mini-OS free list must equal the device's free index,
    and — with fault protection installed and no injector running — every
    frame must read back byte-identical to its golden image with a good CRC.
    """
    violations: List[str] = []
    for card in fleet.cards:
        if card.health == "down":
            continue
        coprocessor = card.driver.coprocessor
        memory = coprocessor.device.memory
        geometry = coprocessor.geometry
        frames = geometry.all_frames()
        naive_unowned = [a for a in frames if memory.owner_of(a) is None]
        if memory.unowned_frames() != naive_unowned:
            violations.append(f"{card.name}: free index diverged from naive scan")
        for name in coprocessor.minios.resident_functions():
            naive = [a for a in frames if memory.owner_of(a) == name]
            if memory.owned_frames(name) != naive:
                violations.append(
                    f"{card.name}: ownership index for {name!r} diverged"
                )
        if coprocessor.minios.free_frames.as_list() != memory.unowned_frames():
            violations.append(f"{card.name}: mini-OS free list != device free index")
        golden = coprocessor.device.golden
        if golden is not None:
            for address in frames:
                if not memory.frame_crc_ok(address):
                    violations.append(f"{card.name}: bad CRC at {address}")
                elif memory.read_frame(address) != golden.payload_for(address):
                    violations.append(
                        f"{card.name}: frame {address} differs from golden"
                    )
    return violations


def check_counter_conservation(fleet) -> List[str]:
    """Control-plane counters balance at quiescence.

    Every migration order settled (completed or failed, zero byte diffs),
    no function still marked in-flight, no scrub/defrag order still pending,
    and every heal order accounted for.
    """
    violations: List[str] = []
    stats = fleet.stats
    settled = stats.migrations_completed + stats.migrations_failed
    if stats.migration_orders != settled:
        violations.append(
            f"migration orders {stats.migration_orders} != completed "
            f"{stats.migrations_completed} + failed {stats.migrations_failed}"
        )
    if stats.migration_byte_diffs != 0:
        violations.append(f"{stats.migration_byte_diffs} migration byte diffs")
    if fleet.migrating:
        violations.append(f"functions still marked migrating: {sorted(fleet.migrating)}")
    for card in fleet.cards:
        if card.scrub_pending:
            violations.append(f"{card.name}: scrub order still pending at idle")
        if card.defrag_pending:
            violations.append(f"{card.name}: defrag order still pending at idle")
    heals_settled = stats.heals_completed + stats.heals_skipped
    if heals_settled > stats.heal_orders:
        violations.append(
            f"heals settled {heals_settled} > heal orders {stats.heal_orders}"
        )
    return violations


def check_invariants(fleet, trace_length: int) -> List[str]:
    """Run the whole pack; returns every violation found (empty = clean)."""
    violations = check_request_conservation(fleet, trace_length)
    violations += check_memory_lockstep(fleet)
    violations += check_counter_conservation(fleet)
    return violations
