"""Latency / bandwidth models for the on-card memories.

The timing model is deliberately simple and explicit: an access costs a fixed
setup latency plus the transfer time of the burst at the memory's bandwidth.
Both the ROM (flash-like, slow) and the local RAM (SRAM-like, fast) use the
same model with different parameters.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryTiming:
    """Access timing of a memory device.

    Parameters
    ----------
    access_latency_ns:
        Fixed cost of starting a read or write burst.
    bandwidth_bytes_per_ns:
        Sustained transfer rate once the burst is running
        (1.0 = 1 GB/s, 0.05 = 50 MB/s).
    """

    access_latency_ns: float = 50.0
    bandwidth_bytes_per_ns: float = 0.05

    def __post_init__(self) -> None:
        if self.access_latency_ns < 0:
            raise ValueError("access latency cannot be negative")
        if self.bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time_ns(self, num_bytes: int) -> float:
        """Time to read or write *num_bytes* in one burst."""
        if num_bytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        if num_bytes == 0:
            return 0.0
        return self.access_latency_ns + num_bytes / self.bandwidth_bytes_per_ns

    def bandwidth_mbytes_per_s(self) -> float:
        """Convenience conversion used in reports."""
        return self.bandwidth_bytes_per_ns * 1e3


#: Flash-style configuration ROM: 100 ns setup, ~50 MB/s sustained.
ROM_TIMING = MemoryTiming(access_latency_ns=100.0, bandwidth_bytes_per_ns=0.05)

#: On-card SRAM: 20 ns setup, ~400 MB/s sustained.
RAM_TIMING = MemoryTiming(access_latency_ns=20.0, bandwidth_bytes_per_ns=0.4)
