"""The configuration ROM.

Per the paper: "The compressed configuration bit-streams are loaded from one
end of the ROM while the record table is populated from the other end of the
ROM."  :class:`ConfigurationRom` enforces that two-ended layout, refuses
downloads that would make the two areas collide, and provides the
record-driven access path the microcontroller uses.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.memory.errors import RomFullError, RomLookupError
from repro.memory.records import FunctionRecord, RecordTable
from repro.memory.timing import MemoryTiming, ROM_TIMING
from repro.sim.clock import Clock
from repro.sim.trace import TraceRecorder


class ConfigurationRom:
    """Byte-addressable ROM with bit-streams at the bottom, records at the top."""

    def __init__(
        self,
        capacity_bytes: int,
        clock: Optional[Clock] = None,
        timing: MemoryTiming = ROM_TIMING,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("ROM capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.clock = clock if clock is not None else Clock()
        self.timing = timing
        self.trace = trace if trace is not None else TraceRecorder(self.clock, enabled=False)
        self._data = bytearray(capacity_bytes)
        self._table = RecordTable()
        self._next_bitstream_address = 0       # grows upward from address 0
        self._record_area_bottom = capacity_bytes  # grows downward from the top
        self.total_reads = 0
        self.total_bytes_read = 0

    # ------------------------------------------------------------ occupancy
    @property
    def record_table(self) -> RecordTable:
        return self._table

    @property
    def bitstream_bytes_used(self) -> int:
        """Bytes occupied by compressed bit-streams (bottom area)."""
        return self._next_bitstream_address

    @property
    def record_bytes_used(self) -> int:
        """Bytes occupied by the record table (top area)."""
        return self.capacity_bytes - self._record_area_bottom

    @property
    def free_bytes(self) -> int:
        """Gap between the two growing areas."""
        return self._record_area_bottom - self._next_bitstream_address

    @property
    def utilisation(self) -> float:
        return 1.0 - self.free_bytes / self.capacity_bytes

    # ------------------------------------------------------------- download
    def download(
        self,
        function_id: int,
        name: str,
        compressed_image: bytes,
        uncompressed_size: int,
        input_bytes: int,
        output_bytes: int,
        frame_count: int,
        codec_name: str,
    ) -> FunctionRecord:
        """Store a compressed bit-stream and append its record.

        This is the operation the host performs when it downloads the
        function bank onto the card.  Raises :class:`RomFullError` when the
        bit-stream area and the record table would collide.
        """
        record_size = FunctionRecord.packed_size()
        needed = len(compressed_image) + record_size
        if needed > self.free_bytes:
            raise RomFullError(
                f"ROM cannot hold {name!r}: needs {needed} bytes "
                f"({len(compressed_image)} image + {record_size} record) "
                f"but only {self.free_bytes} bytes remain"
            )
        start = self._next_bitstream_address
        self._data[start : start + len(compressed_image)] = compressed_image
        self._next_bitstream_address += len(compressed_image)

        record = FunctionRecord(
            function_id=function_id,
            name=name,
            start_address=start,
            compressed_size=len(compressed_image),
            uncompressed_size=uncompressed_size,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            frame_count=frame_count,
            codec_name=codec_name,
        )
        self._record_area_bottom -= record_size
        self._data[self._record_area_bottom : self._record_area_bottom + record_size] = record.pack()
        self._table.add(record)
        return record

    # ----------------------------------------------------------------- read
    def read(self, address: int, length: int) -> bytes:
        """Timed read of *length* bytes starting at *address*."""
        if address < 0 or address + length > self.capacity_bytes:
            raise ValueError(
                f"ROM read of {length} bytes at {address} exceeds capacity {self.capacity_bytes}"
            )
        started = self.clock.now
        self.clock.advance(self.timing.transfer_time_ns(length))
        self.total_reads += 1
        self.total_bytes_read += length
        self.trace.record("rom", "read", started, self.clock.now, address=address, length=length)
        return bytes(self._data[address : address + length])

    def record_for(self, name: str) -> FunctionRecord:
        """Look up the record for *name* (raises :class:`RomLookupError`)."""
        try:
            return self._table.by_name(name)
        except KeyError:
            raise RomLookupError(name) from None

    def read_bitstream(self, name: str, chunk_bytes: Optional[int] = None):
        """Yield the compressed bit-stream of *name* in timed chunks.

        The configuration module consumes the image chunk by chunk; reading
        the whole image in one burst is modelled by passing ``chunk_bytes=None``.
        """
        record = self.record_for(name)
        if chunk_bytes is None:
            yield self.read(record.start_address, record.compressed_size)
            return
        if chunk_bytes <= 0:
            raise ValueError("chunk size must be positive")
        offset = record.start_address
        end = record.end_address
        while offset < end:
            length = min(chunk_bytes, end - offset)
            yield self.read(offset, length)
            offset += length

    def read_record_table(self) -> RecordTable:
        """Timed read of the packed record table (what the mini OS boots from)."""
        size = self._table.packed_size
        if size == 0:
            return RecordTable()
        raw = self.read(self._record_area_bottom, size)
        # Records were appended top-down, so the packed order in memory is the
        # reverse of insertion order; rebuild in insertion order.
        count = len(self._table)
        record_size = FunctionRecord.packed_size()
        table = RecordTable()
        for index in range(count - 1, -1, -1):
            table.add(FunctionRecord.unpack(raw[index * record_size : (index + 1) * record_size]))
        return table

    # ------------------------------------------------------------ reporting
    def layout_summary(self) -> Dict[str, int]:
        """Occupancy summary used by the E7 experiment."""
        return {
            "capacity_bytes": self.capacity_bytes,
            "bitstream_bytes": self.bitstream_bytes_used,
            "record_bytes": self.record_bytes_used,
            "free_bytes": self.free_bytes,
            "functions": len(self._table),
        }
