"""Local RAM on the co-processor card.

The microcontroller stages function inputs here after receiving them over the
PCI and stages outputs here before returning them to the host.  The RAM is a
simple byte-addressable SRAM with a first-fit allocator so concurrent
requests (input buffer + output buffer per outstanding call) can coexist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.memory.errors import RamAllocationError
from repro.memory.timing import MemoryTiming, RAM_TIMING
from repro.sim.clock import Clock
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class RamAllocation:
    """A reserved span of the local RAM."""

    label: str
    address: int
    length: int

    @property
    def end(self) -> int:
        return self.address + self.length


class LocalRam:
    """Byte-addressable SRAM with a first-fit allocator and timed access."""

    def __init__(
        self,
        capacity_bytes: int,
        clock: Optional[Clock] = None,
        timing: MemoryTiming = RAM_TIMING,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("RAM capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.clock = clock if clock is not None else Clock()
        self.timing = timing
        self.trace = trace if trace is not None else TraceRecorder(self.clock, enabled=False)
        self._data = bytearray(capacity_bytes)
        self._allocations: Dict[str, RamAllocation] = {}
        self.total_reads = 0
        self.total_writes = 0
        self.total_bytes_moved = 0
        self.peak_bytes_allocated = 0

    # ------------------------------------------------------------ allocator
    @property
    def allocations(self) -> Dict[str, RamAllocation]:
        return dict(self._allocations)

    @property
    def bytes_allocated(self) -> int:
        return sum(allocation.length for allocation in self._allocations.values())

    @property
    def bytes_free(self) -> int:
        return self.capacity_bytes - self.bytes_allocated

    def allocate(self, label: str, length: int) -> RamAllocation:
        """Reserve *length* bytes under *label* (first fit).

        Raises :class:`RamAllocationError` when no gap is large enough or the
        label is already in use.
        """
        if length <= 0:
            raise ValueError("allocation length must be positive")
        if label in self._allocations:
            raise RamAllocationError(f"allocation label {label!r} already in use")
        taken = sorted(self._allocations.values(), key=lambda a: a.address)
        cursor = 0
        for allocation in taken:
            if allocation.address - cursor >= length:
                break
            cursor = max(cursor, allocation.end)
        if cursor + length > self.capacity_bytes:
            raise RamAllocationError(
                f"local RAM cannot allocate {length} bytes for {label!r}: "
                f"{self.bytes_free} bytes free but fragmented or insufficient"
            )
        allocation = RamAllocation(label=label, address=cursor, length=length)
        self._allocations[label] = allocation
        self.peak_bytes_allocated = max(self.peak_bytes_allocated, self.bytes_allocated)
        return allocation

    def free(self, label: str) -> None:
        """Release the allocation identified by *label*."""
        try:
            del self._allocations[label]
        except KeyError:
            raise RamAllocationError(f"no allocation labelled {label!r}") from None

    def free_all(self) -> None:
        self._allocations.clear()

    # ----------------------------------------------------------------- I/O
    def write(self, allocation: RamAllocation, data: bytes, offset: int = 0) -> float:
        """Timed write of *data* into *allocation* at *offset*; returns the time."""
        if offset < 0 or offset + len(data) > allocation.length:
            raise ValueError(
                f"write of {len(data)} bytes at offset {offset} exceeds allocation "
                f"{allocation.label!r} ({allocation.length} bytes)"
            )
        started = self.clock.now
        elapsed = self.timing.transfer_time_ns(len(data))
        self.clock.advance(elapsed)
        address = allocation.address + offset
        self._data[address : address + len(data)] = data
        self.total_writes += 1
        self.total_bytes_moved += len(data)
        self.trace.record("ram", "write", started, self.clock.now, label=allocation.label, length=len(data))
        return elapsed

    def read(self, allocation: RamAllocation, length: Optional[int] = None, offset: int = 0) -> bytes:
        """Timed read from *allocation*; returns the bytes."""
        length = allocation.length - offset if length is None else length
        if offset < 0 or length < 0 or offset + length > allocation.length:
            raise ValueError(
                f"read of {length} bytes at offset {offset} exceeds allocation "
                f"{allocation.label!r} ({allocation.length} bytes)"
            )
        started = self.clock.now
        elapsed = self.timing.transfer_time_ns(length)
        self.clock.advance(elapsed)
        address = allocation.address + offset
        self.total_reads += 1
        self.total_bytes_moved += length
        self.trace.record("ram", "read", started, self.clock.now, label=allocation.label, length=length)
        return bytes(self._data[address : address + length])

    # ------------------------------------------------------------ reporting
    def describe(self) -> str:
        parts = [
            f"{allocation.label}@{allocation.address}+{allocation.length}"
            for allocation in sorted(self._allocations.values(), key=lambda a: a.address)
        ]
        return f"LocalRam({self.bytes_allocated}/{self.capacity_bytes} bytes: {', '.join(parts) or 'empty'})"
