"""Exceptions raised by the memory subsystem."""

from __future__ import annotations


class MemoryError_(Exception):
    """Base class for memory subsystem errors.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`MemoryError`, which means something entirely different.
    """


class RomFullError(MemoryError_):
    """The bit-stream area and the record table would collide in the ROM."""


class RomLookupError(MemoryError_, KeyError):
    """A requested function has no record in the ROM's record table."""


class RamAllocationError(MemoryError_):
    """The local RAM cannot satisfy an allocation request."""
