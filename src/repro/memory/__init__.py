"""Memory subsystem: the ROM holding compressed bit-streams + record table,
and the local RAM the microcontroller stages function inputs/outputs in.

The ROM layout follows the paper exactly: compressed configuration
bit-streams are loaded from one end while the record table (start address,
size and I/O sizes of every function) is populated from the other end, and
the microcontroller uses the records to find the bit-streams.
"""

from repro.memory.errors import MemoryError_, RomFullError, RomLookupError
from repro.memory.records import FunctionRecord, RecordTable
from repro.memory.rom import ConfigurationRom
from repro.memory.ram import LocalRam, RamAllocation
from repro.memory.timing import MemoryTiming

__all__ = [
    "MemoryError_",
    "RomFullError",
    "RomLookupError",
    "FunctionRecord",
    "RecordTable",
    "ConfigurationRom",
    "LocalRam",
    "RamAllocation",
    "MemoryTiming",
]
