"""Function records and the ROM record table.

Each record holds, per the paper: the start address of the function's
compressed configuration bit-stream in the ROM, its (compressed) size, and the
input/output sizes of the function.  We additionally store the uncompressed
size, frame count and codec name — information a real implementation would
need as well and which the paper folds into "its size and the input/output
size of the functions".
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List

_RECORD_STRUCT = struct.Struct(">I16sIIIIHH12s")


@dataclass(frozen=True)
class FunctionRecord:
    """One entry of the ROM record table."""

    function_id: int
    name: str
    start_address: int
    compressed_size: int
    uncompressed_size: int
    input_bytes: int
    output_bytes: int
    frame_count: int
    codec_name: str

    def __post_init__(self) -> None:
        if self.start_address < 0 or self.compressed_size < 0:
            raise ValueError("record addresses and sizes must be non-negative")
        if self.input_bytes < 0 or self.output_bytes < 0:
            raise ValueError("record I/O sizes must be non-negative")
        if self.frame_count <= 0:
            raise ValueError("a function occupies at least one frame")
        if len(self.name.encode("ascii", errors="replace")) > 16:
            raise ValueError("record names are limited to 16 ASCII bytes")
        if len(self.codec_name.encode("ascii", errors="replace")) > 12:
            raise ValueError("codec names are limited to 12 ASCII bytes")

    @property
    def end_address(self) -> int:
        """First ROM address past the compressed bit-stream."""
        return self.start_address + self.compressed_size

    # -------------------------------------------------------------- packing
    @staticmethod
    def packed_size() -> int:
        """Bytes one packed record occupies in the ROM."""
        return _RECORD_STRUCT.size

    def pack(self) -> bytes:
        name_bytes = self.name.encode("ascii", errors="replace")[:16].ljust(16, b"\x00")
        codec_bytes = self.codec_name.encode("ascii", errors="replace")[:12].ljust(12, b"\x00")
        return _RECORD_STRUCT.pack(
            self.function_id,
            name_bytes,
            self.start_address,
            self.compressed_size,
            self.uncompressed_size,
            self.input_bytes,
            self.output_bytes,
            self.frame_count,
            codec_bytes,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "FunctionRecord":
        if len(data) < _RECORD_STRUCT.size:
            raise ValueError("buffer shorter than a packed function record")
        (
            function_id,
            name_bytes,
            start_address,
            compressed_size,
            uncompressed_size,
            input_bytes,
            output_bytes,
            frame_count,
            codec_bytes,
        ) = _RECORD_STRUCT.unpack_from(data)
        return cls(
            function_id=function_id,
            name=name_bytes.rstrip(b"\x00").decode("ascii", errors="replace"),
            start_address=start_address,
            compressed_size=compressed_size,
            uncompressed_size=uncompressed_size,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            frame_count=frame_count,
            codec_name=codec_bytes.rstrip(b"\x00").decode("ascii", errors="replace"),
        )


class RecordTable:
    """Ordered collection of function records with name / id lookup."""

    def __init__(self) -> None:
        self._records: List[FunctionRecord] = []
        self._by_name: Dict[str, FunctionRecord] = {}
        self._by_id: Dict[int, FunctionRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FunctionRecord]:
        return iter(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def add(self, record: FunctionRecord) -> None:
        if record.name in self._by_name:
            raise ValueError(f"a record named {record.name!r} already exists")
        if record.function_id in self._by_id:
            raise ValueError(f"a record with id {record.function_id} already exists")
        self._records.append(record)
        self._by_name[record.name] = record
        self._by_id[record.function_id] = record

    def by_name(self, name: str) -> FunctionRecord:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no function record named {name!r}") from None

    def by_id(self, function_id: int) -> FunctionRecord:
        try:
            return self._by_id[function_id]
        except KeyError:
            raise KeyError(f"no function record with id {function_id}") from None

    def names(self) -> List[str]:
        return [record.name for record in self._records]

    @property
    def packed_size(self) -> int:
        """Bytes the whole table occupies in the ROM."""
        return len(self._records) * FunctionRecord.packed_size()

    def pack(self) -> bytes:
        return b"".join(record.pack() for record in self._records)

    @classmethod
    def unpack(cls, data: bytes, count: int) -> "RecordTable":
        table = cls()
        size = FunctionRecord.packed_size()
        for index in range(count):
            table.add(FunctionRecord.unpack(data[index * size : (index + 1) * size]))
        return table
