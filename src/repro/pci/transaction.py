"""PCI transactions."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TransactionKind(enum.Enum):
    """The transaction types the host driver and DMA engine issue."""

    MEMORY_READ = "memory-read"
    MEMORY_WRITE = "memory-write"
    CONFIG_READ = "config-read"
    CONFIG_WRITE = "config-write"


@dataclass
class PciTransaction:
    """One bus transaction: an address, a direction and a payload.

    For reads the payload carries the returned data once the transaction
    completes; ``latency_ns`` is filled in by the bus.
    """

    kind: TransactionKind
    address: int
    length: int
    payload: bytes = b""
    completed: bool = False
    latency_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("transaction address cannot be negative")
        if self.length < 0:
            raise ValueError("transaction length cannot be negative")
        if self.kind in (TransactionKind.MEMORY_WRITE, TransactionKind.CONFIG_WRITE):
            if len(self.payload) != self.length:
                raise ValueError(
                    f"write transaction declares {self.length} bytes but carries "
                    f"{len(self.payload)}"
                )

    @property
    def is_write(self) -> bool:
        return self.kind in (TransactionKind.MEMORY_WRITE, TransactionKind.CONFIG_WRITE)

    @property
    def is_read(self) -> bool:
        return not self.is_write
