"""The PCI bus: timing and device routing.

The model is a single shared 32-bit/33 MHz bus (matching the Stratix PCI
development board used in the paper's proof of concept) with configurable
width and clock.  Each transaction costs arbitration + address phase + data
phases + turnaround; bursts move ``bus_width_bytes`` per data phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.pci.transaction import PciTransaction, TransactionKind
from repro.sim.clock import Clock
from repro.sim.trace import TraceRecorder


class PciBusError(Exception):
    """Raised when a transaction cannot be routed (master abort)."""


@dataclass(frozen=True)
class PciBusTiming:
    """Cycle costs of a transaction on the bus."""

    clock_hz: float = 33e6
    bus_width_bytes: int = 4
    arbitration_cycles: int = 2
    address_phase_cycles: int = 1
    turnaround_cycles: int = 2
    wait_states_per_burst: int = 3

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("bus clock must be positive")
        if self.bus_width_bytes <= 0:
            raise ValueError("bus width must be positive")

    def cycles_for(self, length_bytes: int) -> int:
        """Total bus cycles for one burst transaction of *length_bytes*."""
        data_phases = -(-length_bytes // self.bus_width_bytes) if length_bytes else 0
        return (
            self.arbitration_cycles
            + self.address_phase_cycles
            + self.wait_states_per_burst
            + data_phases
            + self.turnaround_cycles
        )

    def time_ns(self, length_bytes: int) -> float:
        return self.cycles_for(length_bytes) * 1e9 / self.clock_hz

    def bandwidth_mbytes_per_s(self) -> float:
        """Peak data bandwidth ignoring per-transaction overhead."""
        return self.clock_hz * self.bus_width_bytes / 1e6


class PciBus:
    """Routes transactions from the host bridge to the devices on the bus."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        timing: Optional[PciBusTiming] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        self.timing = timing if timing is not None else PciBusTiming()
        self.trace = trace if trace is not None else TraceRecorder(self.clock, enabled=False)
        self._devices: List["PciDeviceProtocol"] = []
        self.transactions_completed = 0
        self.bytes_transferred = 0
        self.busy_time_ns = 0.0

    # --------------------------------------------------------------- wiring
    def attach(self, device: "PciDeviceProtocol") -> None:
        """Plug a device into the bus."""
        self._devices.append(device)

    @property
    def devices(self) -> List["PciDeviceProtocol"]:
        return list(self._devices)

    # ----------------------------------------------------------- transactions
    def submit(self, transaction: PciTransaction) -> PciTransaction:
        """Run one transaction to completion, advancing the shared clock.

        Routing happens before any time is charged: a master abort (no device
        claims the address) must not advance the clock or count as bus busy
        time, because the data phases never happen.
        """
        target = self._route(transaction)
        if target is None:
            raise PciBusError(
                f"master abort: no device claims address 0x{transaction.address:08x}"
            )
        started = self.clock.now
        elapsed = self.timing.time_ns(transaction.length)
        self.clock.advance(elapsed)
        if transaction.is_write:
            target.memory_write(transaction.address, transaction.payload)
        else:
            transaction.payload = target.memory_read(transaction.address, transaction.length)
        transaction.completed = True
        transaction.latency_ns = self.clock.now - started
        self.transactions_completed += 1
        self.bytes_transferred += transaction.length
        self.busy_time_ns += elapsed
        self.trace.record(
            "pci",
            transaction.kind.value,
            started,
            self.clock.now,
            address=transaction.address,
            length=transaction.length,
        )
        return transaction

    def _route(self, transaction: PciTransaction) -> Optional["PciDeviceProtocol"]:
        for device in self._devices:
            if device.claims(transaction.address):
                return device
        return None

    # ------------------------------------------------------------ utilities
    def write(self, address: int, payload: bytes) -> PciTransaction:
        return self.submit(
            PciTransaction(TransactionKind.MEMORY_WRITE, address, len(payload), payload)
        )

    def read(self, address: int, length: int) -> bytes:
        transaction = self.submit(
            PciTransaction(TransactionKind.MEMORY_READ, address, length)
        )
        return transaction.payload

    def utilisation(self, since_ns: float = 0.0) -> float:
        """Fraction of wall-clock the bus spent busy since *since_ns*."""
        window = self.clock.now - since_ns
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_time_ns / window)


class PciDeviceProtocol:
    """Interface the bus expects of attached devices (duck-typed)."""

    def claims(self, address: int) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def memory_read(self, address: int, length: int) -> bytes:  # pragma: no cover
        raise NotImplementedError

    def memory_write(self, address: int, payload: bytes) -> None:  # pragma: no cover
        raise NotImplementedError
