"""Bus-master DMA engine.

Large input/output buffers move between host memory and the card's data
window by DMA rather than programmed I/O: the driver posts a descriptor, the
engine splits it into maximum-burst transactions and streams them across the
bus.  The crossover between programmed I/O and DMA shows up in the offload
speedup experiment (E5) at small input sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pci.bus import PciBus
from repro.pci.transaction import PciTransaction, TransactionKind


@dataclass
class DmaDescriptor:
    """One DMA job: host buffer <-> card window."""

    card_address: int
    length: int
    to_card: bool
    host_buffer: bytes = b""

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("DMA length cannot be negative")
        if self.to_card and len(self.host_buffer) != self.length:
            raise ValueError("host buffer length must match the descriptor length")


@dataclass
class DmaCompletion:
    """Result of one DMA job."""

    descriptor: DmaDescriptor
    data: bytes
    transactions: int
    elapsed_ns: float


class DmaEngine:
    """Splits DMA jobs into burst transactions on the PCI bus."""

    def __init__(self, bus: PciBus, max_burst_bytes: int = 256, setup_time_ns: float = 500.0) -> None:
        if max_burst_bytes <= 0:
            raise ValueError("maximum burst size must be positive")
        if setup_time_ns < 0:
            raise ValueError("setup time cannot be negative")
        self.bus = bus
        self.max_burst_bytes = max_burst_bytes
        self.setup_time_ns = setup_time_ns
        self.jobs_completed = 0
        self.bytes_moved = 0

    def transfer(self, descriptor: DmaDescriptor) -> DmaCompletion:
        """Run one DMA job to completion; returns data read (card->host jobs)."""
        started = self.bus.clock.now
        # Descriptor fetch / doorbell overhead.
        self.bus.clock.advance(self.setup_time_ns)
        transactions = 0
        collected = bytearray()
        offset = 0
        while offset < descriptor.length:
            burst = min(self.max_burst_bytes, descriptor.length - offset)
            address = descriptor.card_address + offset
            if descriptor.to_card:
                chunk = descriptor.host_buffer[offset : offset + burst]
                self.bus.submit(
                    PciTransaction(TransactionKind.MEMORY_WRITE, address, burst, chunk)
                )
            else:
                transaction = self.bus.submit(
                    PciTransaction(TransactionKind.MEMORY_READ, address, burst)
                )
                collected.extend(transaction.payload)
            transactions += 1
            offset += burst
        self.jobs_completed += 1
        self.bytes_moved += descriptor.length
        return DmaCompletion(
            descriptor=descriptor,
            data=bytes(collected),
            transactions=transactions,
            elapsed_ns=self.bus.clock.now - started,
        )
