"""Base class for PCI devices (cards) attached to the bus."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.pci.bus import PciDeviceProtocol
from repro.pci.config_space import BaseAddressRegister, PciConfigSpace


class PciFunctionInterface:
    """Register-level interface a card exposes through a BAR.

    The card maps named 32-bit registers and a data window into BAR space;
    the device dispatches memory reads/writes landing in the BAR to them.
    """

    def __init__(self, register_bytes: int = 256, window_bytes: int = 64 * 1024) -> None:
        if register_bytes <= 0 or window_bytes < 0:
            raise ValueError("interface sizes must be positive")
        self.register_bytes = register_bytes
        self.window_bytes = window_bytes
        self._registers = bytearray(register_bytes)
        self._window = bytearray(window_bytes)
        self._write_hooks: Dict[int, Callable[[int], None]] = {}

    # ------------------------------------------------------------ registers
    def read_register(self, offset: int) -> int:
        self._check_register(offset)
        return int.from_bytes(self._registers[offset : offset + 4], "little")

    def write_register(self, offset: int, value: int) -> None:
        self._check_register(offset)
        self._registers[offset : offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")
        hook = self._write_hooks.get(offset)
        if hook is not None:
            hook(value & 0xFFFFFFFF)

    def on_register_write(self, offset: int, hook: Callable[[int], None]) -> None:
        """Register a side-effect hook fired when the host writes *offset*."""
        self._check_register(offset)
        self._write_hooks[offset] = hook

    def _check_register(self, offset: int) -> None:
        if offset % 4 != 0 or not 0 <= offset < self.register_bytes:
            raise ValueError(f"register offset 0x{offset:x} is invalid")

    # --------------------------------------------------------------- window
    def read_window(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > self.window_bytes:
            raise ValueError("window read out of range")
        return bytes(self._window[offset : offset + length])

    def write_window(self, offset: int, payload: bytes) -> None:
        if offset < 0 or offset + len(payload) > self.window_bytes:
            raise ValueError("window write out of range")
        self._window[offset : offset + len(payload)] = payload


class PciDevice(PciDeviceProtocol):
    """A PCI card: config space + a register/data interface behind BAR0/BAR1."""

    def __init__(
        self,
        name: str,
        interface: Optional[PciFunctionInterface] = None,
        register_bar_size: int = 4096,
        window_bar_size: int = 64 * 1024,
    ) -> None:
        self.name = name
        self.interface = interface if interface is not None else PciFunctionInterface(
            window_bytes=window_bar_size
        )
        self.config_space = PciConfigSpace(
            bars=[
                BaseAddressRegister(0, register_bar_size),
                BaseAddressRegister(1, window_bar_size, prefetchable=True),
            ]
        )

    # ----------------------------------------------------------- bus facing
    def claims(self, address: int) -> bool:
        return self.config_space.decode(address) is not None

    def memory_read(self, address: int, length: int) -> bytes:
        bar = self._decode(address)
        offset = bar.offset_of(address)
        if bar.index == 0:
            value = self.interface.read_register(offset)
            return value.to_bytes(4, "little")[:length]
        return self.interface.read_window(offset, length)

    def memory_write(self, address: int, payload: bytes) -> None:
        bar = self._decode(address)
        offset = bar.offset_of(address)
        if bar.index == 0:
            value = int.from_bytes(payload[:4].ljust(4, b"\x00"), "little")
            self.interface.write_register(offset, value)
        else:
            self.interface.write_window(offset, payload)

    def _decode(self, address: int) -> BaseAddressRegister:
        bar = self.config_space.decode(address)
        if bar is None:
            raise ValueError(f"{self.name} does not claim address 0x{address:08x}")
        return bar
