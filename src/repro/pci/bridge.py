"""Host bridge: the host CPU's window onto the PCI bus.

The bridge performs bus enumeration (assigning BAR base addresses), exposes
programmed-I/O register access and owns the DMA engine.  The host driver in
:mod:`repro.core.host` talks exclusively through this object, mirroring how a
real driver would sit on top of the kernel's PCI layer.
"""

from __future__ import annotations

from typing import Dict, List

from repro.pci.bus import PciBus
from repro.pci.device import PciDevice
from repro.pci.dma import DmaDescriptor, DmaEngine


class HostBridge:
    """Enumerates devices and issues transactions on their behalf."""

    #: Base of the MMIO region the bridge hands out BAR addresses from.
    MMIO_BASE = 0xF000_0000

    def __init__(self, bus: PciBus, dma_burst_bytes: int = 256) -> None:
        self.bus = bus
        self.dma = DmaEngine(bus, max_burst_bytes=dma_burst_bytes)
        self._next_base = self.MMIO_BASE
        self._register_base: Dict[str, int] = {}
        self._window_base: Dict[str, int] = {}

    # ----------------------------------------------------------- enumeration
    def enumerate(self) -> List[PciDevice]:
        """Assign BAR addresses to every device on the bus and enable them."""
        devices = [device for device in self.bus.devices if isinstance(device, PciDevice)]
        for device in devices:
            for index in sorted(device.config_space.bars):
                bar = device.config_space.bars[index]
                aligned = self._align(self._next_base, bar.size_bytes)
                device.config_space.assign_bar(index, aligned)
                self._next_base = aligned + bar.size_bytes
                if index == 0:
                    self._register_base[device.name] = aligned
                elif index == 1:
                    self._window_base[device.name] = aligned
            device.config_space.enable_memory()
            device.config_space.enable_bus_master()
        return devices

    @staticmethod
    def _align(address: int, alignment: int) -> int:
        remainder = address % alignment
        return address if remainder == 0 else address + (alignment - remainder)

    def register_base(self, device_name: str) -> int:
        try:
            return self._register_base[device_name]
        except KeyError:
            raise KeyError(f"device {device_name!r} has not been enumerated") from None

    def window_base(self, device_name: str) -> int:
        try:
            return self._window_base[device_name]
        except KeyError:
            raise KeyError(f"device {device_name!r} has not been enumerated") from None

    # -------------------------------------------------------- programmed I/O
    def write_register(self, device_name: str, offset: int, value: int) -> None:
        address = self.register_base(device_name) + offset
        self.bus.write(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_register(self, device_name: str, offset: int) -> int:
        address = self.register_base(device_name) + offset
        return int.from_bytes(self.bus.read(address, 4), "little")

    def write_window(self, device_name: str, offset: int, payload: bytes) -> None:
        """Programmed-I/O write into the card's data window (small payloads)."""
        address = self.window_base(device_name) + offset
        self.bus.write(address, payload)

    def read_window(self, device_name: str, offset: int, length: int) -> bytes:
        address = self.window_base(device_name) + offset
        return self.bus.read(address, length)

    # ------------------------------------------------------------------ DMA
    def dma_to_card(self, device_name: str, offset: int, payload: bytes):
        """DMA a host buffer into the card's data window."""
        descriptor = DmaDescriptor(
            card_address=self.window_base(device_name) + offset,
            length=len(payload),
            to_card=True,
            host_buffer=payload,
        )
        return self.dma.transfer(descriptor)

    def dma_from_card(self, device_name: str, offset: int, length: int):
        """DMA from the card's data window into a host buffer."""
        descriptor = DmaDescriptor(
            card_address=self.window_base(device_name) + offset,
            length=length,
            to_card=False,
        )
        return self.dma.transfer(descriptor)
