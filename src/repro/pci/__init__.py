"""Transaction-level PCI interconnect.

The co-processor sits on a PCI card; the host drives it by writing command
and data transactions across the bus.  The model is transaction-level: each
read/write burst costs arbitration + address + data phases at the configured
bus clock and width, which is enough fidelity for the end-to-end experiments
(the host↔card transfer time is one of the terms the offload speedup in E5
depends on).
"""

from repro.pci.config_space import PciConfigSpace, BaseAddressRegister
from repro.pci.transaction import PciTransaction, TransactionKind
from repro.pci.bus import PciBus, PciBusTiming
from repro.pci.device import PciDevice, PciFunctionInterface
from repro.pci.dma import DmaEngine, DmaDescriptor
from repro.pci.bridge import HostBridge

__all__ = [
    "PciConfigSpace",
    "BaseAddressRegister",
    "PciTransaction",
    "TransactionKind",
    "PciBus",
    "PciBusTiming",
    "PciDevice",
    "PciFunctionInterface",
    "DmaEngine",
    "DmaDescriptor",
    "HostBridge",
]
