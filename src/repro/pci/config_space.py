"""PCI configuration space of the co-processor card.

Only the parts the host driver actually touches are modelled: the
identification registers, the command/status word and the base address
registers (BARs) through which the card's register file and data window are
mapped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class BaseAddressRegister:
    """One BAR: a window of *size_bytes* mapped at *base_address*."""

    index: int
    size_bytes: int
    base_address: int = 0
    prefetchable: bool = False

    def __post_init__(self) -> None:
        if self.index < 0 or self.index > 5:
            raise ValueError("PCI defines BARs 0..5")
        if self.size_bytes <= 0 or (self.size_bytes & (self.size_bytes - 1)) != 0:
            raise ValueError("BAR sizes must be positive powers of two")

    def contains(self, address: int) -> bool:
        return self.base_address <= address < self.base_address + self.size_bytes

    def offset_of(self, address: int) -> int:
        if not self.contains(address):
            raise ValueError(f"address 0x{address:x} is outside BAR{self.index}")
        return address - self.base_address


class PciConfigSpace:
    """The 256-byte configuration header of one PCI function."""

    VENDOR_ID = 0x10EE  # matches the Xilinx vendor id, as a nod to the PoC platform
    DEVICE_ID = 0xA91E  # "AGILE"

    COMMAND_IO_ENABLE = 0x0001
    COMMAND_MEMORY_ENABLE = 0x0002
    COMMAND_BUS_MASTER = 0x0004

    def __init__(self, bars: Optional[List[BaseAddressRegister]] = None) -> None:
        self.command = 0
        self.status = 0
        self.bars: Dict[int, BaseAddressRegister] = {}
        for bar in bars or []:
            self.add_bar(bar)

    def add_bar(self, bar: BaseAddressRegister) -> None:
        if bar.index in self.bars:
            raise ValueError(f"BAR{bar.index} already defined")
        self.bars[bar.index] = bar

    # -------------------------------------------------------------- control
    def enable_memory(self) -> None:
        self.command |= self.COMMAND_MEMORY_ENABLE

    def enable_bus_master(self) -> None:
        self.command |= self.COMMAND_BUS_MASTER

    @property
    def memory_enabled(self) -> bool:
        return bool(self.command & self.COMMAND_MEMORY_ENABLE)

    @property
    def bus_master_enabled(self) -> bool:
        return bool(self.command & self.COMMAND_BUS_MASTER)

    def assign_bar(self, index: int, base_address: int) -> None:
        """What the host's enumeration code does: program a BAR base address."""
        if index not in self.bars:
            raise KeyError(f"card has no BAR{index}")
        if base_address % self.bars[index].size_bytes != 0:
            raise ValueError("BAR base addresses must be naturally aligned")
        self.bars[index].base_address = base_address

    def decode(self, address: int) -> Optional[BaseAddressRegister]:
        """Return the BAR covering *address*, if the card responds to it."""
        if not self.memory_enabled:
            return None
        for bar in self.bars.values():
            if bar.contains(address):
                return bar
        return None
