"""Critical-path analysis over exported request span trees.

Given the spans of one traced run (anything with ``name`` / ``trace_id`` /
``span_id`` / ``parent_id`` / ``start_ns`` / ``end_ns`` attributes — the
module is duck-typed so it has no dependency on :mod:`repro.obs`), this
module answers the question a latency investigation actually asks: *which
stage made this request slow?*

The critical path is computed by a sweep over the root's window: every
instant is attributed to the **deepest covering span**, where depth is the
system layer the span's stage lives in (client envelope < transport <
link < gateway < fleet < card < device — :data:`STAGE_DEPTHS`), and ties
within a layer go to the latest-started span.  The result is a
chronological list of :class:`Segment` contributions that exactly tiles
the root window, so summing segment durations per stage name explains
100% of the request's latency.

Why a layered sweep rather than a parent-pointer tree walk: traced systems
record both *envelope* spans (a transport attempt covering everything that
happened during it) and *stage* spans (queue wait, card service), and the
two overlap without nesting — a queue wait outlasts the timed-out attempt
that admitted the request, a futile retransmit flies while the original is
still queued.  Walking parent links or interval containment credits those
instants to the envelope's self-time; attributing to the deepest *system
layer* instead says what the request was actually waiting on (the
admission-queue wait behind the timeout, not the timeout).  Within one
layer the latest-started covering span wins — the call-stack rule, which
for properly nested spans is exactly the classic innermost-span
attribution, so traces without cross-layer overlap (and traces from other
systems, where every unknown stage sits in the default layer) degrade to
ordinary nesting semantics.

On top of the per-trace walk:

* :func:`stage_breakdown` — per-stage count / total / p50 / p95 over raw
  span durations;
* :func:`top_critical_paths` — the k slowest requests with their paths;
* :func:`dominant_stages` — critical-path time aggregated by stage over the
  slowest fraction of requests (the "what dominates p95" headline: under
  admit-everything overload the ``fleet.queue`` stage dominates; with
  shedding it collapses and ``card.service`` is what remains).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple


class Segment(NamedTuple):
    """One critical-path contribution: *name* owned [start_ns, end_ns)."""

    name: str
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


class TracePath(NamedTuple):
    """One trace's critical path, chronological, tiling the root window."""

    trace_id: int
    root_name: str
    duration_ns: int
    segments: Tuple[Segment, ...]

    def by_stage(self) -> Dict[str, int]:
        """Critical-path nanoseconds per stage name (sums to duration)."""
        totals: Dict[str, int] = defaultdict(int)
        for segment in self.segments:
            totals[segment.name] += segment.duration_ns
        return dict(totals)


def group_by_trace(spans: Iterable) -> Dict[int, List]:
    """Spans bucketed by trace id, in input order."""
    traces: Dict[int, List] = defaultdict(list)
    for span in spans:
        traces[span.trace_id].append(span)
    return dict(traces)


def find_root(trace_spans: Sequence):
    """The unique parentless span of one trace, or None if not unique."""
    roots = [span for span in trace_spans if span.parent_id is None]
    return roots[0] if len(roots) == 1 else None


#: System layer per stage-name prefix (longest match wins).  Roots and
#: transport envelopes sit shallow; the fleet queue sits *below* the
#: attempts that envelope it, so overloaded requests charge their waiting
#: to the queue rather than to the timeout watching it; device sub-spans
#: sit deepest.  Unknown names default to layer 0, where pure call-stack
#: attribution (latest start wins) takes over.
STAGE_DEPTHS: Dict[str, int] = {
    "client.request": 0,
    "fleet.request": 0,
    "net.attempt": 1,
    "net.backoff": 1,
    "net.link.": 2,
    "gw.": 3,
    "fleet.": 4,
    "card.service": 5,
    "card.": 6,
}

_DEPTHS_BY_LENGTH = sorted(STAGE_DEPTHS.items(), key=lambda item: -len(item[0]))


def stage_depth(name: str) -> int:
    """System layer of a stage name (longest-prefix lookup, default 0)."""
    for prefix, depth in _DEPTHS_BY_LENGTH:
        if name.startswith(prefix):
            return depth
    return 0


def critical_path(trace_spans: Sequence, depth=stage_depth) -> Optional[TracePath]:
    """The layered-sweep critical path of one trace.

    Returns None for malformed traces (zero or several roots).  Every span
    is clipped to the root window; each elementary interval between span
    boundaries is attributed to the deepest covering span — *depth* (a
    ``name -> int`` callable, default :func:`stage_depth`) first, then
    latest start, then latest allocation — and adjacent intervals owned by
    the same stage name are merged.  Markers (zero-width spans) cover
    nothing and never appear on the path.
    """
    root = find_root(trace_spans)
    if root is None:
        return None
    lo, hi = root.start_ns, root.end_ns
    clipped = []
    for span in trace_spans:
        start = span.start_ns if span.start_ns > lo else lo
        end = span.end_ns if span.end_ns < hi else hi
        if end > start:
            clipped.append((start, end, span, depth(span.name)))
    bounds = sorted({edge for start, end, _, _ in clipped for edge in (start, end)})
    segments: List[Segment] = []
    for left, right in zip(bounds, bounds[1:]):
        owner = max(
            (
                (layer, span.start_ns, span.span_id, span)
                for start, end, span, layer in clipped
                if start <= left and end >= right
            ),
        )[-1]
        if segments and segments[-1].name == owner.name:
            segments[-1] = Segment(owner.name, segments[-1].start_ns, right)
        else:
            segments.append(Segment(owner.name, left, right))
    return TracePath(
        root.trace_id,
        root.name,
        hi - lo,
        tuple(segments),
    )


def critical_paths(
    spans: Iterable, depth=stage_depth, where=None
) -> List[TracePath]:
    """Critical paths for every well-formed trace, in first-seen order.

    *where*, if given, is a predicate over the root span; traces whose root
    fails it are skipped (e.g. ``lambda root: root.attrs["outcome"] ==
    "completed"`` to scope a brownout analysis to admitted traffic).
    """
    paths = []
    for trace_spans in group_by_trace(spans).values():
        root = find_root(trace_spans)
        if root is None or (where is not None and not where(root)):
            continue
        path = critical_path(trace_spans, depth=depth)
        if path is not None:
            paths.append(path)
    return paths


def _percentile(ordered: Sequence[int], percentile: float) -> int:
    """Nearest-rank percentile of a pre-sorted sequence."""
    if not ordered:
        return 0
    rank = max(0, min(len(ordered) - 1, int(percentile / 100.0 * len(ordered))))
    return ordered[rank]


def stage_breakdown(spans: Iterable) -> Dict[str, Dict[str, float]]:
    """Per-stage duration statistics over raw span durations.

    Returns ``{name: {count, total_ns, p50_ns, p95_ns}}`` sorted by total
    descending — the at-a-glance table of where simulated time went, before
    any per-request attribution.
    """
    durations: Dict[str, List[int]] = defaultdict(list)
    for span in spans:
        durations[span.name].append(span.end_ns - span.start_ns)
    out: Dict[str, Dict[str, float]] = {}
    for name, values in durations.items():
        values.sort()
        out[name] = {
            "count": len(values),
            "total_ns": sum(values),
            "p50_ns": _percentile(values, 50),
            "p95_ns": _percentile(values, 95),
        }
    return dict(
        sorted(out.items(), key=lambda item: (-item[1]["total_ns"], item[0]))
    )


def top_critical_paths(
    spans: Iterable,
    k: int = 3,
    root_name: Optional[str] = None,
    where=None,
) -> List[TracePath]:
    """The *k* slowest well-formed traces (optionally of one root kind)."""
    paths = critical_paths(spans, where=where)
    if root_name is not None:
        paths = [path for path in paths if path.root_name == root_name]
    paths.sort(key=lambda path: (-path.duration_ns, path.trace_id))
    return paths[:k]


def dominant_stages(
    spans: Iterable,
    top_fraction: float = 0.05,
    root_name: Optional[str] = None,
    where=None,
) -> List[Tuple[str, int]]:
    """Critical-path time per stage over the slowest *top_fraction* traces.

    The tail-latency attribution: rank traces by root duration, keep the
    slowest fraction (at least one), sum each stage's critical-path
    contribution across them, and return ``(stage, total_ns)`` sorted
    descending.  ``dominant_stages(spans)[0]`` names what p95 is made of.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    paths = critical_paths(spans, where=where)
    if root_name is not None:
        paths = [path for path in paths if path.root_name == root_name]
    if not paths:
        return []
    paths.sort(key=lambda path: (-path.duration_ns, path.trace_id))
    keep = paths[: max(1, int(len(paths) * top_fraction))]
    totals: Dict[str, int] = defaultdict(int)
    for path in keep:
        for name, contribution in path.by_stage().items():
            totals[name] += contribution
    return sorted(totals.items(), key=lambda item: (-item[1], item[0]))
