"""Experiment reports: the artefact each benchmark produces.

An :class:`ExperimentReport` bundles an experiment id (E1..E9), a headline
observation, any number of tables and figures, and renders them as one text
block.  The benchmark harness prints these, and EXPERIMENTS.md records the
headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.tables import Table


@dataclass
class ExperimentReport:
    """Structured result of one experiment."""

    experiment_id: str
    title: str
    tables: List[Table] = field(default_factory=list)
    figures: List[str] = field(default_factory=list)
    observations: List[str] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    def add_table(self, table: Table) -> Table:
        self.tables.append(table)
        return table

    def add_figure(self, figure: str) -> None:
        self.figures.append(figure)

    def observe(self, message: str) -> None:
        """Record a headline observation (one sentence, printed prominently)."""
        self.observations.append(message)

    def record_metric(self, name: str, value: float) -> None:
        self.metrics[name] = float(value)

    def render(self) -> str:
        banner = f"[{self.experiment_id}] {self.title}"
        lines = [banner, "=" * len(banner), ""]
        for observation in self.observations:
            lines.append(f"* {observation}")
        if self.observations:
            lines.append("")
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        for figure in self.figures:
            lines.append(figure)
            lines.append("")
        if self.metrics:
            lines.append("metrics:")
            for name, value in sorted(self.metrics.items()):
                lines.append(f"  {name} = {value:.6g}")
        return "\n".join(lines).rstrip() + "\n"

    def __str__(self) -> str:
        return self.render()
