"""Analysis helpers: tables, ASCII figures and experiment reports.

The benchmark harness prints its results through these helpers so every
experiment produces the same kind of artefact: a titled table (the "table"
form of the paper's evaluation) and, where a trend matters, an ASCII chart
(the "figure" form).
"""

from repro.analysis.tables import Table, format_value
from repro.analysis.figures import ascii_bar_chart, ascii_line_chart
from repro.analysis.report import ExperimentReport
from repro.analysis.sketch import StreamingQuantileSketch, WindowedTimeSeries
from repro.analysis.critical_path import (
    STAGE_DEPTHS,
    Segment,
    TracePath,
    critical_path,
    critical_paths,
    dominant_stages,
    stage_breakdown,
    stage_depth,
    top_critical_paths,
)

__all__ = [
    "Table",
    "format_value",
    "ascii_bar_chart",
    "ascii_line_chart",
    "ExperimentReport",
    "StreamingQuantileSketch",
    "WindowedTimeSeries",
    "STAGE_DEPTHS",
    "Segment",
    "TracePath",
    "critical_path",
    "critical_paths",
    "dominant_stages",
    "stage_breakdown",
    "stage_depth",
    "top_critical_paths",
]
