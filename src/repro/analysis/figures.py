"""ASCII charts for trends the experiments report as figures."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple


def ascii_bar_chart(
    title: str,
    values: Dict[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart: one labelled bar per entry.

    >>> print(ascii_bar_chart("demo", {"a": 2.0, "b": 1.0}, width=4))  # doctest: +ELLIPSIS
    demo
    ...
    """
    if width <= 0:
        raise ValueError("chart width must be positive")
    lines = [title, "-" * len(title)]
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    label_width = max(len(label) for label in values)
    maximum = max(values.values()) or 1.0
    for label, value in values.items():
        bar = "#" * max(0, int(round(value / maximum * width)))
        suffix = f" {value:.3g}{unit}"
        lines.append(f"{label.ljust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)


def ascii_line_chart(
    title: str,
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
) -> str:
    """A crude multi-series scatter/line chart on a character grid.

    Each series is a list of (x, y) points; series are drawn with distinct
    marker characters and a legend is appended.
    """
    if width <= 2 or height <= 2:
        raise ValueError("chart dimensions are too small")
    lines = [title, "-" * len(title)]
    all_points = [point for points in series.values() for point in points]
    if not all_points:
        lines.append("(no data)")
        return "\n".join(lines)
    xs = [point[0] for point in all_points]
    ys = [point[1] for point in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x@%&$"
    legend = []
    for series_index, (name, points) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        legend.append(f"{marker} = {name}")
        for x, y in points:
            column = int(round((x - x_low) / x_span * (width - 1)))
            row = int(round((y - y_low) / y_span * (height - 1)))
            grid[height - 1 - row][column] = marker
    top_label = f"{y_high:.3g}"
    bottom_label = f"{y_low:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width + f"  {x_low:.3g}" + " " * max(1, width - 12) + f"{x_high:.3g}"
    )
    lines.append("legend: " + ", ".join(legend))
    return "\n".join(lines)
