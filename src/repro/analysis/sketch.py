"""Streaming, mergeable statistics sketches for million-request runs.

The reservoir samplers in :mod:`repro.core.stats` / :mod:`repro.cluster.stats`
are *exact* for short traces but keep up to 50k–100k floats per tenant — fine
for the 10^2–10^4 requests of E1–E11, hopeless for a day of production
traffic.  This module provides the O(1)-memory alternatives the scale
experiments run on:

* :class:`StreamingQuantileSketch` — a deterministic log-bucketed quantile
  sketch (DDSketch-style).  Values are counted in geometrically spaced
  buckets ``gamma**i``; a quantile query walks the cumulative counts and
  returns the bucket midpoint, which is within a relative **value** error of
  ``relative_error`` of the true quantile of the stream.  Unlike a reservoir
  there is no sampling noise and no RNG: the sketch is a pure fold over the
  stream, so it is bit-reproducible and two sketches merge by adding bucket
  counts — exactly what the sharded fleet runner needs to combine per-shard
  latency distributions into the fleet-wide percentiles.

* :class:`WindowedTimeSeries` — fixed-width time windows over a monotone
  timestamp stream with a bounded ring of recent windows plus lifetime
  totals, for requests/s-over-time style counters that must not grow with
  the run length.

Error model (documented for the property tests): for a positive value ``v``
the sketch stores bucket ``ceil(log(v) / log(gamma))`` with
``gamma = (1 + e) / (1 - e)``; reporting the bucket's geometric midpoint
guarantees ``|estimate - v| <= e * v``.  Rank behaviour follows from value
behaviour: the estimate returned for quantile ``q`` is the bucket containing
the true nearest-rank quantile, so the estimate is within relative value
error ``e`` of the exact-mode (full-retention reservoir) answer.
"""

from __future__ import annotations

import math
from math import ceil as _ceil, log as _log
from typing import Dict, List, Optional, Sequence, Tuple


class StreamingQuantileSketch:
    """Deterministic log-bucket quantile sketch with bounded relative error.

    The memory footprint is O(number of distinct buckets), which for
    nanosecond latencies spanning [1, 10^12] at 1% relative error is a few
    hundred integers — independent of how many values are added.
    """

    def __init__(self, relative_error: float = 0.01, min_value: float = 1.0) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError("relative_error must be in (0, 1)")
        if min_value <= 0.0:
            raise ValueError("min_value must be positive")
        self.relative_error = relative_error
        self.min_value = min_value
        self.gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self.gamma)
        #: bucket index -> count; sparse because latency streams are clumpy.
        self._buckets: Dict[int, int] = {}
        #: values below ``min_value`` (incl. zero) are counted separately and
        #: reported as ``min_value`` — latencies that small are noise here.
        self._low_count = 0
        self.seen = 0
        self._min = math.inf
        self._max = -math.inf
        self._sum = 0.0
        # value -> bucket memo: latency streams repeat values heavily (a
        # resident hit of the same payload costs the same nanoseconds), and
        # the log() is the only non-trivial arithmetic on the add path.  The
        # cap bounds the memo on streams of mostly-distinct values, where a
        # full memo degrades to one failed dict probe per add.
        self._bucket_memo: Dict[float, int] = {}

    # ------------------------------------------------------------ recording
    def add(self, value: float) -> None:
        if value < 0.0:
            raise ValueError("sketch values must be non-negative")
        self.seen += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value < self.min_value:
            self._low_count += 1
            return
        memo = self._bucket_memo
        index = memo.get(value)
        if index is None:
            index = _ceil(_log(value) / self._log_gamma)
            if len(memo) < 1024:
                memo[value] = index
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + 1

    def bucket_index(self, value: float) -> int:
        """Bucket index for *value* (must be ``>= min_value``).

        Exposed so callers recording one value into several same-geometry
        sketches (fleet-wide + per-tenant sojourns) pay the ``log()`` once
        and feed :meth:`add_with_index` with the result.
        """
        memo = self._bucket_memo
        index = memo.get(value)
        if index is None:
            index = _ceil(_log(value) / self._log_gamma)
            if len(memo) < 1024:
                memo[value] = index
        return index

    def add_with_index(self, value: float, index: int) -> None:
        """Record *value* (``>= min_value``) into a precomputed bucket.

        Equivalent to :meth:`add` when *index* came from :meth:`bucket_index`
        on a sketch with identical geometry.
        """
        self.seen += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + 1

    def merge(self, other: "StreamingQuantileSketch") -> None:
        """Fold *other* into this sketch (bucket-count addition)."""
        if other.gamma != self.gamma or other.min_value != self.min_value:
            raise ValueError("can only merge sketches with identical geometry")
        buckets = self._buckets
        for index, count in other._buckets.items():
            buckets[index] = buckets.get(index, 0) + count
        self._low_count += other._low_count
        self.seen += other.seen
        self._sum += other._sum
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        # Parity with ReservoirSampler.__len__: "how many values back the
        # percentiles" — for a sketch that is the whole stream.
        return self.seen

    @property
    def mean(self) -> float:
        return self._sum / self.seen if self.seen else 0.0

    @property
    def bucket_count(self) -> int:
        """Number of occupied buckets — the sketch's actual footprint."""
        return len(self._buckets) + (1 if self._low_count else 0)

    def _bucket_value(self, index: int) -> float:
        # Geometric midpoint of (gamma**(i-1), gamma**i]: the point whose
        # worst-case relative distance to either edge is exactly
        # ``relative_error``.
        return 2.0 * self.gamma ** index / (self.gamma + 1.0)

    def quantile(self, q: float) -> float:
        """Value estimate at quantile ``q`` in [0, 1] (nearest rank)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be between 0 and 1")
        if self.seen == 0:
            return 0.0
        # Nearest-rank target matching percentile_of on a fully-retained
        # sample: index round(q * (n - 1)) of the sorted stream.
        rank = min(self.seen - 1, int(round(q * (self.seen - 1))))
        if rank < self._low_count:
            return min(self.min_value, self._max)
        cumulative = self._low_count
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if rank < cumulative:
                estimate = self._bucket_value(index)
                # Clamp to the observed range so tiny streams round nicely.
                return min(max(estimate, self._min), self._max)
        return self._max

    def percentile(self, percentile: float) -> float:
        """Drop-in for :meth:`ReservoirSampler.percentile` (0..100)."""
        if not 0 <= percentile <= 100:
            raise ValueError("percentile must be between 0 and 100")
        return self.quantile(percentile / 100.0)

    def percentiles(self, wanted: Sequence[float]) -> List[float]:
        return [self.percentile(p) for p in wanted]

    def to_dict(self) -> Dict[str, object]:
        """Picklable snapshot (used to ship shard sketches to the merger)."""
        return {
            "relative_error": self.relative_error,
            "min_value": self.min_value,
            "buckets": dict(self._buckets),
            "low_count": self._low_count,
            "seen": self.seen,
            "min": self._min,
            "max": self._max,
            "sum": self._sum,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamingQuantileSketch":
        sketch = cls(
            relative_error=float(data["relative_error"]),
            min_value=float(data["min_value"]),
        )
        sketch._buckets = {int(k): int(v) for k, v in dict(data["buckets"]).items()}
        sketch._low_count = int(data["low_count"])
        sketch.seen = int(data["seen"])
        sketch._min = float(data["min"])
        sketch._max = float(data["max"])
        sketch._sum = float(data["sum"])
        return sketch


class WindowedTimeSeries:
    """Per-window (count, value-sum) over a monotone timestamp stream.

    Keeps at most ``max_windows`` recent windows plus lifetime totals, so a
    10^6-request run costs the same memory as a 10^2-request run.  Windows
    are aligned to multiples of ``window_ns`` from time zero, which makes two
    series recorded on different shards mergeable window-by-window.
    """

    def __init__(self, window_ns: float = 1_000_000.0, max_windows: int = 256) -> None:
        if window_ns <= 0:
            raise ValueError("window width must be positive")
        if max_windows < 1:
            raise ValueError("need at least one window")
        self.window_ns = window_ns
        self.max_windows = max_windows
        self._windows: Dict[int, List[float]] = {}  # index -> [count, sum]
        # Monotone streams hit the same window dozens of times in a row;
        # keeping the last (index, row) pair skips the dict probe for them.
        self._last_index: Optional[int] = None
        self._last_window: Optional[List[float]] = None
        self.total_count = 0
        self.total_value = 0.0
        self.dropped_windows = 0

    def record(self, time_ns: float, value: float = 1.0) -> None:
        index = int(time_ns // self.window_ns)
        if index == self._last_index:
            window = self._last_window
        else:
            window = self._windows.get(index)
            if window is None:
                window = [0.0, 0.0]
                self._windows[index] = window
                if len(self._windows) > self.max_windows:
                    oldest = min(self._windows)
                    del self._windows[oldest]
                    self.dropped_windows += 1
                    if oldest == index:
                        # A backward jump past every retained window evicts
                        # the row it just created; don't cache an orphan.
                        self._last_index = None
                        self._last_window = None
                        window[0] += 1.0
                        window[1] += value
                        self.total_count += 1
                        self.total_value += value
                        return
            self._last_index = index
            self._last_window = window
        window[0] += 1.0
        window[1] += value
        self.total_count += 1
        self.total_value += value

    def merge(self, other: "WindowedTimeSeries") -> None:
        if other.window_ns != self.window_ns:
            raise ValueError("can only merge series with identical window width")
        for index, (count, total) in other._windows.items():
            window = self._windows.get(index)
            if window is None:
                self._windows[index] = [count, total]
            else:
                window[0] += count
                window[1] += total
        while len(self._windows) > self.max_windows:
            del self._windows[min(self._windows)]
            self.dropped_windows += 1
        # Merging may have evicted or replaced the cached row.
        self._last_index = None
        self._last_window = None
        self.total_count += other.total_count
        self.total_value += other.total_value
        self.dropped_windows += other.dropped_windows

    def windows(self) -> List[Tuple[float, int, float]]:
        """Sorted ``(window_start_ns, count, value_sum)`` rows."""
        return [
            (index * self.window_ns, int(count), total)
            for index, (count, total) in sorted(self._windows.items())
        ]

    def trailing(self, now_ns: float, horizon_ns: float) -> Tuple[int, float]:
        """``(count, value_sum)`` over windows touching ``(now - horizon, now]``.

        Window-granular on purpose: the SLO engine trades sub-window
        precision for O(retained windows) evaluation with zero extra state.
        Windows older than the ring has retained are simply absent, which
        under-counts long horizons on very bursty streams — callers size
        ``max_windows`` to cover their largest horizon.
        """
        lo = int((now_ns - horizon_ns) // self.window_ns)
        hi = int(now_ns // self.window_ns)
        count = 0
        value = 0.0
        for index, (window_count, window_value) in self._windows.items():
            if lo <= index <= hi:
                count += int(window_count)
                value += window_value
        return count, value

    def peak_rate_per_s(self) -> float:
        """Highest per-window event rate, scaled to events/second."""
        if not self._windows:
            return 0.0
        peak = max(count for count, _ in self._windows.values())
        return peak / (self.window_ns / 1e9)

    def mean_value(self) -> float:
        return self.total_value / self.total_count if self.total_count else 0.0


__all__ = ["StreamingQuantileSketch", "WindowedTimeSeries"]
