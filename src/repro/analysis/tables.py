"""Plain-text tables for experiment output."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def format_value(value: Any) -> str:
    """Render a cell: floats get sensible precision, everything else ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


class Table:
    """A titled table with named columns, rendered as aligned text."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any, **named: Any) -> None:
        """Add a row either positionally or by column name."""
        if values and named:
            raise ValueError("pass either positional values or named values, not both")
        if named:
            values = tuple(named.get(column, "") for column in self.columns)
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but the table has {len(self.columns)} columns"
            )
        self.rows.append([format_value(value) for value in values])

    def add_dict_rows(self, rows: Sequence[Dict[str, Any]]) -> None:
        for row in rows:
            self.add_row(**row)

    def sort_by(self, column: str, reverse: bool = False, numeric: bool = True) -> None:
        """Sort rows by a column (best effort numeric parsing)."""
        index = self.columns.index(column)

        def key(row: List[str]):
            if numeric:
                try:
                    return float(row[index].replace(",", ""))
                except ValueError:
                    return float("inf")
            return row[index]

        self.rows.sort(key=key, reverse=reverse)

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        separator = "-+-".join("-" * width for width in widths)
        header = " | ".join(column.ljust(width) for column, width in zip(self.columns, widths))
        lines = [self.title, "=" * len(self.title), header, separator]
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def to_dicts(self) -> List[Dict[str, str]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column_values(self, column: str) -> List[str]:
        index = self.columns.index(column)
        return [row[index] for row in self.rows]

    def __str__(self) -> str:
        return self.render()
