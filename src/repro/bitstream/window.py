"""Window-by-window compression and streaming decompression.

The paper's configuration module "decompresses the compressed bit-stream
window by window and passes the configuration bit-stream to the FPGA".  The
:class:`WindowedCompressor` splits a serialised bit-stream into fixed-size
windows and compresses each independently (passing the previous raw window as
context for differential codecs); the resulting :class:`CompressedImage` is
what the host downloads into the ROM.  The :class:`WindowedDecompressor`
yields raw windows one at a time so the configuration module can stream them
to the configuration port without ever buffering the whole image.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.bitstream.codecs.base import Codec, CodecError, get_codec
from repro.bitstream.crc import crc32

_IMAGE_MAGIC = b"AGCW"
_IMAGE_HEADER = struct.Struct(">4sB15sIII")
_WINDOW_HEADER = struct.Struct(">II")


@dataclass
class CompressedImage:
    """A windowed, compressed bit-stream image as stored in the ROM.

    Attributes
    ----------
    codec_name:
        Registry name of the codec used for every window.
    window_bytes:
        Raw (uncompressed) size of each window except possibly the last.
    original_length:
        Total uncompressed length in bytes.
    windows:
        The compressed windows, in order.
    """

    codec_name: str
    window_bytes: int
    original_length: int
    windows: List[bytes] = field(default_factory=list)

    @property
    def compressed_length(self) -> int:
        """Total compressed payload bytes (excluding per-window headers)."""
        return sum(len(window) for window in self.windows)

    @property
    def stored_length(self) -> int:
        """Bytes the image occupies in the ROM, headers included."""
        return _IMAGE_HEADER.size + sum(
            _WINDOW_HEADER.size + len(window) for window in self.windows
        )

    @property
    def compression_ratio(self) -> float:
        """original / stored; values above 1.0 mean the image shrank."""
        return self.original_length / max(1, self.stored_length)

    @property
    def window_count(self) -> int:
        return len(self.windows)

    # ------------------------------------------------------------ serialise
    def to_bytes(self) -> bytes:
        """Serialise for storage in the ROM.

        Single pass: the per-window CRC and the running payload CRC are
        computed together, then the header is patched in front.
        """
        name_bytes = self.codec_name.encode("ascii")[:15].ljust(15, b"\x00")
        payload_crc = 0
        parts: List[bytes] = [b""]  # placeholder for the image header
        for window in self.windows:
            payload_crc = crc32(window, payload_crc)
            parts.append(_WINDOW_HEADER.pack(len(window), crc32(window)))
            parts.append(window)
        parts[0] = _IMAGE_HEADER.pack(
            _IMAGE_MAGIC,
            1,
            name_bytes,
            self.window_bytes,
            self.original_length,
            payload_crc,
        )
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CompressedImage":
        """Parse an image previously produced by :meth:`to_bytes`."""
        if len(data) < _IMAGE_HEADER.size:
            raise CodecError("compressed image shorter than its header")
        magic, version, name_bytes, window_bytes, original_length, stored_crc = (
            _IMAGE_HEADER.unpack_from(data)
        )
        if magic != _IMAGE_MAGIC:
            raise CodecError(f"bad compressed-image magic {magic!r}")
        if version != 1:
            raise CodecError(f"unsupported compressed-image version {version}")
        codec_name = name_bytes.rstrip(b"\x00").decode("ascii")
        offset = _IMAGE_HEADER.size
        windows: List[bytes] = []
        running_crc = 0
        while offset < len(data):
            if offset + _WINDOW_HEADER.size > len(data):
                raise CodecError("truncated window header in compressed image")
            length, window_crc = _WINDOW_HEADER.unpack_from(data, offset)
            offset += _WINDOW_HEADER.size
            if offset + length > len(data):
                raise CodecError("truncated window payload in compressed image")
            window = data[offset : offset + length]
            offset += length
            if crc32(window) != window_crc:
                raise CodecError("window CRC mismatch in compressed image")
            running_crc = crc32(window, running_crc)
            windows.append(window)
        if running_crc != stored_crc:
            raise CodecError("compressed image payload CRC mismatch")
        return cls(codec_name, window_bytes, original_length, windows)


class WindowedCompressor:
    """Splits raw bit-stream bytes into windows and compresses each one."""

    def __init__(self, codec: Codec, window_bytes: int = 1024) -> None:
        if window_bytes <= 0:
            raise ValueError("window size must be positive")
        self.codec = codec
        self.window_bytes = window_bytes

    def compress(self, data: bytes) -> CompressedImage:
        windows: List[bytes] = []
        previous: Optional[bytes] = None
        for start in range(0, len(data), self.window_bytes):
            window = data[start : start + self.window_bytes]
            windows.append(self.codec.compress_window(window, previous))
            previous = window
        return CompressedImage(
            codec_name=self.codec.name,
            window_bytes=self.window_bytes,
            original_length=len(data),
            windows=windows,
        )


class WindowedDecompressor:
    """Streaming decompressor: yields raw windows in order.

    The decompressor keeps only the previous raw window as state, matching the
    bounded buffering of the microcontroller's configuration module.
    """

    def __init__(self, image: CompressedImage, codec: Optional[Codec] = None) -> None:
        self.image = image
        self.codec = codec if codec is not None else get_codec(image.codec_name)
        if self.codec.name != image.codec_name:
            raise CodecError(
                f"image was compressed with {image.codec_name!r} but decompressor "
                f"was given {self.codec.name!r}"
            )

    def __iter__(self) -> Iterator[bytes]:
        return self.windows()

    def windows(self) -> Iterator[bytes]:
        """Yield each raw window in order."""
        previous: Optional[bytes] = None
        produced = 0
        for blob in self.image.windows:
            window = self.codec.decompress_window(blob, previous)
            produced += len(window)
            previous = window
            yield window
        if produced != self.image.original_length:
            raise CodecError(
                f"windowed decompression produced {produced} bytes, "
                f"expected {self.image.original_length}"
            )

    def decompress_all(self) -> bytes:
        """Convenience: concatenate every window (tests and baselines)."""
        return b"".join(self.windows())
