"""Configuration bit-stream format and compression.

The ROM stores *compressed* configuration bit-streams; the microcontroller's
configuration module decompresses them *window by window* and feeds the FPGA
configuration port.  This package provides:

* the packetised bit-stream container format (:mod:`repro.bitstream.format`),
* a table-driven CRC-32 used for bit-stream integrity (:mod:`repro.bitstream.crc`),
* a suite of compression codecs (:mod:`repro.bitstream.codecs`) including the
  CLB-symmetry-aware codec the paper's conclusion calls for,
* the windowed streaming compressor/decompressor (:mod:`repro.bitstream.window`).
"""

from repro.bitstream.crc import crc32
from repro.bitstream.bitio import BitReader, BitWriter
from repro.bitstream.format import (
    Bitstream,
    BitstreamHeader,
    FrameDataPacket,
    PacketType,
    build_bitstream,
    parse_bitstream,
)
from repro.bitstream.codecs import (
    Codec,
    CodecError,
    NullCodec,
    RunLengthCodec,
    LZ77Codec,
    HuffmanCodec,
    GolombRiceCodec,
    FrameDifferentialCodec,
    SymmetryAwareCodec,
    available_codecs,
    get_codec,
    register_codec,
)
# NOTE: repro.bitstream.relocate is deliberately not re-exported here: it
# imports repro.fpga (frame regions, geometries), and repro.fpga.frame in turn
# imports repro.bitstream.crc — loading it during this package's own init
# would be a circular import.  Import it as repro.bitstream.relocate.
from repro.bitstream.window import (
    CompressedImage,
    WindowedCompressor,
    WindowedDecompressor,
)

__all__ = [
    "crc32",
    "BitReader",
    "BitWriter",
    "Bitstream",
    "BitstreamHeader",
    "FrameDataPacket",
    "PacketType",
    "build_bitstream",
    "parse_bitstream",
    "Codec",
    "CodecError",
    "NullCodec",
    "RunLengthCodec",
    "LZ77Codec",
    "HuffmanCodec",
    "GolombRiceCodec",
    "FrameDifferentialCodec",
    "SymmetryAwareCodec",
    "available_codecs",
    "get_codec",
    "register_codec",
    "CompressedImage",
    "WindowedCompressor",
    "WindowedDecompressor",
]
