"""Relocatable bit-stream helpers: rebase a frame region onto new addresses.

The bit-stream format is already *slot*-indexed (packets carry the frame's
position within the function's region, never an absolute device address), so
a captured readback image can be restored anywhere — on a different region of
the same fabric, or on a different card entirely — as long as the physical
frames are interchangeable.  This module provides the two primitives the
migration and defragmentation paths share:

* :func:`compatible_fabrics` — are two fabric geometries frame-compatible,
  i.e. does a frame's configuration payload mean the same thing on both?
* :func:`rebase_region` — map a region onto a new base frame, preserving the
  region's *shape* (the relative flat-index offsets between its frames), so a
  scattered region stays scattered the same way after the move.

Live migration gates on ``compatible_fabrics`` wherever both geometries are
in hand — the fleet :class:`~repro.cluster.rebalance.Rebalancer` when
choosing a destination card, and
:meth:`~repro.core.host.HostDriver.migrate_function_to` before capturing —
because the wire format itself can only check frame *sizes*.  The
destination's mini OS then chooses the new region from its own free frame
list (the in-card rebase).  ``rebase_region`` is the explicit shape-preserving
rebase used by device-level relocations and the property suite; note the
defragmenter deliberately does **not** preserve shape — compaction turns
scattered regions into contiguous ones.
"""

from __future__ import annotations

from typing import List

from repro.fpga.frame import FrameRegion
from repro.fpga.geometry import FabricGeometry, FrameAddress


class RelocationError(ValueError):
    """Raised when a region cannot be rebased onto the requested target."""


def compatible_fabrics(source: FabricGeometry, target: FabricGeometry) -> bool:
    """True when a frame payload from *source* is valid on *target*.

    Frame compatibility is about the *contents* of one frame — CLBs per
    frame, LUTs per CLB, LUT width and switch-box bytes — not about the
    device's overall size: a bigger card can host a smaller card's frames.
    """
    return (
        source.clb_rows_per_frame == target.clb_rows_per_frame
        and source.luts_per_clb == target.luts_per_clb
        and source.lut_inputs == target.lut_inputs
        and source.switch_bytes_per_clb == target.switch_bytes_per_clb
    )


def rebase_region(
    source: FabricGeometry,
    region: FrameRegion,
    target: FabricGeometry,
    target_start: int,
) -> FrameRegion:
    """Rebase *region* so its lowest frame lands at flat index *target_start*.

    The relative flat-index offsets between the region's frames are preserved
    (a contiguous region stays contiguous, a scattered one keeps its gaps) and
    the region's *order* — which is the bit-stream's slot order — is kept, so
    payload slot *i* still belongs to the *i*-th frame of the result.

    Raises :class:`RelocationError` when the fabrics are frame-incompatible
    or any rebased frame falls outside the target fabric.
    """
    if not compatible_fabrics(source, target):
        raise RelocationError(
            f"fabrics are frame-incompatible: {source.frame_config_bytes}-byte "
            f"frames with {source.clbs_per_frame} CLBs vs "
            f"{target.frame_config_bytes}-byte frames with {target.clbs_per_frame} CLBs"
        )
    if len(region) == 0:
        raise RelocationError("cannot rebase an empty region")
    if target_start < 0:
        raise RelocationError("target start index cannot be negative")
    source_tiles = source.tiles_per_column
    indices = [address.flat_index(source_tiles) for address in region]
    base = min(indices)
    rebased: List[FrameAddress] = []
    for index in indices:
        flat = target_start + (index - base)
        if flat >= target.frame_count:
            raise RelocationError(
                f"rebased frame index {flat} falls off a "
                f"{target.frame_count}-frame fabric"
            )
        rebased.append(target.frame_at(flat))
    return FrameRegion.from_addresses(rebased)
