"""Bit-level I/O helpers used by the entropy codecs (Huffman, Golomb-Rice).

Both classes batch their work through Python integers instead of looping per
bit: the writer accumulates bits in an int and emits whole bytes with
``int.to_bytes``; the reader refills an int bit-buffer from the byte string in
large chunks with ``int.from_bytes`` and serves ``read_bits`` /
``read_unary`` word-at-a-time out of it.  The bit-stream format (MSB first,
zero-padded to a whole byte) is unchanged.
"""

from __future__ import annotations

#: Flush the writer's accumulator once it holds this many bits, so the int
#: stays a few machine words wide and appending to it stays O(1).
_FLUSH_BITS = 512

#: How many bytes the reader pulls into its bit buffer per refill.  Small
#: refills keep the buffer a few machine words wide, so the per-read shift and
#: mask stay O(1); large refills would turn them into multi-word operations.
_REFILL_BYTES = 64


class BitWriter:
    """Accumulates bits most-significant-bit first and renders padded bytes."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc = 0
        self._acc_bits = 0
        self.bit_count = 0

    def _flush_whole_bytes(self) -> None:
        remainder = self._acc_bits & 7
        whole_bits = self._acc_bits - remainder
        if whole_bits:
            self._buffer += (self._acc >> remainder).to_bytes(whole_bits >> 3, "big")
            self._acc &= (1 << remainder) - 1
            self._acc_bits = remainder

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        self._acc = (self._acc << 1) | bit
        self._acc_bits += 1
        self.bit_count += 1
        if self._acc_bits >= _FLUSH_BITS:
            self._flush_whole_bytes()

    def write_bits(self, value: int, width: int) -> None:
        """Append *width* bits of *value*, most significant first."""
        if width < 0:
            raise ValueError("bit width cannot be negative")
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._acc = (self._acc << width) | value
        self._acc_bits += width
        self.bit_count += width
        if self._acc_bits >= _FLUSH_BITS:
            self._flush_whole_bytes()

    def write_unary(self, value: int) -> None:
        """Append *value* one-bits followed by a terminating zero."""
        if value < 0:
            raise ValueError("unary values must be non-negative")
        # value ones then a zero, as one integer: 2**(value+1) - 2.
        self._acc = (self._acc << (value + 1)) | ((1 << (value + 1)) - 2)
        self._acc_bits += value + 1
        self.bit_count += value + 1
        if self._acc_bits >= _FLUSH_BITS:
            self._flush_whole_bytes()

    def getvalue(self) -> bytes:
        """The written bits padded with zeros to a whole number of bytes."""
        self._flush_whole_bytes()
        result = bytearray(self._buffer)
        if self._acc_bits:
            result.append((self._acc << (8 - self._acc_bits)) & 0xFF)
        return bytes(result)


class BitReader:
    """Reads bits most-significant-bit first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._total_bits = len(self._data) * 8
        self._byte_pos = 0  # next byte to refill the bit buffer from
        self._buf = 0  # buffered bits; the next bit to read is the MSB
        self._buf_bits = 0

    @property
    def bits_remaining(self) -> int:
        return self._total_bits - self._byte_pos * 8 + self._buf_bits

    def _refill(self) -> bool:
        chunk = self._data[self._byte_pos : self._byte_pos + _REFILL_BYTES]
        if not chunk:
            return False
        self._byte_pos += len(chunk)
        self._buf = (self._buf << (len(chunk) * 8)) | int.from_bytes(chunk, "big")
        self._buf_bits += len(chunk) * 8
        return True

    def read_bit(self) -> int:
        buf_bits = self._buf_bits
        if not buf_bits:
            if not self._refill():
                raise EOFError("attempt to read past the end of the bit stream")
            buf_bits = self._buf_bits
        buf_bits -= 1
        bit = self._buf >> buf_bits
        self._buf &= (1 << buf_bits) - 1
        self._buf_bits = buf_bits
        return bit

    def read_bits(self, width: int) -> int:
        """Read *width* bits as an unsigned integer (MSB first)."""
        if width < 0:
            raise ValueError("bit width cannot be negative")
        while self._buf_bits < width:
            if not self._refill():
                raise EOFError("attempt to read past the end of the bit stream")
        buf_bits = self._buf_bits - width
        value = self._buf >> buf_bits
        self._buf &= (1 << buf_bits) - 1
        self._buf_bits = buf_bits
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value (count of one-bits before the zero)."""
        count = 0
        while True:
            buf_bits = self._buf_bits
            if not buf_bits:
                if not self._refill():
                    raise EOFError("attempt to read past the end of the bit stream")
                buf_bits = self._buf_bits
            buf = self._buf
            inverted = buf ^ ((1 << buf_bits) - 1)
            if not inverted:
                # Every buffered bit is a one; consume them all and refill.
                count += buf_bits
                self._buf = 0
                self._buf_bits = 0
                continue
            # Highest zero bit terminates the run of ones above it.
            zero_pos = inverted.bit_length() - 1
            count += buf_bits - 1 - zero_pos
            self._buf = buf & ((1 << zero_pos) - 1)
            self._buf_bits = zero_pos
            return count

    def align_to_byte(self) -> None:
        """Skip forward to the next byte boundary."""
        consumed = self._byte_pos * 8 - self._buf_bits
        remainder = consumed & 7
        if remainder:
            self._buf_bits -= 8 - remainder
            self._buf &= (1 << self._buf_bits) - 1
