"""Bit-level I/O helpers used by the entropy codecs (Huffman, Golomb-Rice)."""

from __future__ import annotations

from typing import Iterable, List


class BitWriter:
    """Accumulates bits most-significant-bit first and renders padded bytes."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._filled = 0
        self.bit_count = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        self._current = (self._current << 1) | bit
        self._filled += 1
        self.bit_count += 1
        if self._filled == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append *width* bits of *value*, most significant first."""
        if width < 0:
            raise ValueError("bit width cannot be negative")
        if value < 0 or (width < 64 and value >= (1 << width)):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for position in range(width - 1, -1, -1):
            self.write_bit((value >> position) & 1)

    def write_unary(self, value: int) -> None:
        """Append *value* one-bits followed by a terminating zero."""
        if value < 0:
            raise ValueError("unary values must be non-negative")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def getvalue(self) -> bytes:
        """The written bits padded with zeros to a whole number of bytes."""
        result = bytearray(self._buffer)
        if self._filled:
            result.append(self._current << (8 - self._filled))
        return bytes(result)


class BitReader:
    """Reads bits most-significant-bit first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._position

    def read_bit(self) -> int:
        if self._position >= len(self._data) * 8:
            raise EOFError("attempt to read past the end of the bit stream")
        byte_index, bit_index = divmod(self._position, 8)
        self._position += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, width: int) -> int:
        """Read *width* bits as an unsigned integer (MSB first)."""
        if width < 0:
            raise ValueError("bit width cannot be negative")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value (count of one-bits before the zero)."""
        count = 0
        while self.read_bit() == 1:
            count += 1
        return count

    def align_to_byte(self) -> None:
        """Skip forward to the next byte boundary."""
        remainder = self._position % 8
        if remainder:
            self._position += 8 - remainder
