"""Codec interface and registry."""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional


class CodecError(ValueError):
    """Raised when a compressed blob cannot be decoded."""


class Codec(abc.ABC):
    """A lossless byte-string compressor.

    Subclasses must define :attr:`name`, :meth:`compress` and
    :meth:`decompress`.  ``compress_window`` / ``decompress_window`` add an
    optional *previous window* context used by differential codecs; the
    default implementations simply ignore the context, so plain codecs work
    unchanged under the windowed streaming layer.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress *data*; must be exactly invertible by :meth:`decompress`."""

    @abc.abstractmethod
    def decompress(self, blob: bytes) -> bytes:
        """Invert :meth:`compress`."""

    # ------------------------------------------------------ windowed variant
    def compress_window(self, window: bytes, previous_window: Optional[bytes] = None) -> bytes:
        """Compress one window given the previous *raw* window as context."""
        return self.compress(window)

    def decompress_window(self, blob: bytes, previous_window: Optional[bytes] = None) -> bytes:
        """Decompress one window given the previous *raw* window as context."""
        return self.decompress(blob)

    # ---------------------------------------------------------------- extras
    def ratio(self, data: bytes) -> float:
        """Compression ratio (original / compressed); > 1 means it shrank."""
        if not data:
            return 1.0
        compressed = self.compress(data)
        return len(data) / max(1, len(compressed))

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(name={self.name!r})"


class NullCodec(Codec):
    """Identity codec — stores data uncompressed.

    Used as the "no compression" baseline in the E4 experiment and as the
    default when a function's bit-stream is already dense.
    """

    name = "null"

    def compress(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress(self, blob: bytes) -> bytes:
        return bytes(blob)


_REGISTRY: Dict[str, Callable[[], Codec]] = {}


def register_codec(name: str, factory: Callable[[], Codec]) -> None:
    """Register a codec constructor under *name* (overwrites silently)."""
    _REGISTRY[name] = factory


def get_codec(name: str) -> Codec:
    """Instantiate a codec by registry name.

    Raises :class:`KeyError` with the list of known codecs when unknown.
    """
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown codec {name!r}; known codecs: {known}") from None


def available_codecs() -> List[str]:
    """Sorted names of every registered codec."""
    return sorted(_REGISTRY)


register_codec(NullCodec.name, NullCodec)
