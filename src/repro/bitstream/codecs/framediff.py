"""Frame-differential compression.

Adjacent frames of the same function are often near-identical (datapath bit
slices replicate column to column), so XOR-ing each window against the
previous raw window turns most of the payload into zeros, which the inner
run-length stage then collapses.  This mirrors the "difference based" flow of
Xilinx XAPP290 referenced by the paper, applied between frames of one
bit-stream rather than between two full device images.

The codec is *context dependent*: the windowed layer passes the previous raw
window to :meth:`compress_window` / :meth:`decompress_window`.  When used on a
whole buffer (no context), it chunks the buffer internally using
``frame_size`` as the window.
"""

from __future__ import annotations

from typing import Optional

from repro.bitstream.codecs.base import Codec, register_codec
from repro.bitstream.codecs.rle import RunLengthCodec


def _xor_bytes(data: bytes, reference: bytes) -> bytes:
    """XOR *data* with *reference* (reference padded/truncated to match).

    Both buffers are treated as one big integer so the XOR runs word-at-a-time
    instead of byte-at-a-time.
    """
    size = len(data)
    if not size:
        return b""
    if len(reference) > size:
        reference = reference[:size]
    value = int.from_bytes(data, "big") ^ (
        int.from_bytes(reference, "big") << (8 * (size - len(reference)))
    )
    return value.to_bytes(size, "big")


class FrameDifferentialCodec(Codec):
    """XOR-against-previous-frame followed by run-length coding."""

    name = "framediff"

    def __init__(self, frame_size: int = 1024) -> None:
        if frame_size <= 0:
            raise ValueError("frame size must be positive")
        self.frame_size = frame_size
        self._inner = RunLengthCodec()

    # --------------------------------------------------------- whole buffer
    def compress(self, data: bytes) -> bytes:
        # XOR-ing every frame with the previous raw frame is, viewed as one
        # big integer, ``data ^ (data >> frame_size bytes)``: the shift drops
        # frame i-1's bytes onto frame i (and zeros onto frame 0).
        size = len(data)
        if not size:
            return self._inner.compress(b"")
        value = int.from_bytes(data, "big")
        transformed = value ^ (value >> (8 * self.frame_size))
        return self._inner.compress(transformed.to_bytes(size, "big"))

    def decompress(self, blob: bytes) -> bytes:
        transformed = self._inner.decompress(blob)
        size = len(transformed)
        if not size:
            return b""
        # Inverse of the shifted XOR: a strided prefix-XOR, computed with the
        # doubling trick (each pass folds in frames twice as far back).
        value = int.from_bytes(transformed, "big")
        shift = 8 * self.frame_size
        total_bits = 8 * size
        while shift < total_bits:
            value ^= value >> shift
            shift <<= 1
        return value.to_bytes(size, "big")

    # ------------------------------------------------------------- windowed
    def compress_window(self, window: bytes, previous_window: Optional[bytes] = None) -> bytes:
        reference = previous_window if previous_window is not None else b"\x00" * len(window)
        return self._inner.compress(_xor_bytes(window, reference))

    def decompress_window(self, blob: bytes, previous_window: Optional[bytes] = None) -> bytes:
        delta = self._inner.decompress(blob)
        reference = previous_window if previous_window is not None else b"\x00" * len(delta)
        return _xor_bytes(delta, reference)


register_codec(FrameDifferentialCodec.name, FrameDifferentialCodec)
