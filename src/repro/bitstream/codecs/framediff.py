"""Frame-differential compression.

Adjacent frames of the same function are often near-identical (datapath bit
slices replicate column to column), so XOR-ing each window against the
previous raw window turns most of the payload into zeros, which the inner
run-length stage then collapses.  This mirrors the "difference based" flow of
Xilinx XAPP290 referenced by the paper, applied between frames of one
bit-stream rather than between two full device images.

The codec is *context dependent*: the windowed layer passes the previous raw
window to :meth:`compress_window` / :meth:`decompress_window`.  When used on a
whole buffer (no context), it chunks the buffer internally using
``frame_size`` as the window.
"""

from __future__ import annotations

from typing import Optional

from repro.bitstream.codecs.base import Codec, CodecError, register_codec
from repro.bitstream.codecs.rle import RunLengthCodec


def _xor_bytes(data: bytes, reference: bytes) -> bytes:
    """XOR *data* with *reference* (reference padded/truncated to match)."""
    if len(reference) < len(data):
        reference = reference + b"\x00" * (len(data) - len(reference))
    return bytes(a ^ b for a, b in zip(data, reference[: len(data)]))


class FrameDifferentialCodec(Codec):
    """XOR-against-previous-frame followed by run-length coding."""

    name = "framediff"

    def __init__(self, frame_size: int = 1024) -> None:
        if frame_size <= 0:
            raise ValueError("frame size must be positive")
        self.frame_size = frame_size
        self._inner = RunLengthCodec()

    # --------------------------------------------------------- whole buffer
    def compress(self, data: bytes) -> bytes:
        transformed = bytearray()
        previous = b"\x00" * self.frame_size
        for start in range(0, len(data), self.frame_size):
            window = data[start : start + self.frame_size]
            transformed.extend(_xor_bytes(window, previous))
            previous = window
        return self._inner.compress(bytes(transformed))

    def decompress(self, blob: bytes) -> bytes:
        transformed = self._inner.decompress(blob)
        out = bytearray()
        previous = b"\x00" * self.frame_size
        for start in range(0, len(transformed), self.frame_size):
            delta = transformed[start : start + self.frame_size]
            window = _xor_bytes(delta, previous)
            out.extend(window)
            previous = window
        return bytes(out)

    # ------------------------------------------------------------- windowed
    def compress_window(self, window: bytes, previous_window: Optional[bytes] = None) -> bytes:
        reference = previous_window if previous_window is not None else b"\x00" * len(window)
        return self._inner.compress(_xor_bytes(window, reference))

    def decompress_window(self, blob: bytes, previous_window: Optional[bytes] = None) -> bytes:
        delta = self._inner.decompress(blob)
        reference = previous_window if previous_window is not None else b"\x00" * len(delta)
        return _xor_bytes(delta, reference)


register_codec(FrameDifferentialCodec.name, FrameDifferentialCodec)
