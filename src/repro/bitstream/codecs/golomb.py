"""Golomb-Rice coding of zero-run lengths.

Configuration bit-streams of sparsely used fabrics are mostly zero bytes with
occasional configured bytes.  This codec models the classic FPGA bit-stream
compression approach of Golomb-coding the lengths of zero runs and emitting
non-zero bytes literally.

Stream layout: ``<orig_len:4><k:1>`` then a bit stream of tokens, each token
being ``<zero_run (Rice k)> <flag bit>``; when the flag is 1 a literal byte
(8 bits) follows.  The final token may have flag 0 meaning "run reaches the
end of the data".
"""

from __future__ import annotations

import struct

from repro.bitstream.bitio import BitReader, BitWriter
from repro.bitstream.codecs.base import Codec, CodecError, register_codec


def _rice_encode(writer: BitWriter, value: int, k: int) -> None:
    quotient = value >> k
    writer.write_unary(quotient)
    if k:
        writer.write_bits(value & ((1 << k) - 1), k)


def _rice_decode(reader: BitReader, k: int) -> int:
    quotient = reader.read_unary()
    remainder = reader.read_bits(k) if k else 0
    return (quotient << k) | remainder


def _choose_k(data: bytes) -> int:
    """Pick the Rice parameter from the mean zero-run length."""
    runs = []
    current = 0
    for byte in data:
        if byte == 0:
            current += 1
        else:
            runs.append(current)
            current = 0
    runs.append(current)
    mean = sum(runs) / len(runs) if runs else 0.0
    k = 0
    while (1 << (k + 1)) <= max(1.0, mean):
        k += 1
    return min(k, 15)


class GolombRiceCodec(Codec):
    """Zero-run / literal codec with Rice-coded run lengths."""

    name = "golomb"

    def __init__(self, k: int | None = None) -> None:
        if k is not None and not 0 <= k <= 15:
            raise ValueError("Rice parameter k must be in 0..15")
        self.k = k

    def compress(self, data: bytes) -> bytes:
        k = self.k if self.k is not None else _choose_k(data)
        writer = BitWriter()
        run = 0
        for byte in data:
            if byte == 0:
                run += 1
            else:
                _rice_encode(writer, run, k)
                writer.write_bit(1)
                writer.write_bits(byte, 8)
                run = 0
        if run:
            _rice_encode(writer, run, k)
            writer.write_bit(0)
        return struct.pack(">IB", len(data), k) + writer.getvalue()

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 5:
            raise CodecError("truncated Golomb-Rice header")
        original_length, k = struct.unpack_from(">IB", blob, 0)
        reader = BitReader(blob[5:])
        out = bytearray()
        while len(out) < original_length:
            try:
                run = _rice_decode(reader, k)
            except EOFError:
                raise CodecError("Golomb-Rice stream ended mid-token") from None
            out.extend(b"\x00" * run)
            if len(out) > original_length:
                raise CodecError("Golomb-Rice run overruns the declared length")
            if len(out) == original_length:
                break
            try:
                flag = reader.read_bit()
            except EOFError:
                raise CodecError("Golomb-Rice stream missing literal flag") from None
            if flag:
                out.append(reader.read_bits(8))
            else:
                break
        if len(out) != original_length:
            raise CodecError(
                f"Golomb-Rice produced {len(out)} bytes, expected {original_length}"
            )
        return bytes(out)


register_codec(GolombRiceCodec.name, GolombRiceCodec)
