"""Golomb-Rice coding of zero-run lengths.

Configuration bit-streams of sparsely used fabrics are mostly zero bytes with
occasional configured bytes.  This codec models the classic FPGA bit-stream
compression approach of Golomb-coding the lengths of zero runs and emitting
non-zero bytes literally.

Stream layout: ``<orig_len:4><k:1>`` then a bit stream of tokens, each token
being ``<zero_run (Rice k)> <flag bit>``; when the flag is 1 a literal byte
(8 bits) follows.  The final token may have flag 0 meaning "run reaches the
end of the data".

The hot paths are batched: the encoder walks non-zero bytes with a compiled
regex (so zero runs are never touched byte by byte) and packs each token into
an int accumulator in one shot; the decoder keeps a small int bit-buffer and
scans unary runs word-at-a-time via ``int.bit_length``.  The wire format is
unchanged from the per-bit implementation.
"""

from __future__ import annotations

import re
import struct

from repro.bitstream.codecs.base import Codec, CodecError, register_codec

_NONZERO = re.compile(rb"[^\x00]")


def _choose_k(data: bytes) -> int:
    """Pick the Rice parameter from the mean zero-run length.

    Equivalent to collecting the zero-run length before every non-zero byte
    plus the trailing run: the run lengths sum to the total zero count and
    there is one run per non-zero byte plus the final one.
    """
    zero_count = data.count(0)
    run_count = (len(data) - zero_count) + 1
    mean = zero_count / run_count
    k = 0
    while (1 << (k + 1)) <= max(1.0, mean):
        k += 1
    return min(k, 15)


class GolombRiceCodec(Codec):
    """Zero-run / literal codec with Rice-coded run lengths."""

    name = "golomb"

    def __init__(self, k: int | None = None) -> None:
        if k is not None and not 0 <= k <= 15:
            raise ValueError("Rice parameter k must be in 0..15")
        self.k = k

    def compress(self, data: bytes) -> bytes:
        k = self.k if self.k is not None else _choose_k(data)
        k_mask = (1 << k) - 1
        out = bytearray()
        acc = 0
        acc_bits = 0
        previous = 0
        for match in _NONZERO.finditer(data):
            position = match.start()
            run = position - previous
            previous = position + 1
            # One token: unary(run >> k), k-bit remainder, flag 1, literal.
            quotient = run >> k
            acc = (acc << (quotient + 1)) | ((1 << (quotient + 1)) - 2)
            if k:
                acc = (acc << k) | (run & k_mask)
            acc = (acc << 9) | 0x100 | data[position]
            acc_bits += quotient + 1 + k + 9
            if acc_bits >= 512:
                whole = acc_bits & ~7
                remainder_bits = acc_bits - whole
                out += (acc >> remainder_bits).to_bytes(whole >> 3, "big")
                acc &= (1 << remainder_bits) - 1
                acc_bits = remainder_bits
        tail_run = len(data) - previous
        if tail_run:
            quotient = tail_run >> k
            acc = (acc << (quotient + 1)) | ((1 << (quotient + 1)) - 2)
            if k:
                acc = (acc << k) | (tail_run & k_mask)
            acc <<= 1  # flag 0: run reaches the end of the data
            acc_bits += quotient + 1 + k + 1
        if acc_bits & 7:
            pad = 8 - (acc_bits & 7)
            acc <<= pad
            acc_bits += pad
        if acc_bits:
            out += acc.to_bytes(acc_bits >> 3, "big")
        return struct.pack(">IB", len(data), k) + bytes(out)

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 5:
            raise CodecError("truncated Golomb-Rice header")
        original_length, k = struct.unpack_from(">IB", blob, 0)
        payload = blob[5:]
        out = bytearray()
        buf = 0
        buf_bits = 0
        pos = 0
        size = len(payload)
        while len(out) < original_length:
            # Unary quotient, scanned word-at-a-time over the bit buffer.
            quotient = 0
            while True:
                if not buf_bits:
                    chunk = payload[pos : pos + 64]
                    if not chunk:
                        raise CodecError("Golomb-Rice stream ended mid-token")
                    pos += len(chunk)
                    buf = int.from_bytes(chunk, "big")
                    buf_bits = len(chunk) * 8
                inverted = buf ^ ((1 << buf_bits) - 1)
                if inverted:
                    zero_pos = inverted.bit_length() - 1
                    quotient += buf_bits - 1 - zero_pos
                    buf_bits = zero_pos
                    buf &= (1 << buf_bits) - 1
                    break
                quotient += buf_bits
                buf = 0
                buf_bits = 0
            # k-bit remainder, flag bit, optional 8-bit literal.
            want = k + 9  # enough for remainder + flag + literal
            while buf_bits < want and pos < size:
                chunk = payload[pos : pos + 64]
                pos += len(chunk)
                buf = (buf << (len(chunk) * 8)) | int.from_bytes(chunk, "big")
                buf_bits += len(chunk) * 8
            if buf_bits < k:
                raise CodecError("Golomb-Rice stream ended mid-token")
            if k:
                buf_bits -= k
                run = (quotient << k) | (buf >> buf_bits)
                buf &= (1 << buf_bits) - 1
            else:
                run = quotient
            if run:
                out += b"\x00" * run
                if len(out) > original_length:
                    raise CodecError("Golomb-Rice run overruns the declared length")
            if len(out) == original_length:
                break
            if not buf_bits:
                raise CodecError("Golomb-Rice stream missing literal flag")
            buf_bits -= 1
            flag = buf >> buf_bits
            buf &= (1 << buf_bits) - 1
            if not flag:
                break
            if buf_bits < 8:
                raise CodecError("Golomb-Rice stream ended mid-token")
            buf_bits -= 8
            out.append(buf >> buf_bits)
            buf &= (1 << buf_bits) - 1
        if len(out) != original_length:
            raise CodecError(
                f"Golomb-Rice produced {len(out)} bytes, expected {original_length}"
            )
        return bytes(out)


register_codec(GolombRiceCodec.name, GolombRiceCodec)
