"""Canonical Huffman coding over bytes.

The encoder stores the code-length table (256 bytes) followed by the packed
code words; the decoder rebuilds the canonical code from the lengths.  Frame
payloads have a heavily skewed byte histogram (zero dominates), which Huffman
captures without needing any knowledge of the frame structure.
"""

from __future__ import annotations

import heapq
import struct
from collections import Counter
from typing import Dict, List, Tuple

from repro.bitstream.bitio import BitReader, BitWriter
from repro.bitstream.codecs.base import Codec, CodecError, register_codec

_MAX_CODE_LENGTH = 32


def _code_lengths(data: bytes) -> List[int]:
    """Huffman code length per byte value (0 for absent symbols)."""
    counts = Counter(data)
    if len(counts) == 1:
        # A single distinct symbol still needs a 1-bit code.
        symbol = next(iter(counts))
        lengths = [0] * 256
        lengths[symbol] = 1
        return lengths
    heap: List[Tuple[int, int, Tuple]] = []
    for ticket, (symbol, count) in enumerate(sorted(counts.items())):
        heap.append((count, ticket, (symbol,)))
    heapq.heapify(heap)
    ticket = len(heap)
    lengths = [0] * 256
    # Standard Huffman tree construction, tracking only depths.
    depth: Dict[int, int] = {symbol: 0 for symbol in counts}
    while len(heap) > 1:
        count_a, _, symbols_a = heapq.heappop(heap)
        count_b, _, symbols_b = heapq.heappop(heap)
        for symbol in symbols_a + symbols_b:
            depth[symbol] += 1
        ticket += 1
        heapq.heappush(heap, (count_a + count_b, ticket, symbols_a + symbols_b))
    for symbol, length in depth.items():
        lengths[symbol] = length
    return lengths


def _canonical_codes(lengths: List[int]) -> Dict[int, Tuple[int, int]]:
    """Map symbol -> (code, length) for a canonical Huffman code."""
    symbols = [(length, symbol) for symbol, length in enumerate(lengths) if length > 0]
    symbols.sort()
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for length, symbol in symbols:
        code <<= length - previous_length
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class HuffmanCodec(Codec):
    """Canonical Huffman codec with an explicit length table header."""

    name = "huffman"

    def compress(self, data: bytes) -> bytes:
        if not data:
            return struct.pack(">I", 0)
        lengths = _code_lengths(data)
        if max(lengths) > _MAX_CODE_LENGTH:
            # Pathological distributions; fall back to storing raw (tag 0xFF).
            return struct.pack(">I", 0xFFFFFFFF) + data
        codes = _canonical_codes(lengths)
        writer = BitWriter()
        for byte in data:
            code, length = codes[byte]
            writer.write_bits(code, length)
        packed = writer.getvalue()
        header = struct.pack(">I", len(data)) + bytes(lengths)
        return header + packed

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 4:
            raise CodecError("truncated Huffman header")
        (count,) = struct.unpack_from(">I", blob, 0)
        if count == 0:
            return b""
        if count == 0xFFFFFFFF:
            return blob[4:]
        if len(blob) < 4 + 256:
            raise CodecError("truncated Huffman length table")
        lengths = list(blob[4 : 4 + 256])
        codes = _canonical_codes(lengths)
        if not codes:
            raise CodecError("Huffman length table describes no symbols")
        # Invert: (length, code) -> symbol.
        decode_table: Dict[Tuple[int, int], int] = {
            (length, code): symbol for symbol, (code, length) in codes.items()
        }
        reader = BitReader(blob[4 + 256 :])
        out = bytearray()
        max_length = max(length for length, _ in decode_table)
        while len(out) < count:
            code = 0
            length = 0
            while True:
                try:
                    code = (code << 1) | reader.read_bit()
                except EOFError:
                    raise CodecError("Huffman stream ended mid-symbol") from None
                length += 1
                if (length, code) in decode_table:
                    out.append(decode_table[(length, code)])
                    break
                if length > max_length:
                    raise CodecError("invalid Huffman code word")
        return bytes(out)


register_codec(HuffmanCodec.name, HuffmanCodec)
