"""Canonical Huffman coding over bytes.

The encoder stores the code-length table (256 bytes) followed by the packed
code words; the decoder rebuilds the canonical code from the lengths.  Frame
payloads have a heavily skewed byte histogram (zero dominates), which Huffman
captures without needing any knowledge of the frame structure.

Decoding is table driven: a fixed-width lookup table maps the next
``_TABLE_BITS`` bits of the stream to *every complete symbol* inside that
window at once, so the hot loop emits several bytes per table probe instead
of walking the code tree bit by bit.  Tables are memoised per length-table
(windows of the same image usually share a histogram), and codes longer than
the table width fall back to a ``(length, code) -> symbol`` dictionary.  The
wire format is unchanged from the original per-bit implementation.
"""

from __future__ import annotations

import heapq
import struct
from collections import Counter, OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.bitstream.codecs.base import Codec, CodecError, register_codec

_MAX_CODE_LENGTH = 32

#: Width of the fixed-width decode window.  4096 entries keeps table
#: construction cheap while letting short (skewed-histogram) codes decode
#: many symbols per probe.
_TABLE_BITS = 12

#: Decode tables memoised per 256-byte length table, LRU-evicted.
_TABLE_CACHE_SIZE = 16
_TABLE_CACHE: "OrderedDict[bytes, _DecodeTable]" = OrderedDict()


def _code_lengths(data: bytes) -> List[int]:
    """Huffman code length per byte value (0 for absent symbols)."""
    counts = Counter(data)
    if len(counts) == 1:
        # A single distinct symbol still needs a 1-bit code.
        symbol = next(iter(counts))
        lengths = [0] * 256
        lengths[symbol] = 1
        return lengths
    heap: List[Tuple[int, int, Tuple]] = []
    for ticket, (symbol, count) in enumerate(sorted(counts.items())):
        heap.append((count, ticket, (symbol,)))
    heapq.heapify(heap)
    ticket = len(heap)
    lengths = [0] * 256
    # Standard Huffman tree construction, tracking only depths.
    depth: Dict[int, int] = {symbol: 0 for symbol in counts}
    while len(heap) > 1:
        count_a, _, symbols_a = heapq.heappop(heap)
        count_b, _, symbols_b = heapq.heappop(heap)
        for symbol in symbols_a + symbols_b:
            depth[symbol] += 1
        ticket += 1
        heapq.heappush(heap, (count_a + count_b, ticket, symbols_a + symbols_b))
    for symbol, length in depth.items():
        lengths[symbol] = length
    return lengths


def _canonical_codes(lengths: List[int]) -> Dict[int, Tuple[int, int]]:
    """Map symbol -> (code, length) for a canonical Huffman code."""
    symbols = [(length, symbol) for symbol, length in enumerate(lengths) if length > 0]
    symbols.sort()
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for length, symbol in symbols:
        code <<= length - previous_length
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class _DecodeTable:
    """Precomputed decoding state for one canonical code.

    ``multi[window]`` packs every complete symbol inside a ``_TABLE_BITS``-bit
    window as ``(consumed_bits, symbols_bytes)``; ``None`` marks windows whose
    first code is longer than the table (resolved via ``long_codes``).
    """

    __slots__ = ("max_length", "multi", "long_codes")

    def __init__(self, lengths: List[int]) -> None:
        codes = _canonical_codes(lengths)
        if not codes:
            raise CodecError("Huffman length table describes no symbols")
        self.max_length = max(length for _, length in codes.values())
        self.long_codes: Dict[Tuple[int, int], int] = {
            (length, code): symbol for symbol, (code, length) in codes.items()
        }
        width = _TABLE_BITS
        size = 1 << width
        # First pass: one symbol per window (packed as length << 8 | symbol).
        first: List[int] = [0] * size
        for symbol, (code, length) in codes.items():
            if length > width:
                continue
            base = code << (width - length)
            entry = (length << 8) | symbol
            first[base : base + (1 << (width - length))] = [entry] * (1 << (width - length))
        # Second pass: greedily chain symbols until the window is exhausted.
        multi: List[Optional[Tuple[int, bytes]]] = [None] * size
        for window in range(size):
            entry = first[window]
            if not entry:
                multi[window] = None
                continue
            consumed = 0
            symbols = bytearray()
            while entry:
                length = entry >> 8
                if consumed + length > width:
                    break
                consumed += length
                symbols.append(entry & 0xFF)
                remaining = width - consumed
                entry = first[((window & ((1 << remaining) - 1)) << consumed)] if remaining else 0
            multi[window] = (consumed, bytes(symbols))
        self.multi = multi


def _decode_table(length_bytes: bytes) -> _DecodeTable:
    table = _TABLE_CACHE.get(length_bytes)
    if table is not None:
        _TABLE_CACHE.move_to_end(length_bytes)
        return table
    table = _DecodeTable(list(length_bytes))
    _TABLE_CACHE[length_bytes] = table
    if len(_TABLE_CACHE) > _TABLE_CACHE_SIZE:
        _TABLE_CACHE.popitem(last=False)
    return table


class HuffmanCodec(Codec):
    """Canonical Huffman codec with an explicit length table header."""

    name = "huffman"

    def compress(self, data: bytes) -> bytes:
        if not data:
            return struct.pack(">I", 0)
        lengths = _code_lengths(data)
        if max(lengths) > _MAX_CODE_LENGTH:
            # Pathological distributions; fall back to storing raw (tag 0xFF).
            return struct.pack(">I", 0xFFFFFFFF) + data
        codes = _canonical_codes(lengths)
        code_of = [0] * 256
        length_of = [0] * 256
        for symbol, (code, length) in codes.items():
            code_of[symbol] = code
            length_of[symbol] = length
        out = bytearray()
        acc = 0
        acc_bits = 0
        for byte in data:
            acc = (acc << length_of[byte]) | code_of[byte]
            acc_bits += length_of[byte]
            if acc_bits >= 512:
                whole = acc_bits & ~7
                remainder = acc_bits - whole
                out += (acc >> remainder).to_bytes(whole >> 3, "big")
                acc &= (1 << remainder) - 1
                acc_bits = remainder
        if acc_bits & 7:
            pad = 8 - (acc_bits & 7)
            acc <<= pad
            acc_bits += pad
        if acc_bits:
            out += acc.to_bytes(acc_bits >> 3, "big")
        header = struct.pack(">I", len(data)) + bytes(lengths)
        return header + bytes(out)

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 4:
            raise CodecError("truncated Huffman header")
        (count,) = struct.unpack_from(">I", blob, 0)
        if count == 0:
            return b""
        if count == 0xFFFFFFFF:
            return blob[4:]
        if len(blob) < 4 + 256:
            raise CodecError("truncated Huffman length table")
        table = _decode_table(blob[4 : 4 + 256])
        payload = blob[4 + 256 :]
        multi = table.multi
        width = _TABLE_BITS
        width_mask = (1 << width) - 1

        out = bytearray()
        buf = 0
        buf_bits = 0
        pos = 0
        size = len(payload)
        produced = 0
        # Refill while at least 48 bits short so even a maximum-length code
        # (32 bits) never sees a partially-filled buffer mid-payload; when the
        # slow path runs with buf_bits < 48, the payload is fully consumed.
        while produced < count:
            if buf_bits < 48 and pos < size:
                # Small refills keep the bit buffer a machine-word-sized int;
                # big chunks make every shift/mask a multi-word operation.
                chunk = payload[pos : pos + 64]
                pos += len(chunk)
                buf = (buf << (len(chunk) * 8)) | int.from_bytes(chunk, "big")
                buf_bits += len(chunk) * 8
            if buf_bits >= width:
                window = buf >> (buf_bits - width)
            else:
                window = (buf << (width - buf_bits)) & width_mask
            entry = multi[window]
            if entry is not None:
                consumed, symbols = entry
                if consumed <= buf_bits and produced + len(symbols) <= count:
                    buf_bits -= consumed
                    buf &= (1 << buf_bits) - 1
                    out += symbols
                    produced += len(symbols)
                    continue
            # Long code, stream tail, or declared count nearly reached:
            # decode a single symbol from the real (unpadded) bits.
            produced, buf, buf_bits = self._decode_one(table, buf, buf_bits, out, produced)
        return bytes(out)

    @staticmethod
    def _decode_one(
        table: _DecodeTable,
        buf: int,
        buf_bits: int,
        out: bytearray,
        produced: int,
    ) -> Tuple[int, int, int]:
        """Decode exactly one symbol (slow path: long codes / stream tail)."""
        long_codes = table.long_codes
        for length in range(1, table.max_length + 1):
            if length > buf_bits:
                raise CodecError("Huffman stream ended mid-symbol")
            code = buf >> (buf_bits - length)
            if (length, code) in long_codes:
                buf_bits -= length
                buf &= (1 << buf_bits) - 1
                out.append(long_codes[(length, code)])
                return produced + 1, buf, buf_bits
        raise CodecError("invalid Huffman code word")


register_codec(HuffmanCodec.name, HuffmanCodec)
