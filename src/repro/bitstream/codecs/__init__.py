"""Compression codecs for configuration bit-streams.

Every codec implements :class:`Codec`: lossless ``compress`` / ``decompress``
over byte strings, plus window-context variants used by the streaming
(window-by-window) decompressor in the microcontroller's configuration
module.  The registry maps codec names to constructors so experiment configs
can select codecs by name.

The :class:`SymmetryAwareCodec` addresses the open problem stated in the
paper's conclusion — compression "that can exploit the symmetry in the CLB
architectures of FPGAs": it transposes the frame payload so that homologous
configuration fields of different CLBs become adjacent before entropy coding.
"""

from repro.bitstream.codecs.base import Codec, CodecError, NullCodec, available_codecs, get_codec, register_codec
from repro.bitstream.codecs.rle import RunLengthCodec
from repro.bitstream.codecs.lz77 import LZ77Codec
from repro.bitstream.codecs.huffman import HuffmanCodec
from repro.bitstream.codecs.golomb import GolombRiceCodec
from repro.bitstream.codecs.framediff import FrameDifferentialCodec
from repro.bitstream.codecs.symmetry import SymmetryAwareCodec

__all__ = [
    "Codec",
    "CodecError",
    "NullCodec",
    "RunLengthCodec",
    "LZ77Codec",
    "HuffmanCodec",
    "GolombRiceCodec",
    "FrameDifferentialCodec",
    "SymmetryAwareCodec",
    "available_codecs",
    "get_codec",
    "register_codec",
]
