"""A small LZ77 (sliding-window dictionary) codec.

Configuration frames repeat structure across CLBs, so back-references to
earlier occurrences of the same LUT/switch patterns compress well even when
the data is not runs of a single byte.

Token format (byte-aligned for simplicity of the streaming decompressor):

* ``0x00 <length:1> <literal bytes>`` — up to 255 literal bytes.
* ``0x01 <distance:2> <length:2>``    — copy ``length`` bytes from ``distance``
  bytes back in the already-decoded output.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from repro.bitstream.codecs.base import Codec, CodecError, register_codec

_LITERAL = 0x00
_MATCH = 0x01
_MAX_LITERAL = 255
_MIN_MATCH = 4
_MAX_MATCH = 0xFFFF


class LZ77Codec(Codec):
    """Hash-chain LZ77 with a configurable window."""

    name = "lz77"

    def __init__(self, window: int = 4096, max_chain: int = 32) -> None:
        if window <= 0 or window > 0xFFFF:
            raise ValueError("LZ77 window must be in 1..65535")
        if max_chain <= 0:
            raise ValueError("max_chain must be positive")
        self.window = window
        self.max_chain = max_chain

    # ------------------------------------------------------------- compress
    def compress(self, data: bytes) -> bytes:
        out = bytearray()
        literal = bytearray()
        # Map a 4-byte prefix to candidate positions (most recent first).
        table: Dict[bytes, List[int]] = {}
        index = 0
        length = len(data)

        def flush_literal() -> None:
            start = 0
            while start < len(literal):
                chunk = literal[start : start + _MAX_LITERAL]
                out.append(_LITERAL)
                out.append(len(chunk))
                out.extend(chunk)
                start += _MAX_LITERAL
            literal.clear()

        while index < length:
            best_length = 0
            best_distance = 0
            if index + _MIN_MATCH <= length:
                key = bytes(data[index : index + _MIN_MATCH])
                candidates = table.get(key, [])
                checked = 0
                for candidate in reversed(candidates):
                    if index - candidate > self.window:
                        break
                    checked += 1
                    if checked > self.max_chain:
                        break
                    match_length = 0
                    limit = min(length - index, _MAX_MATCH)
                    while (
                        match_length < limit
                        and data[candidate + match_length] == data[index + match_length]
                    ):
                        match_length += 1
                    if match_length > best_length:
                        best_length = match_length
                        best_distance = index - candidate
            if best_length >= _MIN_MATCH:
                flush_literal()
                out.append(_MATCH)
                out.extend(struct.pack(">HH", best_distance, best_length))
                end = index + best_length
                while index < end:
                    if index + _MIN_MATCH <= length:
                        key = bytes(data[index : index + _MIN_MATCH])
                        table.setdefault(key, []).append(index)
                    index += 1
            else:
                if index + _MIN_MATCH <= length:
                    key = bytes(data[index : index + _MIN_MATCH])
                    table.setdefault(key, []).append(index)
                literal.append(data[index])
                index += 1
        flush_literal()
        return bytes(out)

    # ----------------------------------------------------------- decompress
    def decompress(self, blob: bytes) -> bytes:
        out = bytearray()
        index = 0
        length = len(blob)
        while index < length:
            tag = blob[index]
            index += 1
            if tag == _LITERAL:
                if index >= length:
                    raise CodecError("truncated LZ77 literal header")
                count = blob[index]
                index += 1
                if index + count > length:
                    raise CodecError("truncated LZ77 literal data")
                out.extend(blob[index : index + count])
                index += count
            elif tag == _MATCH:
                if index + 4 > length:
                    raise CodecError("truncated LZ77 match token")
                distance, match_length = struct.unpack_from(">HH", blob, index)
                index += 4
                if distance == 0 or distance > len(out):
                    raise CodecError(f"LZ77 back-reference distance {distance} is invalid")
                start = len(out) - distance
                for offset in range(match_length):
                    out.append(out[start + offset])
            else:
                raise CodecError(f"unknown LZ77 token tag 0x{tag:02x}")
        return bytes(out)


register_codec(LZ77Codec.name, LZ77Codec)
