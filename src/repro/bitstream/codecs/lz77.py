"""A small LZ77 (sliding-window dictionary) codec.

Configuration frames repeat structure across CLBs, so back-references to
earlier occurrences of the same LUT/switch patterns compress well even when
the data is not runs of a single byte.

Token format (byte-aligned for simplicity of the streaming decompressor):

* ``0x00 <length:1> <literal bytes>`` — up to 255 literal bytes.
* ``0x01 <distance:2> <length:2>``    — copy ``length`` bytes from ``distance``
  bytes back in the already-decoded output.

The compressor keeps hash chains as a ``head`` dict plus a ``prev`` link
array keyed by the exact 4-byte prefix packed into an int (maintained as a
rolling key, so no per-position ``bytes`` slicing).  Three exact-equivalence
optimisations make it fast without changing a single output byte relative to
the per-byte reference encoder:

* *dead-work elimination*: of a long match's interior positions, only the
  last ``window`` can ever be reached by a later search (older ones would hit
  the distance bound first), so only those are inserted into the chains;
* *early rejection*: a candidate can only beat the current best match if it
  also matches at offset ``best_length``, so one byte probe skips hopeless
  candidates before any extension work;
* *sliced extension*: matches are extended by comparing successively smaller
  slices (256/16/1 bytes) instead of byte-at-a-time.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from repro.bitstream.codecs.base import Codec, CodecError, register_codec

_LITERAL = 0x00
_MATCH = 0x01
_MAX_LITERAL = 255
_MIN_MATCH = 4
_MAX_MATCH = 0xFFFF


class LZ77Codec(Codec):
    """Sliding-window LZ77 with a bounded candidate search."""

    name = "lz77"

    def __init__(self, window: int = 4096, max_chain: int = 32) -> None:
        if window <= 0 or window > 0xFFFF:
            raise ValueError("LZ77 window must be in 1..65535")
        if max_chain <= 0:
            raise ValueError("max_chain must be positive")
        self.window = window
        self.max_chain = max_chain

    # ------------------------------------------------------------- compress
    def compress(self, data: bytes) -> bytes:
        data = bytes(data)
        length = len(data)
        out = bytearray()
        window = self.window
        max_chain = self.max_chain
        prefix_limit = length - 3  # positions with a full 4-byte prefix
        # Chains: head[key] = most recent position with that 4-byte prefix,
        # prev[pos] = previous position on pos's chain (-1 terminates).
        head: Dict[int, int] = {}
        head_get = head.get
        prev: List[int] = [-1] * max(0, prefix_limit)

        def flush_literal(start: int, end: int) -> None:
            while start < end:
                chunk_end = min(start + _MAX_LITERAL, end)
                out.append(_LITERAL)
                out.append(chunk_end - start)
                out.extend(data[start:chunk_end])
                start = chunk_end

        index = 0
        literal_start = 0
        # Rolling 4-byte prefix key for the current index; only meaningful
        # while index < prefix_limit.
        key = (
            (data[0] << 24) | (data[1] << 16) | (data[2] << 8) | data[3]
            if length >= 4
            else 0
        )
        while index < length:
            best_length = 0
            best_distance = 0
            if index < prefix_limit:
                candidate = head_get(key, -1)
                if candidate >= 0:
                    limit = length - index
                    if limit > _MAX_MATCH:
                        limit = _MAX_MATCH
                    checked = 0
                    while candidate >= 0:
                        if index - candidate > window:
                            break
                        checked += 1
                        if checked > max_chain:
                            break
                        if best_length >= limit:
                            break
                        # A candidate can only beat the current best if it
                        # also matches at offset best_length; probe that byte
                        # before paying for full extension.
                        if data[candidate + best_length] == data[index + best_length]:
                            match_length = 0
                            while (
                                match_length + 256 <= limit
                                and data[candidate + match_length : candidate + match_length + 256]
                                == data[index + match_length : index + match_length + 256]
                            ):
                                match_length += 256
                            while (
                                match_length + 16 <= limit
                                and data[candidate + match_length : candidate + match_length + 16]
                                == data[index + match_length : index + match_length + 16]
                            ):
                                match_length += 16
                            while (
                                match_length < limit
                                and data[candidate + match_length] == data[index + match_length]
                            ):
                                match_length += 1
                            if match_length > best_length:
                                best_length = match_length
                                best_distance = index - candidate
                        candidate = prev[candidate]
            if best_length >= _MIN_MATCH:
                flush_literal(literal_start, index)
                out.append(_MATCH)
                out += struct.pack(">HH", best_distance, best_length)
                end = index + best_length
                # Insert the match's interior positions — but only the last
                # ``window`` of them: any older interior position p has
                # j - p > window for every future search index j >= end, so
                # the reference encoder's traversal could never reach it.
                start = end - window
                if start < index:
                    start = index
                stop = end if end < prefix_limit else prefix_limit
                if start < stop:
                    if start == index:
                        rolling = key
                    else:
                        rolling = (
                            (data[start] << 24)
                            | (data[start + 1] << 16)
                            | (data[start + 2] << 8)
                            | data[start + 3]
                        )
                    if stop < prefix_limit:
                        for position in range(start, stop):
                            prev[position] = head_get(rolling, -1)
                            head[rolling] = position
                            rolling = ((rolling << 8) & 0xFFFFFF00) | data[position + 4]
                        key = rolling  # the key for index == end
                    else:
                        # The match reaches the tail: the final prefix
                        # position has no byte to roll in, and key is dead
                        # past prefix_limit.
                        for position in range(start, stop):
                            prev[position] = head_get(rolling, -1)
                            head[rolling] = position
                            if position + 4 < length:
                                rolling = ((rolling << 8) & 0xFFFFFF00) | data[position + 4]
                index = end
                literal_start = end
            else:
                if index < prefix_limit:
                    prev[index] = head_get(key, -1)
                    head[key] = index
                    if index + 4 < length:
                        key = ((key << 8) & 0xFFFFFF00) | data[index + 4]
                index += 1
        flush_literal(literal_start, length)
        return bytes(out)

    # ----------------------------------------------------------- decompress
    def decompress(self, blob: bytes) -> bytes:
        out = bytearray()
        index = 0
        length = len(blob)
        while index < length:
            tag = blob[index]
            index += 1
            if tag == _LITERAL:
                if index >= length:
                    raise CodecError("truncated LZ77 literal header")
                count = blob[index]
                index += 1
                if index + count > length:
                    raise CodecError("truncated LZ77 literal data")
                out += blob[index : index + count]
                index += count
            elif tag == _MATCH:
                if index + 4 > length:
                    raise CodecError("truncated LZ77 match token")
                distance, match_length = struct.unpack_from(">HH", blob, index)
                index += 4
                produced = len(out)
                if distance == 0 or distance > produced:
                    raise CodecError(f"LZ77 back-reference distance {distance} is invalid")
                start = produced - distance
                if distance >= match_length:
                    out += out[start : start + match_length]
                else:
                    # Overlapping copy: replicate the distance-sized segment.
                    segment = out[start:]
                    repeats = match_length // distance + 1
                    out += (segment * repeats)[:match_length]
            else:
                raise CodecError(f"unknown LZ77 token tag 0x{tag:02x}")
        return bytes(out)


register_codec(LZ77Codec.name, LZ77Codec)
