"""CLB-symmetry-aware compression (the paper's stated open problem).

Within one frame every CLB serialises the same sequence of fields (LUT truth
tables, FF init bits, switch bytes).  Because neighbouring CLBs of the same
function tend to configure *homologous* fields similarly (a 32-bit datapath
repeats the same slice logic 32 times), transposing the frame payload — so
that byte *i* of every CLB becomes adjacent — produces much longer runs and
tighter back-references than the raw CLB-major order.  The transposed stream
is then delta-coded (each byte XOR its predecessor) and run-length coded.

The transform is exactly invertible as long as the CLB stride is known, which
it is: the stride is a device constant recorded in the compressed header.
"""

from __future__ import annotations

import struct

from repro.bitstream.codecs.base import Codec, CodecError, register_codec
from repro.bitstream.codecs.rle import RunLengthCodec


def _transpose(data: bytes, stride: int) -> bytes:
    """Reorder a CLB-major payload into field-major order.

    Bytes beyond the last whole stride (the "tail") are appended unchanged.
    Each output column is an extended byte slice, so the reordering runs at
    C speed instead of byte-at-a-time.
    """
    whole = (len(data) // stride) * stride
    body, tail = data[:whole], data[whole:]
    rows = len(body) // stride
    out = bytearray(len(body))
    for column in range(stride):
        out[column * rows : (column + 1) * rows] = body[column::stride]
    return bytes(out) + tail


def _untranspose(data: bytes, stride: int) -> bytes:
    """Inverse of :func:`_transpose`."""
    whole = (len(data) // stride) * stride
    body, tail = data[:whole], data[whole:]
    rows = len(body) // stride
    out = bytearray(len(body))
    for column in range(stride):
        out[column::stride] = body[column * rows : (column + 1) * rows]
    return bytes(out) + tail


def _delta_encode(data: bytes) -> bytes:
    """Each byte XOR its predecessor: ``data ^ (data >> 1 byte)`` as an int."""
    size = len(data)
    if not size:
        return b""
    value = int.from_bytes(data, "big")
    return (value ^ (value >> 8)).to_bytes(size, "big")


def _delta_decode(data: bytes) -> bytes:
    """Byte-wise prefix XOR, via the doubling trick on one big integer."""
    size = len(data)
    if not size:
        return b""
    value = int.from_bytes(data, "big")
    shift = 8
    total_bits = 8 * size
    while shift < total_bits:
        value ^= value >> shift
        shift <<= 1
    return value.to_bytes(size, "big")


class SymmetryAwareCodec(Codec):
    """Transpose-by-CLB, delta, then run-length code.

    Parameters
    ----------
    clb_stride:
        Number of configuration bytes per CLB (``FabricGeometry.clb_config_bytes``).
        The default matches the library's default geometry but the value used
        is always written into the compressed header, so decompression never
        depends on out-of-band knowledge.
    """

    name = "symmetry"

    def __init__(self, clb_stride: int = 42) -> None:
        if clb_stride <= 0:
            raise ValueError("CLB stride must be positive")
        self.clb_stride = clb_stride
        self._inner = RunLengthCodec()

    def compress(self, data: bytes) -> bytes:
        stride = min(self.clb_stride, max(1, len(data)))
        transformed = _delta_encode(_transpose(data, stride))
        return struct.pack(">I", stride) + self._inner.compress(transformed)

    def decompress(self, blob: bytes) -> bytes:
        if len(blob) < 4:
            raise CodecError("truncated symmetry codec header")
        (stride,) = struct.unpack_from(">I", blob, 0)
        if stride <= 0:
            raise CodecError("symmetry codec header declares a non-positive stride")
        transformed = self._inner.decompress(blob[4:])
        return _untranspose(_delta_decode(transformed), stride)


register_codec(SymmetryAwareCodec.name, SymmetryAwareCodec)
