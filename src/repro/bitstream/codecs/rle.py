"""Byte-oriented run-length encoding.

Configuration frames of partially used devices are dominated by long runs of
zero bytes (unused LUTs and routing), which simple RLE captures well — this is
the codec class the original Xilinx difference-based flows leaned on.

Encoding: a sequence of ``(count, value)`` pairs for runs of length >= 3 or of
the escape byte, and literal segments prefixed with their length otherwise.

Format (per segment):
    * ``0x00 <count:2> <value:1>`` — a run of ``count`` copies of ``value``.
    * ``0x01 <count:2> <bytes...>`` — ``count`` literal bytes.
"""

from __future__ import annotations

import re
import struct

from repro.bitstream.codecs.base import Codec, CodecError, register_codec

_RUN = 0x00
_LITERAL = 0x01
_MAX_SEGMENT = 0xFFFF
_MIN_RUN = 3

#: Matches one maximal run (length >= _MIN_RUN) of a repeated byte.  Literal
#: regions are the gaps between matches, so run-poor data never iterates in
#: Python at all; the scanner below re-chunks runs longer than _MAX_SEGMENT
#: exactly like the per-byte loop did.
_RUN_SCANNER = re.compile(rb"(.)\1{2,}", re.DOTALL)


class RunLengthCodec(Codec):
    """Run-length codec with two-byte run/literal lengths."""

    name = "rle"

    def compress(self, data: bytes) -> bytes:
        out = bytearray()
        pack = struct.pack
        # Start of the pending literal region; runs flush it.
        pending = 0

        def flush_literal(start: int, end: int) -> None:
            while start < end:
                chunk_end = min(start + _MAX_SEGMENT, end)
                out.append(_LITERAL)
                out.extend(pack(">H", chunk_end - start))
                out.extend(data[start:chunk_end])
                start = chunk_end

        for match in _RUN_SCANNER.finditer(data):
            start, end = match.start(), match.end()
            value = data[start]
            run = end - start
            # Split maximal runs into _MAX_SEGMENT chunks, exactly as the
            # per-byte scanner did: a short (< _MIN_RUN) final chunk is not
            # emitted as a run but joins the following literal region.
            while run >= _MIN_RUN:
                chunk = run if run < _MAX_SEGMENT else _MAX_SEGMENT
                flush_literal(pending, start)
                out.append(_RUN)
                out.extend(pack(">H", chunk))
                out.append(value)
                start += chunk
                run -= chunk
                pending = start
        flush_literal(pending, len(data))
        return bytes(out)

    def decompress(self, blob: bytes) -> bytes:
        out = bytearray()
        index = 0
        length = len(blob)
        while index < length:
            tag = blob[index]
            index += 1
            if index + 2 > length:
                raise CodecError("truncated RLE segment header")
            (count,) = struct.unpack_from(">H", blob, index)
            index += 2
            if tag == _RUN:
                if index >= length:
                    raise CodecError("truncated RLE run value")
                out.extend(bytes([blob[index]]) * count)
                index += 1
            elif tag == _LITERAL:
                if index + count > length:
                    raise CodecError("truncated RLE literal segment")
                out.extend(blob[index : index + count])
                index += count
            else:
                raise CodecError(f"unknown RLE segment tag 0x{tag:02x}")
        return bytes(out)


register_codec(RunLengthCodec.name, RunLengthCodec)
