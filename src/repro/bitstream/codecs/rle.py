"""Byte-oriented run-length encoding.

Configuration frames of partially used devices are dominated by long runs of
zero bytes (unused LUTs and routing), which simple RLE captures well — this is
the codec class the original Xilinx difference-based flows leaned on.

Encoding: a sequence of ``(count, value)`` pairs for runs of length >= 3 or of
the escape byte, and literal segments prefixed with their length otherwise.

Format (per segment):
    * ``0x00 <count:2> <value:1>`` — a run of ``count`` copies of ``value``.
    * ``0x01 <count:2> <bytes...>`` — ``count`` literal bytes.
"""

from __future__ import annotations

import struct

from repro.bitstream.codecs.base import Codec, CodecError, register_codec

_RUN = 0x00
_LITERAL = 0x01
_MAX_SEGMENT = 0xFFFF
_MIN_RUN = 3


class RunLengthCodec(Codec):
    """Run-length codec with two-byte run/literal lengths."""

    name = "rle"

    def compress(self, data: bytes) -> bytes:
        out = bytearray()
        literal = bytearray()
        index = 0
        length = len(data)

        def flush_literal() -> None:
            start = 0
            while start < len(literal):
                chunk = literal[start : start + _MAX_SEGMENT]
                out.append(_LITERAL)
                out.extend(struct.pack(">H", len(chunk)))
                out.extend(chunk)
                start += _MAX_SEGMENT
            literal.clear()

        while index < length:
            value = data[index]
            run = 1
            while (
                index + run < length
                and data[index + run] == value
                and run < _MAX_SEGMENT
            ):
                run += 1
            if run >= _MIN_RUN:
                flush_literal()
                out.append(_RUN)
                out.extend(struct.pack(">H", run))
                out.append(value)
                index += run
            else:
                literal.extend(data[index : index + run])
                index += run
        flush_literal()
        return bytes(out)

    def decompress(self, blob: bytes) -> bytes:
        out = bytearray()
        index = 0
        length = len(blob)
        while index < length:
            tag = blob[index]
            index += 1
            if index + 2 > length:
                raise CodecError("truncated RLE segment header")
            (count,) = struct.unpack_from(">H", blob, index)
            index += 2
            if tag == _RUN:
                if index >= length:
                    raise CodecError("truncated RLE run value")
                out.extend(bytes([blob[index]]) * count)
                index += 1
            elif tag == _LITERAL:
                if index + count > length:
                    raise CodecError("truncated RLE literal segment")
                out.extend(blob[index : index + count])
                index += count
            else:
                raise CodecError(f"unknown RLE segment tag 0x{tag:02x}")
        return bytes(out)


register_codec(RunLengthCodec.name, RunLengthCodec)
