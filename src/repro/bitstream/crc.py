"""Table-driven CRC-32 (IEEE 802.3 polynomial).

The configuration port verifies a CRC over every bit-stream before committing
the configuration, exactly as real devices do.  The implementation is from
scratch (rather than :func:`zlib.crc32`) because the CRC engine is also one of
the hardware functions offered by the co-processor's function bank, so having
an explicit, testable model keeps hardware and checker consistent.
"""

from __future__ import annotations

from typing import Iterable, List

#: Reflected polynomial for IEEE CRC-32.
_POLYNOMIAL = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        value = byte
        for _ in range(8):
            if value & 1:
                value = (value >> 1) ^ _POLYNOMIAL
            else:
                value >>= 1
        table.append(value)
    return table


_TABLE = _build_table()


def crc32(data: bytes, initial: int = 0) -> int:
    """CRC-32 of *data*; compatible with :func:`zlib.crc32`.

    ``initial`` accepts the running value returned by a previous call so large
    images can be checksummed incrementally (the configuration module does
    this window by window).
    """
    crc = (initial ^ 0xFFFFFFFF) & 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return (crc ^ 0xFFFFFFFF) & 0xFFFFFFFF


class IncrementalCrc32:
    """Stateful CRC-32 accumulator.

    >>> acc = IncrementalCrc32()
    >>> acc.update(b"hello ").update(b"world").value == crc32(b"hello world")
    True
    """

    def __init__(self) -> None:
        self._value = 0

    def update(self, data: bytes) -> "IncrementalCrc32":
        self._value = crc32(data, self._value)
        return self

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        self._value = 0
