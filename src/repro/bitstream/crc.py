"""CRC-32 (IEEE 802.3 polynomial).

The configuration port verifies a CRC over every bit-stream before committing
the configuration, exactly as real devices do.  The table-driven
:func:`crc32_reference` models the hardware CRC engine explicitly (it is also
one of the functions offered by the co-processor's function bank), while the
:func:`crc32` used on the image-integrity hot path delegates to
:func:`zlib.crc32` — the two are bit-compatible, which the test suite checks.
"""

from __future__ import annotations

import zlib
from typing import List

#: Reflected polynomial for IEEE CRC-32.
_POLYNOMIAL = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        value = byte
        for _ in range(8):
            if value & 1:
                value = (value >> 1) ^ _POLYNOMIAL
            else:
                value >>= 1
        table.append(value)
    return table


_TABLE = _build_table()


def crc32_reference(data: bytes, initial: int = 0) -> int:
    """Table-driven CRC-32, byte at a time: the hardware-engine model."""
    crc = (initial ^ 0xFFFFFFFF) & 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return (crc ^ 0xFFFFFFFF) & 0xFFFFFFFF


def crc32(data: bytes, initial: int = 0) -> int:
    """CRC-32 of *data*; bit-compatible with :func:`crc32_reference`.

    ``initial`` accepts the running value returned by a previous call so large
    images can be checksummed incrementally (the configuration module does
    this window by window).  Delegates to :func:`zlib.crc32` for speed; the
    explicit table model above stays authoritative for the hardware function.
    """
    return zlib.crc32(data, initial & 0xFFFFFFFF)


class IncrementalCrc32:
    """Stateful CRC-32 accumulator.

    >>> acc = IncrementalCrc32()
    >>> acc.update(b"hello ").update(b"world").value == crc32(b"hello world")
    True
    """

    def __init__(self) -> None:
        self._value = 0

    def update(self, data: bytes) -> "IncrementalCrc32":
        self._value = crc32(data, self._value)
        return self

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        self._value = 0
