"""Packetised configuration bit-stream container.

The format is deliberately close in spirit to vendor bit-streams (a header,
typed packets carrying frame data, a trailing CRC) while remaining fully
self-describing so the microcontroller's configuration module can parse it
without out-of-band information.

Layout
------

::

    +-------------------+
    | header (fixed)    |  magic, version, function id/name, geometry info,
    |                   |  frame count, frame payload size, I/O sizes
    +-------------------+
    | FRAME_DATA packet |  slot index + payload          (repeated per frame)
    +-------------------+
    | END packet        |  CRC-32 over all frame payloads
    +-------------------+

Frame payloads are *relocatable*: packets carry the frame's slot index within
the function's region (0..frame_count-1), not an absolute device address.  The
mini OS chooses the physical frames at load time from the free frame list and
the configuration module patches the addresses while streaming — this is what
lets the frame replacement policy place a function anywhere.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from repro.bitstream.crc import crc32


class BitstreamFormatError(ValueError):
    """Raised when a byte string is not a well-formed bit-stream."""


MAGIC = b"AGIL"
VERSION = 1

_HEADER_STRUCT = struct.Struct(">4sBB16sIIIIII")
_PACKET_STRUCT = struct.Struct(">BHI")


class PacketType:
    """Packet type identifiers (class of named constants, not an enum, so the
    values serialise directly as single bytes)."""

    FRAME_DATA = 0x01
    END = 0x7F


@dataclass(frozen=True)
class BitstreamHeader:
    """Fixed-size header at the start of every bit-stream."""

    function_id: int
    function_name: str
    frame_count: int
    frame_payload_bytes: int
    input_bytes: int
    output_bytes: int
    lut_count: int = 0
    flags: int = 0

    #: Flag bit set on partial (frame-relocatable) bit-streams; in this
    #: reproduction every generated bit-stream is partial unless it covers the
    #: whole device.
    FLAG_PARTIAL = 0x01

    def __post_init__(self) -> None:
        if self.function_id < 0 or self.function_id > 0xFFFFFFFF:
            raise ValueError("function id must fit in 32 bits")
        if len(self.function_name.encode("ascii", errors="replace")) > 16:
            raise ValueError("function name is limited to 16 ASCII bytes")
        if self.frame_count <= 0:
            raise ValueError("a bit-stream must cover at least one frame")
        if self.frame_payload_bytes <= 0:
            raise ValueError("frame payload size must be positive")
        if self.input_bytes < 0 or self.output_bytes < 0:
            raise ValueError("I/O sizes cannot be negative")

    @property
    def is_partial(self) -> bool:
        return bool(self.flags & self.FLAG_PARTIAL)

    @property
    def total_frame_bytes(self) -> int:
        return self.frame_count * self.frame_payload_bytes

    def pack(self) -> bytes:
        name_bytes = self.function_name.encode("ascii", errors="replace")[:16].ljust(16, b"\x00")
        return _HEADER_STRUCT.pack(
            MAGIC,
            VERSION,
            self.flags,
            name_bytes,
            self.function_id,
            self.frame_count,
            self.frame_payload_bytes,
            self.input_bytes,
            self.output_bytes,
            self.lut_count,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "BitstreamHeader":
        if len(data) < _HEADER_STRUCT.size:
            raise BitstreamFormatError("bit-stream shorter than its header")
        (
            magic,
            version,
            flags,
            name_bytes,
            function_id,
            frame_count,
            frame_payload_bytes,
            input_bytes,
            output_bytes,
            lut_count,
        ) = _HEADER_STRUCT.unpack_from(data)
        if magic != MAGIC:
            raise BitstreamFormatError(f"bad magic {magic!r}")
        if version != VERSION:
            raise BitstreamFormatError(f"unsupported bit-stream version {version}")
        return cls(
            function_id=function_id,
            function_name=name_bytes.rstrip(b"\x00").decode("ascii", errors="replace"),
            frame_count=frame_count,
            frame_payload_bytes=frame_payload_bytes,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            lut_count=lut_count,
            flags=flags,
        )

    @staticmethod
    def packed_size() -> int:
        return _HEADER_STRUCT.size


@dataclass(frozen=True)
class FrameDataPacket:
    """Configuration payload for one frame slot of the function's region."""

    slot: int
    payload: bytes

    def pack(self) -> bytes:
        return _PACKET_STRUCT.pack(PacketType.FRAME_DATA, self.slot, len(self.payload)) + self.payload


@dataclass
class Bitstream:
    """A parsed (or freshly built) configuration bit-stream."""

    header: BitstreamHeader
    frames: List[bytes] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.frames) != self.header.frame_count:
            raise BitstreamFormatError(
                f"header announces {self.header.frame_count} frames, "
                f"got {len(self.frames)} frame payloads"
            )
        for index, payload in enumerate(self.frames):
            if len(payload) != self.header.frame_payload_bytes:
                raise BitstreamFormatError(
                    f"frame slot {index} payload is {len(payload)} bytes, "
                    f"expected {self.header.frame_payload_bytes}"
                )

    # ------------------------------------------------------------ properties
    @property
    def payload_crc(self) -> int:
        value = 0
        for payload in self.frames:
            value = crc32(payload, value)
        return value

    @property
    def raw_size(self) -> int:
        """Size of the serialised bit-stream in bytes."""
        per_packet = _PACKET_STRUCT.size + self.header.frame_payload_bytes
        end_packet = _PACKET_STRUCT.size + 4
        return BitstreamHeader.packed_size() + len(self.frames) * per_packet + end_packet

    # ------------------------------------------------------------- serialise
    def to_bytes(self) -> bytes:
        parts = [self.header.pack()]
        for slot, payload in enumerate(self.frames):
            parts.append(FrameDataPacket(slot, payload).pack())
        crc_value = self.payload_crc
        parts.append(_PACKET_STRUCT.pack(PacketType.END, 0, 4))
        parts.append(struct.pack(">I", crc_value))
        return b"".join(parts)

    def iter_packets(self) -> Iterator[FrameDataPacket]:
        for slot, payload in enumerate(self.frames):
            yield FrameDataPacket(slot, payload)

    def __len__(self) -> int:
        return self.raw_size


def build_bitstream(
    function_id: int,
    function_name: str,
    frame_payloads: Sequence[bytes],
    input_bytes: int,
    output_bytes: int,
    lut_count: int = 0,
    partial: bool = True,
) -> Bitstream:
    """Assemble a :class:`Bitstream` from per-frame configuration payloads."""
    if not frame_payloads:
        raise BitstreamFormatError("a bit-stream needs at least one frame payload")
    payload_sizes = {len(payload) for payload in frame_payloads}
    if len(payload_sizes) != 1:
        raise BitstreamFormatError("all frame payloads must have the same size")
    header = BitstreamHeader(
        function_id=function_id,
        function_name=function_name,
        frame_count=len(frame_payloads),
        frame_payload_bytes=payload_sizes.pop(),
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        lut_count=lut_count,
        flags=BitstreamHeader.FLAG_PARTIAL if partial else 0,
    )
    return Bitstream(header=header, frames=list(frame_payloads))


def parse_bitstream(data: bytes, verify_crc: bool = True) -> Bitstream:
    """Parse and validate a serialised bit-stream.

    Raises :class:`BitstreamFormatError` on malformed input or (when
    *verify_crc* is set) on a CRC mismatch.
    """
    header = BitstreamHeader.unpack(data)
    offset = BitstreamHeader.packed_size()
    frames: List[bytes] = [b""] * header.frame_count
    seen = [False] * header.frame_count
    stored_crc = None
    while offset < len(data):
        if offset + _PACKET_STRUCT.size > len(data):
            raise BitstreamFormatError("truncated packet header")
        packet_type, slot, length = _PACKET_STRUCT.unpack_from(data, offset)
        offset += _PACKET_STRUCT.size
        if offset + length > len(data):
            raise BitstreamFormatError("truncated packet payload")
        payload = data[offset : offset + length]
        offset += length
        if packet_type == PacketType.FRAME_DATA:
            if not 0 <= slot < header.frame_count:
                raise BitstreamFormatError(f"frame slot {slot} outside header range")
            if seen[slot]:
                raise BitstreamFormatError(f"frame slot {slot} appears twice")
            if length != header.frame_payload_bytes:
                raise BitstreamFormatError(
                    f"frame slot {slot} payload is {length} bytes, "
                    f"expected {header.frame_payload_bytes}"
                )
            frames[slot] = payload
            seen[slot] = True
        elif packet_type == PacketType.END:
            if length != 4:
                raise BitstreamFormatError("END packet must carry a 4-byte CRC")
            (stored_crc,) = struct.unpack(">I", payload)
        else:
            raise BitstreamFormatError(f"unknown packet type 0x{packet_type:02x}")
    if not all(seen):
        missing = [index for index, flag in enumerate(seen) if not flag]
        raise BitstreamFormatError(f"bit-stream is missing frame slots {missing}")
    bitstream = Bitstream(header=header, frames=frames)
    if verify_crc:
        if stored_crc is None:
            raise BitstreamFormatError("bit-stream has no END packet / CRC")
        if stored_crc != bitstream.payload_crc:
            raise BitstreamFormatError(
                f"CRC mismatch: stored 0x{stored_crc:08x}, computed 0x{bitstream.payload_crc:08x}"
            )
    return bitstream
