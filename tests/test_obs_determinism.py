"""Determinism contract of the observability layer.

Two halves, matching the acceptance criteria:

* **Off is free**: running a cell with no observability, with observability
  constructed but ``enabled=False``, and with tracing fully on must all
  produce byte-identical schedule digests and front-door fingerprints —
  tracing spawns no kernel events and consumes no RNG.
* **On is reproducible**: the exported Chrome trace, the trace fingerprint,
  and the metrics snapshot of a fixed-seed cell are byte-identical across
  *processes* (same pattern as ``test_net_determinism``: only a fresh
  interpreter catches salted-hash or dict-order regressions).

The cross-process snippet drives the E12 trace-explorer cell itself, so the
example and the regression test can never drift apart.
"""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_TRACE_SNIPPET = """
import hashlib
import sys
sys.path.insert(0, "src")
sys.path.insert(0, ".")
from examples.trace_explorer import run_cell
from repro.obs import chrome_trace_json, metrics_snapshot_json, trace_fingerprint

frontdoor, observability = run_cell(
    "retry+shed", requests=150, overload=3.0, loss=0.02
)
chrome = chrome_trace_json(observability.spans)
print(repr(frontdoor.fingerprint()))
print(len(observability.spans), observability.tracer.dropped)
print(trace_fingerprint(observability.spans))
print(hashlib.sha256(chrome.encode()).hexdigest())
print(hashlib.sha256(metrics_snapshot_json(observability.registry).encode()).hexdigest())
"""


def run_snippet(snippet: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", snippet],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestObservabilityIsFreeWhenOff:
    def test_digests_identical_across_none_disabled_enabled(self):
        from repro.core.builder import build_fleet, build_frontdoor
        from repro.core.config import SMALL_CONFIG
        from repro.functions.bank import build_small_bank
        from repro.net import LinkSpec, OpenLoopPopulation
        from repro.obs import Observability
        from repro.workloads.multitenant import (
            default_tenant_mix,
            multi_tenant_trace,
        )

        from repro.obs import SloSpec, TailSampler

        def run(observability, slos=None):
            bank = build_small_bank()
            tenants = default_tenant_mix(bank, tenants=2, skew=1.2)
            trace = multi_tenant_trace(
                bank, tenants, length=60, mean_interarrival_ns=25_000.0, seed=17
            )
            fleet = build_fleet(
                cards=2,
                config=SMALL_CONFIG.with_overrides(seed=17),
                bank=bank,
                observability=observability,
            )
            frontdoor = build_frontdoor(
                fleet,
                seed=17,
                gateways=2,
                uplink=LinkSpec(latency_ns=15_000.0, loss=0.05, jitter_ns=3_000.0),
                slos=slos,
            )
            frontdoor.add_population(OpenLoopPopulation(trace))
            frontdoor.run()
            return frontdoor.fingerprint()

        baseline = run(None)
        disabled = run(Observability(enabled=False))
        enabled = run(Observability())
        judged = run(
            Observability(tail=TailSampler(slow_ns=300_000.0)),
            slos=[
                SloSpec.availability(
                    "net.availability", objective=0.95, source="net", min_events=5
                ),
                SloSpec.latency(
                    "net.latency.p95",
                    threshold_ns=300_000.0,
                    objective=0.9,
                    source="net",
                    min_events=5,
                ),
            ],
        )
        assert disabled == baseline
        assert enabled == baseline
        assert judged == baseline


class TestCrossProcessTraceDeterminism:
    def test_exported_trace_is_byte_identical_across_processes(self):
        first = run_snippet(_TRACE_SNIPPET)
        second = run_snippet(_TRACE_SNIPPET)
        assert first == second
        assert first.strip()
        # The run actually traced something and dropped nothing.
        spans, dropped = first.splitlines()[1].split()
        assert int(spans) > 0
        assert int(dropped) == 0


_KILL_DRILL_SNIPPET = """
import json
import sys
sys.path.insert(0, "src")
sys.path.insert(0, ".")
from examples.ops_console import run_kill_drill
from repro.obs import incidents_fingerprint, incidents_json

fleet, obs = run_kill_drill(tiny=True)
print(fleet.stats.schedule_digest())
print(incidents_fingerprint(obs.recorder))
print(json.dumps([a.to_dict() for a in obs.alerts], sort_keys=True))
print(incidents_json(obs.recorder))
"""


class TestKillDrillIncidentDeterminism:
    """The E10 kill drill's flight record, reproduced byte-for-byte."""

    def test_incident_json_identical_across_processes_and_complete(self):
        import json

        first = run_snippet(_KILL_DRILL_SNIPPET)
        second = run_snippet(_KILL_DRILL_SNIPPET)
        assert first == second

        lines = first.splitlines()
        alerts = json.loads(lines[2])
        assert any(a["slo"] == "fleet.availability" for a in alerts)

        record = json.loads("\n".join(lines[3:]))
        incidents = record["incidents"]
        assert incidents
        availability = next(
            inc for inc in incidents if inc["slo"] == "fleet.availability"
        )
        timeline = availability["timeline"]
        # The kill event, the heal order.* span and at least one
        # tail-retained failed trace all made it into the flight record.
        assert any(
            ev["kind"] == "fault" and ev["fault"] == "kill" for ev in timeline
        )
        assert any(
            ev["kind"] == "span" and ev["span"].startswith("order.heal")
            for ev in timeline
        )
        assert any(
            trace["reason"] == "error" for trace in availability["traces"]
        )
