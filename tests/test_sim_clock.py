"""Tests for the simulation clock and clock domains."""

import pytest

from repro.sim.clock import Clock, ClockDomain, Stopwatch, TimeUnit, format_time


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Clock().now == 0.0

    def test_starts_at_given_time(self):
        assert Clock(125.0).now == 125.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Clock(-1.0)

    def test_advance_accumulates(self):
        clock = Clock()
        clock.advance(10.0)
        clock.advance(5.5)
        assert clock.now == pytest.approx(15.5)

    def test_advance_rejects_negative_delta(self):
        clock = Clock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_moves_forward_only(self):
        clock = Clock()
        clock.advance_to(100.0)
        assert clock.now == 100.0
        clock.advance_to(50.0)  # no-op: already past
        assert clock.now == 100.0

    def test_reset(self):
        clock = Clock()
        clock.advance(42.0)
        clock.reset()
        assert clock.now == 0.0

    def test_observers_receive_previous_and_new_time(self):
        clock = Clock()
        seen = []
        clock.add_observer(lambda previous, new: seen.append((previous, new)))
        clock.advance(3.0)
        clock.advance(2.0)
        assert seen == [(0.0, 3.0), (3.0, 5.0)]

    def test_remove_observer(self):
        clock = Clock()
        seen = []
        callback = lambda previous, new: seen.append(new)  # noqa: E731
        clock.add_observer(callback)
        clock.advance(1.0)
        clock.remove_observer(callback)
        clock.advance(1.0)
        assert seen == [1.0]

    def test_now_in_units(self):
        clock = Clock()
        clock.advance(2_500_000.0)
        assert clock.now_in(TimeUnit.MILLISECONDS) == pytest.approx(2.5)
        assert clock.now_in(TimeUnit.MICROSECONDS) == pytest.approx(2500.0)


class TestClockDomain:
    def test_period_and_conversions(self):
        domain = ClockDomain("fabric", 100e6)
        assert domain.period_ns == pytest.approx(10.0)
        assert domain.cycles_to_ns(5) == pytest.approx(50.0)
        assert domain.ns_to_cycles(100.0) == pytest.approx(10.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            ClockDomain("bad", 0.0)

    def test_registration_and_lookup(self):
        clock = Clock()
        domain = clock.register_domain(ClockDomain("pci", 33e6))
        assert clock.domain("pci") is domain
        with pytest.raises(KeyError):
            clock.domain("missing")
        with pytest.raises(ValueError):
            clock.register_domain(ClockDomain("pci", 66e6))


class TestFormatTime:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (1.0, "1.000ns"),
            (1500.0, "1.500us"),
            (2_000_000.0, "2.000ms"),
            (3_500_000_000.0, "3.500s"),
        ],
    )
    def test_uses_readable_units(self, value, expected):
        assert format_time(value) == expected


class TestStopwatch:
    def test_measures_elapsed_time(self):
        clock = Clock()
        watch = Stopwatch(clock).start()
        clock.advance(125.0)
        assert watch.elapsed_ns == pytest.approx(125.0)
        clock.advance(25.0)
        assert watch.stop() == pytest.approx(150.0)

    def test_requires_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch(Clock()).stop()
