"""Invariants of the region-level configuration-memory bookkeeping.

The O(1) ownership index (per-owner frame sets + free set) must stay
consistent with the per-frame owner map under any sequence of claims,
releases, writes and clears — these tests recompute the naive full-scan
answers and compare.
"""

import random

import pytest

from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.errors import ConfigurationError, FrameCollisionError
from repro.fpga.frame import FrameRegion
from repro.fpga.geometry import TEST_GEOMETRY


@pytest.fixture
def memory():
    return ConfigurationMemory(TEST_GEOMETRY)


def _region(indices):
    return FrameRegion.from_addresses([TEST_GEOMETRY.frame_at(i) for i in indices])


def _naive_owned(memory, owner):
    return [a for a in TEST_GEOMETRY.all_frames() if memory.owner_of(a) == owner]


def _naive_unowned(memory):
    return [a for a in TEST_GEOMETRY.all_frames() if memory.owner_of(a) is None]


class TestIndexConsistency:
    def test_random_operation_sequences_keep_index_consistent(self, memory):
        rng = random.Random(42)
        owners = ["aes", "sha1", "fir", "crc"]
        payload = bytes(TEST_GEOMETRY.frame_config_bytes)
        frame_count = TEST_GEOMETRY.frame_count
        for _ in range(300):
            op = rng.randrange(5)
            indices = rng.sample(range(frame_count), rng.randrange(1, 6))
            region = _region(indices)
            owner = rng.choice(owners)
            try:
                if op == 0:
                    memory.claim(region, owner)
                elif op == 1:
                    memory.release(region)
                elif op == 2:
                    for address in region:
                        memory.write_frame(address, payload, owner=owner)
                elif op == 3:
                    memory.clear_region(region)
                else:
                    memory.write_region(region, [payload] * len(region), owner=owner)
            except (FrameCollisionError, ConfigurationError):
                pass
            # The indexed answers must equal a full scan at every step.
            for name in owners:
                assert memory.owned_frames(name) == _naive_owned(memory, name)
            assert memory.unowned_frames() == _naive_unowned(memory)
            expected_util = (frame_count - len(_naive_unowned(memory))) / frame_count
            assert memory.utilisation() == expected_util

    def test_owners_report_matches_scan_order(self, memory):
        memory.claim(_region([5, 3, 9]), "b")
        memory.claim(_region([0, 7]), "a")
        report = memory.owners()
        # Keys in order of first owned frame (raster order), frames in raster
        # order — the order the original full-scan implementation produced.
        assert list(report) == ["a", "b"]
        assert report["b"] == [TEST_GEOMETRY.frame_at(i) for i in (3, 5, 9)]

    def test_clear_frame_invalidates_cached_readback(self, memory):
        # Regression: a readback caches the frame's serialisation; clearing
        # the frame must drop that cache so the next readback is all-zero.
        address = TEST_GEOMETRY.frame_at(2)
        payload = bytes([0x41] * TEST_GEOMETRY.frame_config_bytes)
        memory.write_frame(address, payload, owner="aes")
        cached = memory.read_frame(address)
        assert cached.count(0) < len(cached)
        memory.clear_frame(address)
        assert memory.read_frame(address) == bytes(TEST_GEOMETRY.frame_config_bytes)
        assert memory.frames[address].is_clear

    def test_clear_device_resets_everything(self, memory):
        payload = bytes([1] * TEST_GEOMETRY.frame_config_bytes)
        memory.write_region(_region([1, 2, 3]), [payload] * 3, owner="aes")
        memory.claim(_region([10]), "sha1")  # owned but never written
        memory.clear_device()
        assert memory.unowned_frames() == TEST_GEOMETRY.all_frames()
        assert memory.owners() == {}
        assert memory.utilisation() == 0.0
        for index in (1, 2, 3):
            assert memory.frames[TEST_GEOMETRY.frame_at(index)].is_clear


class TestClaim:
    def test_claim_reports_all_frames_of_first_foreign_owner(self, memory):
        memory.claim(_region([2, 4]), "aes")
        memory.claim(_region([6]), "sha1")
        with pytest.raises(FrameCollisionError) as excinfo:
            memory.claim(_region([0, 4, 6, 2]), "fir")
        # First foreign owner encountered walking the region is "aes" (frame
        # 4); every region frame aes holds is reported, later owners are not.
        assert excinfo.value.owner == "aes"
        assert set(excinfo.value.frames) == {
            TEST_GEOMETRY.frame_at(4),
            TEST_GEOMETRY.frame_at(2),
        }

    def test_failed_claim_leaves_ownership_untouched(self, memory):
        memory.claim(_region([4]), "aes")
        with pytest.raises(FrameCollisionError):
            memory.claim(_region([0, 1, 4]), "fir")
        assert memory.owned_frames("fir") == []
        assert memory.owner_of(TEST_GEOMETRY.frame_at(0)) is None
        assert memory.owner_of(TEST_GEOMETRY.frame_at(4)) == "aes"

    def test_reclaim_by_same_owner_is_allowed(self, memory):
        memory.claim(_region([0, 1]), "aes")
        memory.claim(_region([0, 1, 2]), "aes")
        assert len(memory.owned_frames("aes")) == 3


class TestWriteRegion:
    def test_write_region_roundtrip_and_ownership(self, memory):
        payloads = [
            bytes([index + 1] * TEST_GEOMETRY.frame_config_bytes) for index in range(3)
        ]
        region = _region([8, 5, 11])
        memory.write_region(region, payloads, owner="fir")
        # Readback preserves region order and canonical serialisation length.
        readback = memory.read_region(region)
        assert [len(chunk) for chunk in readback] == [TEST_GEOMETRY.frame_config_bytes] * 3
        assert memory.owned_frames("fir") == sorted(
            region, key=lambda a: a.flat_index(TEST_GEOMETRY.tiles_per_column)
        )
        assert memory.total_frame_writes == 3

    def test_write_region_validates_before_writing(self, memory):
        memory.claim(_region([5]), "aes")
        payload = bytes(TEST_GEOMETRY.frame_config_bytes)
        with pytest.raises(FrameCollisionError):
            memory.write_region(_region([4, 5]), [payload, payload], owner="fir")
        # Frame 4 must not have been written before the collision was found.
        assert memory.owner_of(TEST_GEOMETRY.frame_at(4)) is None
        assert memory.total_frame_writes == 0

    def test_write_region_payload_count_mismatch(self, memory):
        payload = bytes(TEST_GEOMETRY.frame_config_bytes)
        with pytest.raises(ConfigurationError):
            memory.write_region(_region([0, 1]), [payload])
