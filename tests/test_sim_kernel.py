"""Tests for the process-oriented simulator."""

import pytest

from repro.sim.clock import Clock
from repro.sim.kernel import Simulator, SimulationError, Timeout, WaitEvent


class TestTimeouts:
    def test_single_process_advances_time(self):
        simulator = Simulator()

        def worker():
            yield Timeout(100.0)
            yield Timeout(50.0)

        simulator.spawn(worker())
        end = simulator.run()
        assert end == pytest.approx(150.0)

    def test_processes_interleave(self):
        simulator = Simulator()
        order = []

        def worker(name, delay):
            yield Timeout(delay)
            order.append(name)

        simulator.spawn(worker("slow", 20.0))
        simulator.spawn(worker("fast", 5.0))
        simulator.run()
        assert order == ["fast", "slow"]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_negative_spawn_delay_rejected(self):
        simulator = Simulator()
        with pytest.raises(ValueError):
            simulator.spawn((x for x in ()), delay_ns=-5.0)

    def test_process_result_recorded(self):
        simulator = Simulator()

        def worker():
            yield Timeout(1.0)
            return 42

        process = simulator.spawn(worker())
        simulator.run()
        assert process.finished and process.result == 42

    def test_run_until_limits_time(self):
        simulator = Simulator()

        def worker():
            yield Timeout(1000.0)

        simulator.spawn(worker())
        end = simulator.run(until_ns=100.0)
        assert end == pytest.approx(100.0)


class TestWaitEvents:
    def test_trigger_wakes_waiter(self):
        simulator = Simulator()
        gate = WaitEvent("gate")
        log = []

        def waiter():
            value = yield gate
            log.append(value)

        def opener():
            yield Timeout(10.0)
            simulator.trigger(gate, "opened")

        simulator.spawn(waiter())
        simulator.spawn(opener())
        simulator.run()
        assert log == ["opened"]

    def test_double_trigger_raises(self):
        gate = WaitEvent("gate")
        gate.succeed()
        with pytest.raises(SimulationError):
            gate.succeed()


class TestResources:
    def test_serialises_access(self):
        simulator = Simulator()
        resource = simulator.resource(capacity=1, name="bus")
        log = []

        def user(name):
            yield resource.request()
            log.append((name, simulator.clock.now, "acquire"))
            yield Timeout(10.0)
            resource.release()

        simulator.spawn(user("a"))
        simulator.spawn(user("b"))
        simulator.run()
        acquire_times = [entry[1] for entry in log]
        assert acquire_times == [0.0, 10.0]

    def test_capacity_two_allows_parallelism(self):
        simulator = Simulator()
        resource = simulator.resource(capacity=2)
        acquired = []

        def user():
            yield resource.request()
            acquired.append(simulator.clock.now)
            yield Timeout(5.0)
            resource.release()

        for _ in range(2):
            simulator.spawn(user())
        simulator.run()
        assert acquired == [0.0, 0.0]

    def test_release_of_idle_resource_raises(self):
        simulator = Simulator()
        resource = simulator.resource()
        with pytest.raises(SimulationError):
            resource.release()

    def test_wait_time_accounted(self):
        simulator = Simulator()
        resource = simulator.resource(capacity=1)

        def user():
            yield resource.request()
            yield Timeout(20.0)
            resource.release()

        simulator.spawn(user())
        simulator.spawn(user())
        simulator.run()
        assert resource.total_wait_ns == pytest.approx(20.0)
        assert resource.total_acquisitions == 2


class TestStores:
    def test_put_then_get(self):
        simulator = Simulator()
        store = simulator.store()
        received = []

        def producer():
            yield Timeout(5.0)
            store.put("item")

        def consumer():
            item = yield store.get()
            received.append((item, simulator.clock.now))

        simulator.spawn(consumer())
        simulator.spawn(producer())
        simulator.run()
        assert received == [("item", 5.0)]

    def test_get_from_nonempty_store_is_immediate(self):
        simulator = Simulator()
        store = simulator.store()
        store.put(1)
        received = []

        def consumer():
            received.append((yield store.get()))

        simulator.spawn(consumer())
        simulator.run()
        assert received == [1]


class TestProcessJoin:
    def test_waiting_on_a_process_returns_its_result(self):
        simulator = Simulator()
        results = []

        def child():
            yield Timeout(10.0)
            return "done"

        def parent():
            value = yield simulator.spawn(child())
            results.append((value, simulator.clock.now))

        simulator.spawn(parent())
        simulator.run()
        assert results == [("done", 10.0)]

    def test_unknown_yield_raises(self):
        simulator = Simulator()

        def bad():
            yield 123

        simulator.spawn(bad())
        with pytest.raises(SimulationError):
            simulator.run()

    def test_shared_clock(self):
        clock = Clock()
        simulator = Simulator(clock)

        def worker():
            yield Timeout(30.0)

        simulator.spawn(worker())
        simulator.run()
        assert clock.now == pytest.approx(30.0)


class TestMaxEvents:
    def test_runaway_zero_delay_loop_raises_deterministically(self):
        simulator = Simulator()

        def spinner():
            while True:
                yield Timeout(0.0)  # simulated time never advances

        simulator.spawn(spinner())
        with pytest.raises(SimulationError):
            simulator.run(max_events=100)
        # Deterministic cap: exactly the limit plus the offending dispatch.
        assert simulator.events_dispatched == 101

    def test_completing_run_is_unaffected_by_a_generous_cap(self):
        simulator = Simulator()

        def worker():
            for _ in range(5):
                yield Timeout(1.0)

        simulator.spawn(worker())
        assert simulator.run(max_events=1_000) == pytest.approx(5.0)


class TestEagerGet:
    """``Simulator(eager_get=True)``: synchronous store grants.

    A get against a non-empty store resumes the getter inside the current
    step instead of scheduling a same-instant FIFO event — same values, same
    timestamps, fewer dispatched events.  Off by default so every historical
    schedule (and its event count) is untouched.
    """

    @staticmethod
    def _producer_consumer(simulator, bursts=5, burst_size=4):
        # Bursty puts leave the store non-empty at most gets — the case the
        # eager path collapses into synchronous grants.
        store = simulator.store()
        received = []

        def producer():
            for burst in range(bursts):
                yield Timeout(1.0)
                for offset in range(burst_size):
                    store.put(burst * burst_size + offset)

        def consumer():
            for _ in range(bursts * burst_size):
                value = yield store.get()
                received.append((value, simulator.clock.now))

        simulator.spawn(producer())
        simulator.spawn(consumer())
        return received

    def test_same_values_and_times_with_fewer_events(self):
        default = Simulator()
        default_received = self._producer_consumer(default)
        default.run()

        eager = Simulator(eager_get=True)
        eager_received = self._producer_consumer(eager)
        eager.run()

        assert eager_received == default_received
        assert eager.clock.now == default.clock.now
        assert eager.events_dispatched < default.events_dispatched

    def test_synchronous_grants_do_not_count_against_max_events(self):
        def drain(store, count):
            for _ in range(count):
                yield store.get()

        eager = Simulator(eager_get=True)
        store = eager.store()
        for value in range(50):
            store.put(value)
        eager.spawn(drain(store, 50))
        # One dispatched start event; the 50 grants happen inside that step.
        eager.run(max_events=2)
        assert eager.events_dispatched == 1

        default = Simulator()
        store = default.store()
        for value in range(50):
            store.put(value)
        default.spawn(drain(store, 50))
        with pytest.raises(SimulationError):
            default.run(max_events=2)

    def test_empty_store_still_blocks_under_eager(self):
        simulator = Simulator(eager_get=True)
        store = simulator.store()
        received = []

        def producer():
            yield Timeout(7.0)
            store.put("late")

        def consumer():
            received.append(((yield store.get()), simulator.clock.now))

        simulator.spawn(consumer())
        simulator.spawn(producer())
        simulator.run()
        assert received == [("late", 7.0)]

    def test_off_by_default(self):
        assert Simulator().eager_get is False
