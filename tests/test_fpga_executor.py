"""Tests for netlist and behavioural executors."""

import pytest

from repro.fpga.executor import (
    BehaviouralExecutor,
    CycleModel,
    NetlistExecutor,
    bits_to_bytes,
    bytes_to_bits,
)
from repro.fpga.errors import ExecutionError
from repro.fpga.lut import LookUpTable
from repro.fpga.netlist import Netlist
from repro.functions.netgen import build_adder_netlist, build_parity_netlist, build_popcount_netlist


class TestBitHelpers:
    def test_round_trip(self):
        data = bytes([0b10110010, 0xFF, 0x00])
        bits = bytes_to_bits(data, 24)
        assert bits_to_bytes(bits) == data

    def test_truncation_and_padding(self):
        bits = bytes_to_bits(b"\xff", 4)
        assert bits == [True, True, True, True]
        assert bytes_to_bits(b"", 3) == [False, False, False]


class TestNetlistExecutor:
    def test_combinational_xor(self, tiny_geometry):
        netlist = Netlist("xor")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        out = netlist.add_lut("x", LookUpTable.logic_xor(2), [a, b])
        netlist.add_output(out)
        executor = NetlistExecutor(netlist)
        output, cycles = executor.run(bytes([0b01]))
        assert output == bytes([1])
        assert cycles == 1
        output, _ = executor.run(bytes([0b11]))
        assert output == bytes([0])

    def test_adder_netlist_matches_arithmetic(self, tiny_geometry):
        executor = NetlistExecutor(build_adder_netlist(tiny_geometry, 8))
        for a, b in [(0, 0), (1, 2), (200, 100), (255, 255), (17, 240)]:
            output, _ = executor.run(bytes([a, b]))
            total = a + b
            assert output[0] == total & 0xFF
            assert output[1] == (total >> 8) & 1

    def test_parity_netlist_matches_popcount(self, tiny_geometry):
        executor = NetlistExecutor(build_parity_netlist(tiny_geometry, 32))
        for word in (0, 1, 0xFFFFFFFF, 0x12345678, 0x80000001):
            output, _ = executor.run(word.to_bytes(4, "little"))
            assert output[0] == bin(word).count("1") % 2

    def test_popcount_netlist(self, tiny_geometry):
        executor = NetlistExecutor(build_popcount_netlist(tiny_geometry, 8))
        for value in range(0, 256, 17):
            output, _ = executor.run(bytes([value]))
            assert output[0] == bin(value).count("1")

    def test_wrong_input_size_rejected(self, tiny_geometry):
        executor = NetlistExecutor(build_adder_netlist(tiny_geometry, 8))
        with pytest.raises(ExecutionError):
            executor.run(b"\x00")

    def test_sequential_netlist_state_and_reset(self):
        # A 1-bit toggle: q <= q XOR enable.
        netlist = Netlist("toggle")
        enable = netlist.add_input("enable")
        q = netlist.add_flip_flop("ff", "next")
        netlist.add_lut("xor", LookUpTable.logic_xor(2), [q, enable], output_net="next")
        netlist.add_output(q)
        executor = NetlistExecutor(netlist, cycles=3)
        output, cycles = executor.run(bytes([1]))
        # After 3 cycles of toggling from 0 the output (sampled before the
        # final edge is visible at q) reflects 2 completed toggles.
        assert cycles == 3
        assert output[0] in (0, 1)
        # Deterministic across runs because run() resets state first.
        assert executor.run(bytes([1])) == (output, cycles)

    def test_requires_at_least_one_cycle(self, tiny_geometry):
        with pytest.raises(ValueError):
            NetlistExecutor(build_parity_netlist(tiny_geometry, 8), cycles=0)


class TestBehaviouralExecutor:
    def test_runs_behaviour_and_charges_cycles(self):
        model = CycleModel(base_cycles=10, cycles_per_byte=2.0, pipeline_depth=5)
        executor = BehaviouralExecutor("upper", lambda data: data.upper(), model)
        output, cycles = executor.run(b"abc")
        assert output == b"ABC"
        assert cycles == 10 + 5 + 6

    def test_default_cycle_model(self):
        executor = BehaviouralExecutor("id", lambda data: data)
        _, cycles = executor.run(b"1234")
        assert cycles == CycleModel().cycles_for(4)


class TestCycleModel:
    def test_cycles_scale_with_input(self):
        model = CycleModel(base_cycles=8, cycles_per_byte=0.5)
        assert model.cycles_for(0) == 8
        assert model.cycles_for(16) == 16
