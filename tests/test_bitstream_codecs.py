"""Tests for the compression codecs (including property-based round trips)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstream.codecs import (
    CodecError,
    FrameDifferentialCodec,
    GolombRiceCodec,
    HuffmanCodec,
    LZ77Codec,
    NullCodec,
    RunLengthCodec,
    SymmetryAwareCodec,
    available_codecs,
    get_codec,
    register_codec,
)

ALL_CODECS = [
    NullCodec(),
    RunLengthCodec(),
    LZ77Codec(),
    HuffmanCodec(),
    GolombRiceCodec(),
    FrameDifferentialCodec(frame_size=64),
    SymmetryAwareCodec(clb_stride=33),
]

SAMPLES = [
    b"",
    b"\x00",
    b"a",
    b"\x00" * 500,
    b"abc" * 100,
    bytes(range(256)),
    bytes([0, 0, 0, 7, 0, 0, 0, 7] * 64),
    b"\x00" * 100 + bytes(range(64)) + b"\x00" * 100,
]


class TestRoundTrips:
    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda codec: codec.name)
    @pytest.mark.parametrize("sample", SAMPLES, ids=range(len(SAMPLES)))
    def test_round_trip_fixed_samples(self, codec, sample):
        assert codec.decompress(codec.compress(sample)) == sample

    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda codec: codec.name)
    @given(data=st.binary(max_size=600))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, codec, data):
        assert codec.decompress(codec.compress(data)) == data

    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda codec: codec.name)
    def test_windowed_round_trip_with_context(self, codec):
        previous = bytes([0x11] * 128)
        window = bytes([0x11] * 100 + [0x22] * 28)
        blob = codec.compress_window(window, previous)
        assert codec.decompress_window(blob, previous) == window


class TestCompressionQuality:
    def test_sparse_frames_shrink(self):
        sparse = b"\x00" * 900 + bytes(range(50)) + b"\x00" * 100
        for codec in (RunLengthCodec(), GolombRiceCodec(), LZ77Codec(), HuffmanCodec()):
            assert len(codec.compress(sparse)) < len(sparse), codec.name

    def test_repetitive_structure_compresses_with_lz(self):
        pattern = bytes([1, 2, 3, 4, 5, 6, 7, 8]) * 100
        assert len(LZ77Codec().compress(pattern)) < len(pattern) // 4

    def test_symmetry_codec_beats_plain_rle_on_strided_data(self):
        # Byte i of every "CLB" is identical -> transposition creates long runs.
        stride = 33
        clb = bytes(range(stride))
        data = clb * 40
        symmetric = SymmetryAwareCodec(clb_stride=stride)
        plain = RunLengthCodec()
        assert len(symmetric.compress(data)) < len(plain.compress(data))

    def test_framediff_collapses_near_identical_frames(self):
        frame = bytes([7, 1, 0, 9] * 16)
        data = frame * 20
        codec = FrameDifferentialCodec(frame_size=len(frame))
        assert len(codec.compress(data)) < len(RunLengthCodec().compress(data))

    def test_ratio_helper(self):
        codec = RunLengthCodec()
        assert codec.ratio(b"\x00" * 1000) > 10.0
        assert codec.ratio(b"") == 1.0


class TestErrorHandling:
    def test_rle_rejects_garbage(self):
        with pytest.raises(CodecError):
            RunLengthCodec().decompress(b"\xff\x00\x01")

    def test_lz77_rejects_bad_backreference(self):
        import struct

        blob = bytes([0x01]) + struct.pack(">HH", 100, 4)
        with pytest.raises(CodecError):
            LZ77Codec().decompress(blob)

    def test_huffman_rejects_truncation(self):
        blob = HuffmanCodec().compress(b"hello world, hello world")
        with pytest.raises(CodecError):
            HuffmanCodec().decompress(blob[: len(blob) // 2])

    def test_golomb_rejects_truncation(self):
        blob = GolombRiceCodec().compress(b"\x00" * 50 + b"abc")
        with pytest.raises(CodecError):
            GolombRiceCodec().decompress(blob[:6])

    def test_symmetry_rejects_short_header(self):
        with pytest.raises(CodecError):
            SymmetryAwareCodec().decompress(b"\x00")

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LZ77Codec(window=0)
        with pytest.raises(ValueError):
            GolombRiceCodec(k=99)
        with pytest.raises(ValueError):
            FrameDifferentialCodec(frame_size=0)
        with pytest.raises(ValueError):
            SymmetryAwareCodec(clb_stride=0)


class TestRegistry:
    def test_all_expected_codecs_registered(self):
        names = available_codecs()
        for expected in ("null", "rle", "lz77", "huffman", "golomb", "framediff", "symmetry"):
            assert expected in names

    def test_get_codec_instantiates(self):
        assert get_codec("rle").name == "rle"

    def test_unknown_codec_raises_with_known_list(self):
        with pytest.raises(KeyError, match="rle"):
            get_codec("zstd")

    def test_register_custom_codec(self):
        class ReverseCodec(NullCodec):
            name = "reverse-test"

            def compress(self, data):
                return bytes(reversed(data))

            def decompress(self, blob):
                return bytes(reversed(blob))

        register_codec("reverse-test", ReverseCodec)
        codec = get_codec("reverse-test")
        assert codec.decompress(codec.compress(b"abc")) == b"abc"
