"""The fleet layer: dispatch policies, queueing, statistics, determinism.

The tiny-fleet/trace builders live in ``tests/conftest.py`` (``small_fleet``,
``small_trace``, ``host_driver_factory``) and are shared with the fault and
multi-card PCI suites.
"""

import pytest

from repro.cluster import (
    ConfigAffinityPolicy,
    Fleet,
    FleetStatistics,
    LeastOutstandingPolicy,
    RoundRobinPolicy,
    build_dispatch_policy,
)
from repro.core.builder import build_fleet
from repro.workloads.multitenant import (
    FleetRequest,
    FleetTrace,
    default_tenant_mix,
    multi_tenant_trace,
)


class TestDispatchPolicies:
    def test_registry_builds_all_policies(self):
        assert isinstance(build_dispatch_policy("round_robin"), RoundRobinPolicy)
        assert isinstance(build_dispatch_policy("least_outstanding"), LeastOutstandingPolicy)
        assert isinstance(build_dispatch_policy("affinity"), ConfigAffinityPolicy)
        with pytest.raises(ValueError):
            build_dispatch_policy("nonsense")

    def test_affinity_rejects_negative_imbalance_limit(self):
        with pytest.raises(ValueError):
            ConfigAffinityPolicy(imbalance_limit=-1)

    def test_round_robin_rotates(self, small_bank, small_fleet):
        fleet = small_fleet(small_bank, policy="round_robin", cards=3)
        request = FleetRequest(tenant="t", function="crc32", payload=b"", arrival_ns=0.0)
        chosen = [fleet.policy.choose(request, fleet.cards).index for _ in range(6)]
        assert chosen == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_prefers_idle_card(self, small_bank, small_fleet):
        fleet = small_fleet(small_bank, policy="least_outstanding", cards=3)
        fleet.cards[0].outstanding = 2
        fleet.cards[1].outstanding = 1
        request = FleetRequest(tenant="t", function="crc32", payload=b"", arrival_ns=0.0)
        assert fleet.policy.choose(request, fleet.cards).index == 2

    def test_policies_reject_when_every_queue_is_full(self, small_bank, small_fleet):
        for policy in ("round_robin", "least_outstanding", "affinity"):
            fleet = small_fleet(small_bank, policy=policy, cards=2, queue_depth=1)
            for card in fleet.cards:
                card.outstanding = card.queue_depth
            request = FleetRequest(tenant="t", function="crc32", payload=b"", arrival_ns=0.0)
            assert fleet.policy.choose(request, fleet.cards) is None

    def test_affinity_routes_to_resident_card(self, small_bank, small_fleet):
        fleet = small_fleet(small_bank, policy="affinity", cards=3)
        # Make crc32 resident on card 2 only (through the real driver path).
        fleet.cards[2].driver.preload("crc32")
        assert fleet.cards[2].holds("crc32")
        request = FleetRequest(tenant="t", function="crc32", payload=b"", arrival_ns=0.0)
        assert fleet.policy.choose(request, fleet.cards).index == 2
        assert fleet.policy.affinity_hits == 1

    def test_affinity_imbalance_limit_falls_back_to_load(
        self, small_bank, host_driver_factory
    ):
        fleet = Fleet(
            [host_driver_factory(small_bank) for _ in range(2)],
            policy=ConfigAffinityPolicy(imbalance_limit=1),
            queue_depth=8,
        )
        fleet.cards[0].driver.preload("crc32")
        fleet.cards[0].outstanding = 5  # far busier than the cold card
        request = FleetRequest(tenant="t", function="crc32", payload=b"", arrival_ns=0.0)
        assert fleet.policy.choose(request, fleet.cards).index == 1


class TestFleetRun:
    def test_conservation_and_completion(self, small_bank, small_fleet, small_trace):
        trace = small_trace(small_bank, length=50)
        fleet = small_fleet(small_bank)
        stats = fleet.run(trace)
        assert stats.arrivals == 50
        assert stats.completed + stats.rejected == 50
        assert stats.dispatched == stats.completed
        assert sum(stats.per_card_dispatched.values()) == stats.dispatched
        assert sum(stats.per_tenant_dispatched.values()) == stats.dispatched
        assert stats.completed == sum(card.served for card in fleet.cards)
        assert stats.hits + stats.misses == stats.completed
        for card in fleet.cards:
            assert card.outstanding == 0

    def test_sojourn_includes_queueing(self, small_bank, small_fleet, small_trace):
        trace = small_trace(small_bank, length=50, mean_interarrival_ns=500.0)
        stats = small_fleet(small_bank, cards=1).run(trace)
        # With arrivals far faster than service, waits dominate.
        assert stats.mean_wait_ns > 0
        assert stats.mean_sojourn_ns >= stats.mean_wait_ns
        assert stats.latency_percentile(95) >= stats.latency_percentile(50)

    def test_admission_control_rejects_on_overload(
        self, small_bank, small_fleet, small_trace
    ):
        trace = small_trace(small_bank, length=80, mean_interarrival_ns=200.0)
        stats = small_fleet(small_bank, cards=1, queue_depth=2).run(trace)
        assert stats.rejected > 0
        assert stats.completed + stats.rejected == 80
        assert 0 < stats.rejection_rate < 1
        # Tenants stay visible in the per-tenant reports even when most of
        # their traffic was rejected, and the rates add up.
        for tenant in trace.tenants():
            assert tenant in stats.tenants()
            row = stats.per_tenant_summary(tenant)
            # The run drained fully, so every arrival either completed or
            # was rejected at the door.
            assert row["arrivals"] == row["completed"] + row["rejected"]
            assert 0.0 <= row["rejection_rate"] <= 1.0

    def test_run_can_be_resumed_with_more_traffic(
        self, small_bank, small_fleet, small_trace
    ):
        fleet = small_fleet(small_bank)
        first = small_trace(small_bank, length=20, seed=1)
        fleet.run(first)
        assert fleet.stats.completed + fleet.stats.rejected == 20
        resumed_at = fleet.clock.now
        # Arrival times are relative to the start of each run.
        followup = FleetTrace(
            [
                FleetRequest(
                    tenant="late",
                    function="crc32",
                    payload=b"x" * 4,
                    arrival_ns=1000.0,
                )
            ]
        )
        stats = fleet.run(followup)
        assert stats.arrivals == 21
        assert stats.completed == 21 and stats.rejected == 0
        # The late request was served on the resumed timeline, and its
        # sojourn was measured against the re-stamped arrival, not a stale
        # first-run timestamp.
        assert fleet.clock.now >= resumed_at + 1000.0
        assert stats.latency_percentile(100, "late") < resumed_at

    def test_truncated_run_refuses_a_new_trace_until_drained(
        self, small_bank, small_fleet, small_trace
    ):
        fleet = small_fleet(small_bank)
        trace = small_trace(small_bank, length=30, mean_interarrival_ns=10_000.0)
        fleet.run(trace, until_ns=trace.duration_ns / 4)
        # Offering a new trace while the old arrivals are suspended would
        # flood the stale requests in one burst — refuse instead.
        with pytest.raises(RuntimeError):
            fleet.run(small_trace(small_bank, length=5, seed=9))
        fleet.simulator.run()  # drain the truncated trace
        stats = fleet.run(small_trace(small_bank, length=5, seed=9))
        assert stats.arrivals == 35
        assert stats.completed + stats.rejected == 35

    def test_affinity_beats_round_robin_under_pressure(
        self, default_bank, fleet_working_set, pressure_config
    ):
        subset = default_bank.subset(fleet_working_set)
        specs = default_tenant_mix(subset, tenants=4, skew=1.2)
        trace = multi_tenant_trace(
            subset, specs, length=200, mean_interarrival_ns=150_000.0, seed=2005
        )
        results = {}
        for policy in ("round_robin", "affinity"):
            fleet = build_fleet(
                cards=4,
                config=pressure_config,
                bank=default_bank,
                functions=fleet_working_set,
                policy=policy,
            )
            results[policy] = fleet.run(trace)
        assert results["affinity"].hit_rate > results["round_robin"].hit_rate
        assert (
            results["affinity"].latency_percentile(95)
            < results["round_robin"].latency_percentile(95)
        )
        assert results["affinity"].reconfigurations < results["round_robin"].reconfigurations

    def test_fleet_requires_cards(self):
        with pytest.raises(ValueError):
            Fleet([], policy="affinity")
        with pytest.raises(ValueError):
            build_fleet(cards=0)

    def test_policy_instances_cannot_be_shared_across_fleets(
        self, small_bank, host_driver_factory
    ):
        policy = ConfigAffinityPolicy(imbalance_limit=2)
        drivers = [host_driver_factory(small_bank)]
        # A failed construction must not poison the policy instance ...
        with pytest.raises(ValueError):
            Fleet(drivers, policy=policy, queue_depth=0)
        Fleet(drivers, policy=policy)
        # ... but a successful one binds it: the rotation pointers / hit
        # counters are per-fleet state, and a second fleet reusing the
        # instance would silently break determinism.
        with pytest.raises(ValueError):
            Fleet(drivers, policy=policy)

    def test_describe_mentions_every_card(self, small_bank, small_fleet, small_trace):
        fleet = small_fleet(small_bank, cards=2)
        fleet.run(small_trace(small_bank, length=10))
        text = fleet.describe()
        assert "card0" in text and "card1" in text
        assert "policy=affinity" in text


class TestFleetStatistics:
    def test_empty_statistics(self):
        stats = FleetStatistics()
        assert stats.hit_rate == 0.0
        assert stats.throughput_requests_per_s == 0.0
        assert stats.latency_percentile(95) == 0.0
        assert stats.latency_percentile(95, "ghost") == 0.0
        assert stats.makespan_ns == 0.0

    def test_summary_keys(self, small_bank, small_fleet, small_trace):
        stats = small_fleet(small_bank).run(small_trace(small_bank, length=30))
        summary = stats.summary()
        for key in (
            "arrivals",
            "completed",
            "rejected",
            "hit_rate",
            "p95_sojourn_us",
            "p99_sojourn_us",
            "throughput_rps",
        ):
            assert key in summary
        for tenant in stats.tenants():
            row = stats.per_tenant_summary(tenant)
            assert row["completed"] > 0
            assert row["p95_sojourn_us"] >= row["p50_sojourn_us"] or row["completed"] < 3

    def test_describe_lists_tenants(self, small_bank, small_fleet, small_trace):
        stats = small_fleet(small_bank).run(small_trace(small_bank, length=30))
        text = stats.describe()
        for tenant in stats.tenants():
            assert tenant in text


class TestDeterminism:
    @staticmethod
    def build_and_run(bank, small_fleet, small_trace, policy="affinity"):
        trace = small_trace(bank, length=60, mean_interarrival_ns=5_000.0)
        fleet = small_fleet(bank, policy=policy, cards=2)
        fleet.run(trace)
        return fleet.fingerprint()

    def test_fingerprint_stable_across_runs(self, small_bank, small_fleet, small_trace):
        for policy in ("round_robin", "least_outstanding", "affinity"):
            assert self.build_and_run(
                small_bank, small_fleet, small_trace, policy
            ) == self.build_and_run(small_bank, small_fleet, small_trace, policy), policy

    def test_policies_produce_distinct_schedules(
        self, small_bank, small_fleet, small_trace
    ):
        # Same trace, different routing: the completion digests must differ
        # (if they did not, the policies would not actually be routing).
        digests = {
            policy: self.build_and_run(small_bank, small_fleet, small_trace, policy)[4]
            for policy in ("round_robin", "affinity")
        }
        assert digests["round_robin"] != digests["affinity"]
