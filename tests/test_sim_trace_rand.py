"""Tests for the trace recorder and the seeded RNG helpers."""

import pytest

from repro.sim.clock import Clock
from repro.sim.rand import SeededRandom
from repro.sim.trace import TraceRecorder


class TestTraceRecorder:
    def test_records_events(self):
        recorder = TraceRecorder()
        recorder.record("rom", "read", 0.0, 10.0, length=4)
        recorder.record("rom", "read", 10.0, 30.0, length=8)
        assert len(recorder) == 2
        assert recorder.total_time("rom", "read") == pytest.approx(30.0)

    def test_rejects_negative_duration(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError):
            recorder.record("x", "y", 10.0, 5.0)

    def test_disabled_recorder_drops_everything(self):
        recorder = TraceRecorder(enabled=False)
        assert recorder.record("x", "y", 0.0, 1.0) is None
        assert len(recorder) == 0

    def test_capacity_limits_retention(self):
        recorder = TraceRecorder(capacity=2)
        for index in range(4):
            recorder.record("c", "a", index, index + 1)
        assert len(recorder) == 2
        assert recorder.dropped == 2
        assert "dropped" in recorder.report()

    def test_fractional_times_round_to_integer_ns(self):
        # Regression: recorded times must be integer nanoseconds so traces
        # compare stably across platforms and serialise without float-repr
        # noise (the obs bridge re-exports them as span timestamps).
        recorder = TraceRecorder()
        event = recorder.record("rom", "read", 1.4, 2.6)
        assert (event.start_ns, event.end_ns) == (1, 3)
        assert isinstance(event.start_ns, int)
        assert isinstance(event.end_ns, int)
        assert event.duration_ns == 2
        # Rounding is monotonic: a non-negative float window stays valid.
        tiny = recorder.record("rom", "read", 4.5, 4.5000001)
        assert tiny.end_ns >= tiny.start_ns

    def test_span_context_manager(self):
        clock = Clock()
        recorder = TraceRecorder(clock)
        with recorder.span("pci", "burst", length=16) as span:
            clock.advance(50.0)
            span.annotate(status="ok")
        event = recorder.events[0]
        assert event.duration_ns == pytest.approx(50.0)
        assert event.attributes == {"length": 16, "status": "ok"}

    def test_span_requires_clock(self):
        with pytest.raises(RuntimeError):
            TraceRecorder().span("a", "b")

    def test_breakdown_and_filters(self):
        recorder = TraceRecorder()
        recorder.record("rom", "read", 0.0, 5.0)
        recorder.record("ram", "write", 5.0, 6.0)
        assert recorder.breakdown() == {"rom.read": 5.0, "ram.write": 1.0}
        assert len(recorder.by_component("rom")) == 1
        assert len(recorder.by_action("write")) == 1

    def test_describe_mentions_component(self):
        recorder = TraceRecorder()
        event = recorder.record("fpga", "configure", 0.0, 100.0, frames=3)
        assert "fpga.configure" in event.describe()


class TestSeededRandom:
    def test_reproducible(self):
        a = SeededRandom(42)
        b = SeededRandom(42)
        assert [a.integer(0, 100) for _ in range(10)] == [b.integer(0, 100) for _ in range(10)]

    def test_fork_is_deterministic_and_independent(self):
        a = SeededRandom(1).fork("x")
        b = SeededRandom(1).fork("x")
        c = SeededRandom(1).fork("y")
        sequence_a = [a.integer(0, 1000) for _ in range(5)]
        sequence_b = [b.integer(0, 1000) for _ in range(5)]
        sequence_c = [c.integer(0, 1000) for _ in range(5)]
        assert sequence_a == sequence_b
        assert sequence_a != sequence_c

    def test_fork_is_stable_across_processes(self):
        # fork() must not depend on the per-process string-hash salt: pinned
        # values guard the derived seeds so workload traces (and the
        # experiments consuming them) reproduce byte-identically run to run.
        assert SeededRandom(2005).fork("phase:0").seed == 2076257117
        assert SeededRandom(0).fork("payload:aes128").seed == 906407113

    def test_bytes_deterministic_length(self):
        rng = SeededRandom(3)
        data = rng.bytes(32)
        assert len(data) == 32
        assert SeededRandom(3).bytes(32) == data

    def test_bytes_negative_rejected(self):
        with pytest.raises(ValueError):
            SeededRandom().bytes(-1)

    def test_choice_and_shuffle_preserve_elements(self):
        rng = SeededRandom(5)
        items = list(range(20))
        assert rng.choice(items) in items
        shuffled = rng.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # input untouched

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            SeededRandom().choice([])

    def test_zipf_skew_prefers_low_indices(self):
        rng = SeededRandom(7)
        draws = [rng.zipf_index(10, skew=1.5) for _ in range(2000)]
        low = sum(1 for value in draws if value < 3)
        assert low / len(draws) > 0.6
        assert all(0 <= value < 10 for value in draws)

    def test_zipf_zero_skew_is_roughly_uniform(self):
        rng = SeededRandom(11)
        draws = [rng.zipf_index(4, skew=0.0) for _ in range(4000)]
        counts = [draws.count(index) for index in range(4)]
        assert min(counts) > 700

    def test_zipf_invalid_inputs(self):
        with pytest.raises(ValueError):
            SeededRandom().zipf_index(0)
        with pytest.raises(ValueError):
            SeededRandom().zipf_index(5, skew=-1)

    def test_exponential_mean(self):
        rng = SeededRandom(13)
        samples = [rng.exponential(100.0) for _ in range(4000)]
        assert 85.0 < sum(samples) / len(samples) < 115.0
        with pytest.raises(ValueError):
            rng.exponential(0.0)

    def test_geometric(self):
        rng = SeededRandom(17)
        samples = [rng.geometric(0.5) for _ in range(2000)]
        assert all(sample >= 1 for sample in samples)
        assert 1.7 < sum(samples) / len(samples) < 2.3
        with pytest.raises(ValueError):
            rng.geometric(0.0)
