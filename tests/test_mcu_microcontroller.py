"""Tests for the microcontroller's end-to-end request handling."""

import pytest

from repro.core.builder import build_coprocessor
from repro.core.config import SMALL_CONFIG
from repro.functions.bank import build_small_bank


@pytest.fixture
def system(small_coprocessor):
    """Expose the microcontroller of a small, downloaded co-processor."""
    return small_coprocessor.mcu, small_coprocessor


class TestEnsureLoaded:
    def test_first_load_is_a_miss_with_reconfiguration(self, system):
        mcu, copro = system
        outcome = mcu.ensure_loaded("crc32")
        assert not outcome.hit
        assert outcome.reconfiguration is not None
        assert outcome.reconfig_time_ns > 0
        assert copro.device.is_loaded("crc32")

    def test_second_load_is_a_hit(self, system):
        mcu, _ = system
        mcu.ensure_loaded("crc32")
        outcome = mcu.ensure_loaded("crc32")
        assert outcome.hit
        assert outcome.reconfiguration is None
        assert outcome.reconfig_time_ns == 0.0

    def test_minios_and_device_agree_on_residency(self, system):
        mcu, copro = system
        mcu.ensure_loaded("parity32")
        assert copro.minios.is_resident("parity32")
        assert copro.device.is_loaded("parity32")
        region = copro.device.region_of("parity32")
        assert set(copro.minios.table.entry("parity32").region) == set(region)

    def test_evict_command(self, system):
        mcu, copro = system
        mcu.ensure_loaded("crc32")
        mcu.evict("crc32")
        assert not copro.device.is_loaded("crc32")
        assert not copro.minios.is_resident("crc32")
        # Evicting something not resident is a harmless no-op.
        mcu.evict("crc32")

    def test_reset_clears_everything(self, system):
        mcu, copro = system
        mcu.ensure_loaded("crc32")
        mcu.ensure_loaded("parity32")
        mcu.reset()
        assert copro.loaded_functions() == []
        assert copro.minios.free_frames.free_count == copro.geometry.frame_count


class TestHandleExecute:
    def test_output_matches_reference_behaviour(self, system):
        mcu, copro = system
        data = bytes(range(48))
        outcome = mcu.handle_execute("crc32", data)
        assert outcome.output == copro.bank.by_name("crc32").behaviour(data)

    def test_breakdown_phases_sum_to_total(self, system):
        mcu, _ = system
        outcome = mcu.handle_execute("crc32", b"some data")
        assert outcome.total_time_ns == pytest.approx(sum(outcome.breakdown().values()), rel=1e-6)

    def test_hit_path_is_much_faster_than_miss_path(self, system):
        mcu, _ = system
        miss = mcu.handle_execute("parity32", bytes(4))
        hit = mcu.handle_execute("parity32", bytes(4))
        assert not miss.hit and hit.hit
        assert hit.total_time_ns < miss.total_time_ns / 5

    def test_ram_is_released_after_each_request(self, system):
        mcu, copro = system
        for index in range(5):
            mcu.handle_execute("crc32", bytes([index]) * 32)
        assert copro.ram.bytes_allocated == 0

    def test_empty_input_is_handled(self, system):
        mcu, copro = system
        outcome = mcu.handle_execute("crc32", b"")
        assert outcome.output == copro.bank.by_name("crc32").behaviour(b"")

    def test_unknown_function_raises(self, system):
        mcu, _ = system
        with pytest.raises(KeyError):
            mcu.handle_execute("ghost", b"")

    def test_outcome_recording_is_bounded(self, system):
        mcu, _ = system
        mcu.max_recorded_outcomes = 3
        for _ in range(6):
            mcu.handle_execute("crc32", b"abc")
        assert len(mcu.outcomes) == 3
        assert mcu.requests_handled == 6


class TestEvictionUnderPressure:
    def test_working_set_larger_than_fabric_triggers_evictions(self):
        # A fabric with very few frames forces the small bank to thrash.
        config = SMALL_CONFIG.with_overrides(fabric_columns=2, fabric_rows=16, clb_rows_per_frame=4)
        copro = build_coprocessor(config=config, bank=build_small_bank())
        names = ["crc32", "parity32", "adder8", "popcount8"]
        for _ in range(3):
            for name in names:
                data = bytes(copro.bank.by_name(name).spec.input_bytes)
                result = copro.execute(name, data)
                assert result.output == copro.bank.by_name(name).behaviour(data)
        assert copro.stats.evictions > 0
        # The free frame list and the device agree after all that churn.
        owned = sum(len(frames) for frames in copro.device.memory.owners().values())
        assert owned + copro.minios.free_frames.free_count == copro.geometry.frame_count
