"""Unit tests for the SLO engine, tail sampler and incident flight recorder.

Everything here drives the new :mod:`repro.obs.slo` / :mod:`repro.obs.tail`
/ :mod:`repro.obs.incident` machinery with synthetic feeds — no simulator —
plus one in-process integration that replays the E10 kill drill and checks
the whole chain (record stream → burn rate → alert → incident → retained
traces) while the schedule digest stays byte-identical.
"""

import json

import pytest

from repro.obs import (
    Alert,
    BurnWindow,
    FlightRecorder,
    Observability,
    SloEngine,
    SloSpec,
    TailSampler,
    incidents_fingerprint,
    incidents_json,
)
from repro.obs.context import Span, Tracer
from repro.obs.registry import MetricsRegistry


def availability_spec(**overrides):
    base = dict(
        objective=0.9,
        fast_ns=100.0,
        slow_ns=1_000.0,
        burn_threshold=2.0,
        min_events=4,
    )
    base.update(overrides)
    return SloSpec.availability("fleet.availability", **base)


class TestSloSpecValidation:
    def test_shorthands_build_valid_specs(self):
        spec = SloSpec.availability("fleet.availability", objective=0.99)
        assert spec.kind == "availability"
        assert spec.error_budget == pytest.approx(0.01)
        assert len(spec.windows) == 1
        latency = SloSpec.latency("fleet.latency.p95", threshold_ns=1_000.0)
        assert latency.threshold_ns == 1_000.0
        corruption = SloSpec.corruption("fleet.corruption")
        assert corruption.source == "fleet"

    def test_name_must_be_canonical(self):
        with pytest.raises(ValueError, match="naming convention"):
            SloSpec.availability("Fleet Availability!")

    def test_objective_must_leave_budget(self):
        for objective in (0.0, 1.0, 1.5):
            with pytest.raises(ValueError, match="objective"):
                SloSpec.availability("fleet.availability", objective=objective)

    def test_latency_requires_threshold_and_others_reject_it(self):
        with pytest.raises(ValueError, match="threshold_ns"):
            SloSpec("fleet.latency.p95", "latency", 0.95,
                    windows=(BurnWindow("burn", 100.0, 1_000.0, 2.0),))
        with pytest.raises(ValueError, match="threshold_ns"):
            SloSpec("fleet.availability", "availability", 0.99,
                    threshold_ns=5.0,
                    windows=(BurnWindow("burn", 100.0, 1_000.0, 2.0),))

    def test_burn_window_fast_must_be_shorter_than_slow(self):
        with pytest.raises(ValueError, match="shorter"):
            BurnWindow("burn", 1_000.0, 1_000.0, 2.0)
        with pytest.raises(ValueError, match="positive"):
            BurnWindow("burn", -1.0, 1_000.0, 2.0)
        with pytest.raises(ValueError, match="threshold"):
            BurnWindow("burn", 100.0, 1_000.0, 0.0)

    def test_engine_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine([availability_spec(), availability_spec()])


class TestBurnRateAlerting:
    def test_all_good_never_fires(self):
        engine = SloEngine([availability_spec()])
        for step in range(50):
            engine.on_fleet_completion(step * 10.0, 100.0, False)
        assert engine.alerts == []
        assert engine.status()[0]["alerting"] is False

    def test_fires_when_both_windows_burn_and_resolves_with_recovery(self):
        engine = SloEngine([availability_spec()])
        # Burn hard: every event bad -> burn = 1/0.1 = 10x in both windows.
        for step in range(10):
            engine.on_fleet_bad(step * 10.0)
        assert len(engine.alerts) == 1
        alert = engine.alerts[0]
        assert alert.slo == "fleet.availability"
        assert alert.active
        assert alert.burn_fast >= 2.0 and alert.burn_slow >= 2.0
        # Recovery: good events push the fast burn back under threshold
        # while the slow window still remembers the bad spell (hysteresis
        # is on the fast window only).
        for step in range(60):
            engine.on_fleet_completion(200.0 + step * 10.0, 100.0, False)
        assert not alert.active
        assert alert.resolved_ns is not None
        assert engine.active_alerts == []
        # No re-fire after resolution while healthy.
        assert len(engine.alerts) == 1

    def test_min_events_gates_the_fast_window(self):
        engine = SloEngine([availability_spec(min_events=8)])
        for step in range(5):  # enough burn, too few events
            engine.on_fleet_bad(step * 10.0)
        assert engine.alerts == []
        for step in range(5, 10):
            engine.on_fleet_bad(step * 10.0)
        assert len(engine.alerts) == 1

    def test_slow_window_vetoes_a_fast_blip(self):
        # A long healthy history keeps the slow burn low; a short bad burst
        # alone must not page.
        engine = SloEngine([availability_spec(min_events=2)])
        for step in range(90):
            engine.on_fleet_completion(step * 10.0, 100.0, False)
        for step in range(4):
            engine.on_fleet_bad(900.0 + step * 10.0)
        row = engine.status()[0]
        assert row["burn_fast"] > row["burn_slow"]
        assert engine.alerts == []

    def test_latency_and_corruption_judge_completions(self):
        engine = SloEngine(
            [
                SloSpec.latency(
                    "fleet.latency.p95",
                    threshold_ns=500.0,
                    objective=0.5,
                    fast_ns=100.0,
                    slow_ns=1_000.0,
                    burn_threshold=1.5,
                    min_events=4,
                ),
                SloSpec.corruption(
                    "fleet.corruption",
                    objective=0.5,
                    fast_ns=100.0,
                    slow_ns=1_000.0,
                    burn_threshold=1.5,
                    min_events=4,
                ),
            ]
        )
        for step in range(10):  # slow AND hazardous completions
            engine.on_fleet_completion(step * 10.0, 900.0, True)
        fired = sorted(alert.slo for alert in engine.alerts)
        assert fired == ["fleet.corruption", "fleet.latency.p95"]
        # Rejections are invisible to latency/corruption SLOs.
        before = len(engine.alerts)
        engine.on_fleet_bad(200.0)
        assert len(engine.alerts) == before

    def test_net_source_feeds_only_net_specs(self):
        engine = SloEngine(
            [
                availability_spec(),
                SloSpec.availability(
                    "net.availability",
                    objective=0.9,
                    source="net",
                    fast_ns=100.0,
                    slow_ns=1_000.0,
                    burn_threshold=2.0,
                    min_events=4,
                ),
            ]
        )
        for step in range(10):
            engine.on_net_bad(step * 10.0)
        assert [alert.slo for alert in engine.alerts] == ["net.availability"]

    def test_registry_counters_track_fire_and_resolve(self):
        registry = MetricsRegistry()
        engine = SloEngine([availability_spec()], registry=registry)
        for step in range(10):
            engine.on_fleet_bad(step * 10.0)
        for step in range(60):
            engine.on_fleet_completion(200.0 + step * 10.0, 100.0, False)
        snap = registry.snapshot()
        assert snap["slo.alerts"] == 1
        assert snap["slo.alerts.by_slo"] == {"fleet.availability": 1}
        assert snap["slo.alerts.resolved"] == 1
        assert snap["slo.burn.worst"] >= 2.0


def make_trace(tracer, trace_id, names_and_times, root_attrs=None):
    """Record a synthetic trace: children first, root (parent_id=None) last."""
    spans = []
    for index, (name, start, end) in enumerate(names_and_times[:-1]):
        spans.append(
            Span(name, trace_id, index + 2, 1, start, end, {})
        )
    name, start, end = names_and_times[-1]
    root = Span(name, trace_id, 1, None, start, end, dict(root_attrs or {}))
    spans.append(root)
    for span in spans:
        tracer.tail_sampler.offer(tracer, span)
    return root


class TestTailSampler:
    def _tracer(self, **kwargs):
        tracer = Tracer()
        tracer.tail_sampler = TailSampler(**kwargs)
        return tracer

    def test_boring_traces_are_discarded_interesting_kept(self):
        tracer = self._tracer(slow_ns=500.0)
        make_trace(tracer, 1, [("fleet.queue", 0, 10), ("fleet.request", 0, 100)],
                   root_attrs={"outcome": "completed"})
        make_trace(tracer, 2, [("fleet.queue", 0, 10), ("fleet.request", 0, 900)],
                   root_attrs={"outcome": "completed"})
        make_trace(tracer, 3, [("fleet.request", 0, 50)],
                   root_attrs={"outcome": "rejected"})
        sampler = tracer.tail_sampler
        assert sampler.retained_traces == 2
        assert sampler.discarded_traces == 1
        assert sampler.keep_reasons == {"error": 1, "slow": 1}
        # Kept traces were committed whole, in finalize order.
        assert [span.trace_id for span in tracer.spans] == [2, 2, 3]

    def test_error_marker_span_flags_the_trace(self):
        tracer = self._tracer()
        make_trace(tracer, 7, [("fleet.failover", 0, 5), ("fleet.request", 0, 50)],
                   root_attrs={"outcome": "completed"})
        assert tracer.tail_sampler.keep_reasons == {"error": 1}

    def test_incident_overlap_retention(self):
        tracer = self._tracer()
        tracer.tail_sampler.incident_windows = lambda: [(40.0, 60.0)]
        retained = []
        tracer.tail_sampler.on_retain = (
            lambda trace_id, spans, reason, root: retained.append((trace_id, reason))
        )
        make_trace(tracer, 1, [("fleet.request", 50, 55)],
                   root_attrs={"outcome": "completed"})  # inside the window
        make_trace(tracer, 2, [("fleet.request", 100, 110)],
                   root_attrs={"outcome": "completed"})  # outside
        assert retained == [(1, "incident")]
        assert tracer.tail_sampler.discarded_traces == 1

    def test_span_budget_drops_whole_traces(self):
        tracer = self._tracer(span_budget=3)
        make_trace(tracer, 1, [("fleet.queue", 0, 1), ("fleet.request", 0, 10)],
                   root_attrs={"outcome": "rejected"})
        make_trace(tracer, 2, [("fleet.queue", 0, 1), ("fleet.request", 0, 10)],
                   root_attrs={"outcome": "rejected"})
        sampler = tracer.tail_sampler
        assert sampler.retained_traces == 1
        assert sampler.budget_dropped_traces == 1
        # Never a partial tree: both spans of trace 1, none of trace 2.
        assert [span.trace_id for span in tracer.spans] == [1, 1]

    def test_max_spans_per_trace_truncates_while_buffering(self):
        tracer = self._tracer(max_spans_per_trace=2)
        children = [("fleet.queue", 0, i + 1) for i in range(4)]
        make_trace(tracer, 1, children + [("fleet.request", 0, 10)],
                   root_attrs={"outcome": "rejected"})
        sampler = tracer.tail_sampler
        assert sampler.truncated_spans == 3  # 3 of 5 spans over the cap
        assert len(tracer.spans) == 2

    def test_flush_judges_rootless_traces(self):
        tracer = self._tracer()
        sampler = tracer.tail_sampler
        # A failover marker lands but the run is cut before the root.
        sampler.offer(tracer, Span("fleet.failover", 9, 2, 1, 0, 5, {}))
        assert sampler.pending_traces == 1
        sampler.flush(tracer)
        assert sampler.pending_traces == 0
        assert sampler.retained_traces == 1
        assert sampler.keep_reasons == {"error": 1}

    def test_summary_is_sorted_and_complete(self):
        tracer = self._tracer(slow_ns=500.0)
        make_trace(tracer, 1, [("fleet.request", 0, 900)],
                   root_attrs={"outcome": "completed"})
        summary = tracer.tail_sampler.summary()
        assert summary == {
            "retained_traces": 1,
            "retained_spans": 1,
            "discarded_traces": 0,
            "budget_dropped_traces": 0,
            "truncated_spans": 0,
            "keep_reasons": {"slow": 1},
        }


def fire_alert(recorder, now_ns=1_000, slo="fleet.availability"):
    alert = Alert(slo, "burn", now_ns, 5.0, 3.0)
    recorder.on_alert(alert, now_ns)
    return alert


class TestFlightRecorder:
    def test_alert_seeds_timeline_from_the_rings(self):
        recorder = FlightRecorder(lookback_ns=2_000.0)
        recorder.on_fault("kill", "card0", 500.0)
        recorder.on_span(Span("order.heal", -1, 1, None, 600, 700, {"card": "card0"}))
        recorder.on_span(Span("fleet.queue", -1, 2, 1, 0, 10, {}))  # not a marker
        recorder.on_fault("upset", "card1", 900.0, frame="f(0,1)", effective=True)
        fire_alert(recorder)
        assert len(recorder.incidents) == 1
        timeline = recorder.incidents[0].timeline
        kinds = [(event["t_ns"], event["kind"]) for event in timeline]
        assert kinds == [
            (500, "fault"),
            (700, "span"),
            (900, "fault"),
            (1_000, "alert"),
        ]
        assert timeline[2]["frame"] == "f(0,1)"
        assert timeline[2]["effective"] is True

    def test_lookback_excludes_stale_ring_entries(self):
        recorder = FlightRecorder(lookback_ns=100.0)
        recorder.on_fault("kill", "card0", 10.0)  # far before the horizon
        fire_alert(recorder, now_ns=1_000)
        kinds = [event["kind"] for event in recorder.incidents[0].timeline]
        assert kinds == ["alert"]

    def test_open_incident_receives_live_events_and_close_stops_them(self):
        recorder = FlightRecorder(lookback_ns=100.0)
        alert = fire_alert(recorder, now_ns=1_000)
        recorder.on_fault("wedge", "card1", 1_100.0, duration_ns=50)
        recorder.on_resolved(alert, 1_200)
        recorder.on_fault("kill", "card0", 1_300.0)  # after close: ring only
        incident = recorder.incidents[0]
        assert not incident.open
        kinds = [event["kind"] for event in incident.timeline]
        assert kinds == ["alert", "fault", "resolved"]
        assert incident.closed_ns == 1_200

    def test_metric_deltas_capture_what_moved(self):
        registry = MetricsRegistry()
        counter = registry.counter("fleet.failovers")
        steady = registry.counter("fleet.heal.orders")
        steady.inc()
        recorder = FlightRecorder(registry=registry)
        alert = fire_alert(recorder)
        counter.inc()
        counter.inc()
        recorder.on_resolved(alert, 2_000)
        deltas = recorder.incidents[0].metric_deltas
        assert deltas["fleet.failovers"] == 2
        assert "fleet.heal.orders" not in deltas  # did not move
        # incident.opened moved (the recorder's own counter) — that's fine,
        # it is numeric registry state like any other.
        assert registry.snapshot()["incident.opened"] == 1

    def test_max_incidents_overflow_is_counted_not_grown(self):
        recorder = FlightRecorder(max_incidents=1)
        fire_alert(recorder, slo="fleet.availability")
        fire_alert(recorder, now_ns=2_000, slo="fleet.latency.p95")
        assert len(recorder.incidents) == 1
        assert recorder.overflowed_alerts == 1

    def test_retained_trace_attaches_only_on_overlap(self):
        recorder = FlightRecorder(lookback_ns=100.0)
        alert = fire_alert(recorder, now_ns=1_000)
        recorder.on_resolved(alert, 2_000)
        span_in = Span("fleet.request", 5, 1, None, 950, 1_500,
                       {"outcome": "rejected"})
        recorder.on_retained_trace(5, [span_in], "error", span_in)
        span_out = Span("fleet.request", 6, 1, None, 3_000, 3_100,
                        {"outcome": "rejected"})
        recorder.on_retained_trace(6, [span_out], "error", span_out)
        traces = recorder.incidents[0].traces
        assert [trace["trace_id"] for trace in traces] == [5]
        assert traces[0]["reason"] == "error"
        assert traces[0]["outcome"] == "rejected"

    def test_flush_closes_open_incidents_with_run_end(self):
        recorder = FlightRecorder()
        fire_alert(recorder)
        recorder.flush(9_000.0)
        incident = recorder.incidents[0]
        assert incident.closed_ns == 9_000
        assert incident.timeline[-1]["kind"] == "run_end"
        assert recorder.incident_windows() == [
            (1_000 - recorder.lookback_ns, 9_000)
        ]

    def test_incident_json_is_canonical_and_fingerprinted(self):
        recorder = FlightRecorder(lookback_ns=100.0)
        recorder.on_fault("kill", "card0", 950.0)
        alert = fire_alert(recorder)
        recorder.on_resolved(alert, 2_000)
        text = incidents_json(recorder)
        payload = json.loads(text)
        assert payload["overflowed_alerts"] == 0
        assert payload["incidents"][0]["slo"] == "fleet.availability"
        assert text == incidents_json(recorder)  # stable
        assert len(incidents_fingerprint(recorder)) == 16


class TestObservabilityWiring:
    def test_install_slos_wires_engine_recorder_and_tail(self):
        obs = Observability(tail=TailSampler())
        obs.install_slos([availability_spec()])
        assert obs.slo_engine is not None
        assert obs.recorder is not None
        assert obs.slo_engine.on_alert is not None
        assert obs.tracer.tail_sampler is obs.tail
        assert obs.tail.incident_windows is not None
        assert obs.tail.on_retain is not None
        with pytest.raises(ValueError):
            obs.install_slos([availability_spec()])  # already installed

    def test_disabled_observability_rejects_slos(self):
        with pytest.raises(ValueError):
            Observability(enabled=False).install_slos([availability_spec()])

    def test_builder_creates_observability_for_bare_slos(self):
        from repro.core.builder import build_fleet
        from repro.core.config import SMALL_CONFIG
        from repro.functions.bank import build_small_bank

        fleet = build_fleet(
            cards=1,
            config=SMALL_CONFIG,
            bank=build_small_bank(),
            slos=[availability_spec()],
        )
        assert fleet.obs is not None
        assert fleet.stats.slo_engine is fleet.obs.slo_engine

    def test_frontdoor_slos_require_an_enabled_observability(self):
        from repro.core.builder import build_fleet, build_frontdoor
        from repro.core.config import SMALL_CONFIG
        from repro.functions.bank import build_small_bank

        fleet = build_fleet(cards=1, config=SMALL_CONFIG, bank=build_small_bank())
        with pytest.raises(ValueError, match="enabled Observability"):
            build_frontdoor(
                fleet,
                slos=[availability_spec()],
            )


class TestKillDrillIntegration:
    """In-process E10 replay: the whole chain, plus digest neutrality."""

    def _run(self, slos):
        from repro.core.builder import build_fleet
        from repro.core.config import CoprocessorConfig
        from repro.faults import FaultSpec
        from repro.functions.bank import build_default_bank
        from repro.workloads import default_tenant_mix, multi_tenant_trace

        bank = build_default_bank()
        functions = ["sha1", "crc32", "fir16", "strmatch",
                     "bitonic64", "parity32", "adder8", "popcount8"]
        subset = bank.subset(functions)
        trace = multi_tenant_trace(
            subset,
            default_tenant_mix(subset, tenants=4, skew=1.2),
            length=100,
            mean_interarrival_ns=20_000.0,
            seed=4,
        )
        spec = FaultSpec(
            process="targeted",
            upset_rate_per_s=2_000.0,
            card_kill_times_ns=((trace.duration_ns * 0.35, 0),),
            seed=4,
        )
        obs = None
        if slos is not None:
            obs = Observability(tail=TailSampler(slow_ns=300_000.0))
        fleet = build_fleet(
            cards=2,
            config=CoprocessorConfig(
                fabric_columns=8, fabric_rows=32, clb_rows_per_frame=8, seed=4
            ),
            bank=bank,
            functions=functions,
            policy="affinity",
            queue_depth=4,
            fault_tolerance=True,
            scrub_period_ns=100_000.0,
            fault_spec=spec,
            observability=obs,
            slos=slos,
        )
        stats = fleet.run(trace)
        return fleet, stats, obs

    def test_kill_drill_fires_availability_and_records_the_story(self):
        slos = [
            SloSpec.availability(
                "fleet.availability",
                objective=0.99,
                fast_ns=200_000.0,
                slow_ns=1_000_000.0,
                burn_threshold=5.0,
                min_events=5,
            ),
        ]
        _, bare_stats, _ = self._run(None)
        fleet, stats, obs = self._run(slos)
        # Digest neutrality: SLOs + tail sampling + flight recorder change
        # nothing about the schedule.
        assert stats.schedule_digest() == bare_stats.schedule_digest()
        # The availability SLO fired and resolved on the simulated clock.
        assert [a.slo for a in obs.alerts] == ["fleet.availability"]
        assert obs.alerts[0].resolved_ns is not None
        # The incident holds the kill, the heal order and failed traces.
        incident = obs.incidents[0]
        assert any(
            e["kind"] == "fault" and e["fault"] == "kill" for e in incident.timeline
        )
        assert any(
            e["kind"] == "span" and e["span"] == "order.heal"
            for e in incident.timeline
        )
        assert any(t["reason"] == "error" for t in incident.traces)
        # Registry surfaced the whole chain.
        snap = obs.registry.snapshot()
        assert snap["slo.alerts"] == 1
        assert snap["incident.opened"] == 1
        assert snap["obs.tail.retained_traces"] == obs.tail.retained_traces > 0
