"""Equivalence of the compiled netlist executor against the seed evaluator.

The compiled :class:`NetlistExecutor` must produce identical
``(output_bytes, cycles)`` to :class:`ReferenceNetlistExecutor` on any placed
netlist — combinational or clocked — for any input.  These property tests
drive both through randomized netlists, the generator-built netlists, and the
bank's real functions — including functions whose frames have been
*relocated* (defragmented in place, or migrated to another card), so frame
relocation can never silently change function semantics.
"""

import random

import pytest

from repro.core.builder import build_coprocessor
from repro.core.config import SMALL_CONFIG
from repro.core.host import build_host_system
from repro.fpga.executor import NetlistExecutor, ReferenceNetlistExecutor
from repro.fpga.geometry import TEST_GEOMETRY
from repro.fpga.lut import LookUpTable
from repro.fpga.netlist import Netlist
from repro.functions.bank import build_default_bank, build_small_bank
from repro.functions.netgen import (
    build_adder_netlist,
    build_parity_netlist,
    build_popcount_netlist,
)


def _random_netlist(rng: random.Random, index: int, clocked: bool) -> Netlist:
    """A random DAG of LUTs (optionally with flip-flop feedback loops)."""
    netlist = Netlist(f"random-{index}")
    nets = [netlist.add_input(f"i{j}") for j in range(rng.randrange(1, 9))]
    flip_flop_data_nets = []
    if clocked:
        for j in range(rng.randrange(1, 4)):
            data_net = f"d{j}"
            nets.append(netlist.add_flip_flop(f"ff{j}", data_net=data_net))
            flip_flop_data_nets.append(data_net)
    for j in range(rng.randrange(1, 25)):
        width = rng.randrange(1, 5)
        fanin = [rng.choice(nets) for _ in range(width)]
        nets.append(
            netlist.add_lut(f"l{j}", LookUpTable(width, rng.randrange(1 << (1 << width))), fanin)
        )
    for data_net in flip_flop_data_nets:
        if netlist.nets[data_net].driver is None:
            source = rng.choice([net for net in nets if net != data_net])
            netlist.add_lut(
                f"drv-{data_net}", LookUpTable(1, rng.randrange(4)), [source], output_net=data_net
            )
    for net in rng.sample(nets, rng.randrange(1, min(8, len(nets)) + 1)):
        netlist.add_output(net)
    return netlist


def _assert_equivalent(netlist: Netlist, cycles: int, rng: random.Random, runs: int = 6):
    compiled = NetlistExecutor(netlist, cycles)
    reference = ReferenceNetlistExecutor(netlist, cycles)
    input_bytes = (len(netlist.inputs) + 7) // 8
    for _ in range(runs):
        data = bytes(rng.randrange(256) for _ in range(input_bytes))
        assert compiled.run(data) == reference.run(data)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_combinational(self, seed):
        rng = random.Random(1000 + seed)
        for index in range(12):
            _assert_equivalent(_random_netlist(rng, index, clocked=False), 1, rng)

    @pytest.mark.parametrize("seed", range(8))
    def test_clocked_multi_cycle(self, seed):
        rng = random.Random(2000 + seed)
        for index in range(12):
            cycles = rng.randrange(1, 6)
            _assert_equivalent(_random_netlist(rng, index, clocked=True), cycles, rng)


class TestGeneratorNetlistEquivalence:
    @pytest.mark.parametrize(
        "builder,arg",
        [
            (build_adder_netlist, 8),
            (build_adder_netlist, 16),
            (build_parity_netlist, 32),
            (build_popcount_netlist, 8),
        ],
    )
    def test_exhaustive_small_inputs(self, builder, arg):
        netlist = builder(TEST_GEOMETRY, arg)
        compiled = NetlistExecutor(netlist)
        reference = ReferenceNetlistExecutor(netlist)
        rng = random.Random(7)
        input_bytes = (len(netlist.inputs) + 7) // 8
        for _ in range(64):
            data = bytes(rng.randrange(256) for _ in range(input_bytes))
            assert compiled.run(data) == reference.run(data)

    def test_bank_netlist_functions_match_reference_behaviour(self):
        geometry = TEST_GEOMETRY
        rng = random.Random(5)
        for function in build_default_bank():
            netlist = function.cached_netlist(geometry)
            if netlist is None:
                continue
            executor = function.executor(geometry)
            assert isinstance(executor, NetlistExecutor)
            reference = ReferenceNetlistExecutor(netlist)
            data = bytes(rng.randrange(256) for _ in range(function.spec.input_bytes))
            assert executor.run(data) == reference.run(data)


class TestRelocatedFunctionEquivalence:
    """Relocation must never change semantics: the differential gate.

    Both relocation paths — in-card defragmentation and cross-card
    migration — are equivalence-fuzzed against the seed evaluator *after*
    the move, through the full card execute path (staging, feed, fabric,
    collect), not just the bound executor object.
    """

    def _netlist_functions(self, coprocessor):
        return [
            function
            for function in coprocessor.bank
            if function.cached_netlist(coprocessor.geometry) is not None
        ]

    def _assert_card_matches_reference(self, coprocessor, function, rng, runs=6):
        netlist = function.cached_netlist(coprocessor.geometry)
        reference = ReferenceNetlistExecutor(netlist)
        for _ in range(runs):
            data = bytes(rng.randrange(256) for _ in range(function.spec.input_bytes))
            assert coprocessor.execute(function.name, data).output == reference.run(data)[0]

    def test_defragmented_functions_match_reference(self):
        coprocessor = build_coprocessor(
            config=SMALL_CONFIG.with_overrides(seed=29), bank=build_small_bank()
        )
        coprocessor.enable_defrag()
        names = coprocessor.bank.names()
        for name in names:
            coprocessor.preload(name)
        # Evict the multi-frame function at the front: the remaining ones sit
        # behind a hole, so compaction must relocate every one of them.
        coprocessor.evict(names[0])
        survivors = names[1:]
        regions_before = {
            name: list(coprocessor.device.region_of(name)) for name in survivors
        }
        result = coprocessor.defrag()
        assert result.moves > 0  # the pass actually relocated something
        moved = [
            name
            for name in survivors
            if list(coprocessor.device.region_of(name)) != regions_before[name]
        ]
        assert moved
        rng = random.Random(31)
        for function in self._netlist_functions(coprocessor):
            self._assert_card_matches_reference(coprocessor, function, rng)

    def test_migrated_functions_match_reference(self):
        source = build_host_system(
            build_coprocessor(config=SMALL_CONFIG.with_overrides(seed=29), bank=build_small_bank())
        )
        dest = build_host_system(
            build_coprocessor(config=SMALL_CONFIG.with_overrides(seed=37), bank=build_small_bank())
        )
        # Fragment the destination first so restores land on shifted frames.
        dest.preload("crc32")
        dest.preload("adder8")
        dest.evict("crc32")
        rng = random.Random(41)
        for function in self._netlist_functions(source.coprocessor):
            source.preload(function.name)
            source.migrate_function_to(function.name, dest)
            assert dest.card.is_resident(function.name)
            self._assert_card_matches_reference(dest.coprocessor, function, rng)

    def test_migration_roundtrip_back_to_source_matches_reference(self):
        cards = [
            build_host_system(
                build_coprocessor(
                    config=SMALL_CONFIG.with_overrides(seed=seed), bank=build_small_bank()
                )
            )
            for seed in (43, 47)
        ]
        rng = random.Random(53)
        function = next(
            f for f in self._netlist_functions(cards[0].coprocessor)
        )
        cards[0].preload(function.name)
        cards[0].migrate_function_to(function.name, cards[1])
        cards[1].migrate_function_to(function.name, cards[0])
        assert cards[0].card.is_resident(function.name)
        self._assert_card_matches_reference(cards[0].coprocessor, function, rng)


class TestCompiledExecutorState:
    def test_run_resets_state_between_calls(self):
        netlist = Netlist("toggle")
        enable = netlist.add_input("enable")
        q = netlist.add_flip_flop("ff", "next")
        netlist.add_lut("xor", LookUpTable.logic_xor(2), [q, enable], output_net="next")
        netlist.add_output(q)
        compiled = NetlistExecutor(netlist, cycles=3)
        first = compiled.run(bytes([1]))
        assert compiled.run(bytes([1])) == first

    def test_step_matches_reference_sequence(self):
        netlist = Netlist("toggle")
        enable = netlist.add_input("enable")
        q = netlist.add_flip_flop("ff", "next")
        netlist.add_lut("xor", LookUpTable.logic_xor(2), [q, enable], output_net="next")
        netlist.add_output(q)
        compiled = NetlistExecutor(netlist)
        reference = ReferenceNetlistExecutor(netlist)
        for enable_bit in (True, True, False, True):
            fast = compiled.step({"enable": enable_bit})
            slow = reference.step({"enable": enable_bit})
            for net, value in slow.items():
                assert fast[net] == value

    def test_executor_memoised_per_geometry(self):
        function = next(
            f for f in build_default_bank() if f.cached_netlist(TEST_GEOMETRY) is not None
        )
        assert function.executor(TEST_GEOMETRY) is function.executor(TEST_GEOMETRY)

    def test_bank_prepare_populates_memos(self):
        bank = build_default_bank()
        bank.prepare(TEST_GEOMETRY)
        for function in bank:
            assert TEST_GEOMETRY in function._executor_cache
            assert TEST_GEOMETRY in function._frames_cache
