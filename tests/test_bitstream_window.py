"""Tests for windowed compression and streaming decompression."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstream.codecs import CodecError, FrameDifferentialCodec, RunLengthCodec, get_codec
from repro.bitstream.window import CompressedImage, WindowedCompressor, WindowedDecompressor


def _image(data=b"\x00" * 4000, window=256, codec=None):
    codec = codec or RunLengthCodec()
    return WindowedCompressor(codec, window).compress(data), data


class TestWindowedCompressor:
    def test_window_count_and_lengths(self):
        image, data = _image(b"\x07" * 1000, window=256)
        assert image.window_count == 4
        assert image.original_length == 1000
        assert image.window_bytes == 256

    def test_empty_input(self):
        image, _ = _image(b"", window=128)
        assert image.window_count == 0
        assert WindowedDecompressor(image).decompress_all() == b""

    def test_invalid_window_size(self):
        with pytest.raises(ValueError):
            WindowedCompressor(RunLengthCodec(), 0)

    def test_compression_ratio_reported(self):
        image, data = _image(b"\x00" * 8000, window=512)
        assert image.compression_ratio > 4.0
        assert image.stored_length < len(data)


class TestWindowedDecompressor:
    def test_streaming_matches_original(self):
        data = bytes((index * 7) % 251 for index in range(3000))
        image, _ = _image(data, window=512)
        decompressor = WindowedDecompressor(image)
        windows = list(decompressor.windows())
        assert b"".join(windows) == data
        assert all(len(window) <= 512 for window in windows)

    def test_context_dependent_codec_streams_correctly(self):
        frame = bytes([3, 1, 4, 1, 5, 9, 2, 6] * 32)
        data = frame * 10
        codec = FrameDifferentialCodec(frame_size=len(frame))
        image = WindowedCompressor(codec, window_bytes=len(frame)).compress(data)
        assert WindowedDecompressor(image, codec).decompress_all() == data

    def test_codec_mismatch_rejected(self):
        image, _ = _image()
        with pytest.raises(CodecError):
            WindowedDecompressor(image, get_codec("lz77"))

    @given(data=st.binary(max_size=2000), window=st.integers(min_value=16, max_value=512))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, data, window):
        image = WindowedCompressor(RunLengthCodec(), window).compress(data)
        assert WindowedDecompressor(image).decompress_all() == data


class TestCompressedImageSerialisation:
    def test_round_trip(self):
        image, _ = _image(bytes(range(256)) * 8, window=128)
        rebuilt = CompressedImage.from_bytes(image.to_bytes())
        assert rebuilt.codec_name == image.codec_name
        assert rebuilt.windows == image.windows
        assert rebuilt.original_length == image.original_length
        assert rebuilt.window_bytes == image.window_bytes

    def test_corruption_detected(self):
        image, _ = _image(bytes(range(256)) * 8, window=128)
        data = bytearray(image.to_bytes())
        data[-3] ^= 0xFF
        with pytest.raises(CodecError):
            CompressedImage.from_bytes(bytes(data))

    def test_truncation_detected(self):
        image, _ = _image()
        data = image.to_bytes()
        with pytest.raises(CodecError):
            CompressedImage.from_bytes(data[:-4])

    def test_bad_magic_detected(self):
        image, _ = _image()
        data = bytearray(image.to_bytes())
        data[0:4] = b"NOPE"
        with pytest.raises(CodecError):
            CompressedImage.from_bytes(bytes(data))

    def test_stored_length_matches_serialisation(self):
        image, _ = _image(bytes(range(100)) * 10, window=200)
        assert image.stored_length == len(image.to_bytes())
