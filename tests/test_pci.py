"""Tests for the PCI model: config space, bus, devices, DMA and the bridge."""

import pytest

from repro.pci.bridge import HostBridge
from repro.pci.bus import PciBus, PciBusError, PciBusTiming
from repro.pci.config_space import BaseAddressRegister, PciConfigSpace
from repro.pci.device import PciDevice, PciFunctionInterface
from repro.pci.dma import DmaDescriptor, DmaEngine
from repro.pci.transaction import PciTransaction, TransactionKind
from repro.sim.clock import Clock


class TestConfigSpace:
    def test_bar_validation(self):
        with pytest.raises(ValueError):
            BaseAddressRegister(7, 4096)
        with pytest.raises(ValueError):
            BaseAddressRegister(0, 1000)  # not a power of two

    def test_bar_contains_and_offset(self):
        bar = BaseAddressRegister(0, 4096, base_address=0x1000)
        assert bar.contains(0x1000) and bar.contains(0x1FFF)
        assert not bar.contains(0x2000)
        assert bar.offset_of(0x1004) == 4
        with pytest.raises(ValueError):
            bar.offset_of(0x3000)

    def test_decode_requires_memory_enable(self):
        space = PciConfigSpace(bars=[BaseAddressRegister(0, 4096)])
        space.assign_bar(0, 0x10000)
        assert space.decode(0x10000) is None
        space.enable_memory()
        assert space.decode(0x10000).index == 0

    def test_bar_alignment_enforced(self):
        space = PciConfigSpace(bars=[BaseAddressRegister(0, 4096)])
        with pytest.raises(ValueError):
            space.assign_bar(0, 0x1001)
        with pytest.raises(KeyError):
            space.assign_bar(3, 0x1000)

    def test_duplicate_bar_rejected(self):
        space = PciConfigSpace(bars=[BaseAddressRegister(0, 4096)])
        with pytest.raises(ValueError):
            space.add_bar(BaseAddressRegister(0, 4096))


class TestTransactions:
    def test_write_payload_length_checked(self):
        with pytest.raises(ValueError):
            PciTransaction(TransactionKind.MEMORY_WRITE, 0, 8, b"abc")

    def test_direction_flags(self):
        read = PciTransaction(TransactionKind.MEMORY_READ, 0, 4)
        write = PciTransaction(TransactionKind.MEMORY_WRITE, 0, 3, b"abc")
        assert read.is_read and not read.is_write
        assert write.is_write and not write.is_read

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            PciTransaction(TransactionKind.MEMORY_READ, -1, 4)


class TestBusTiming:
    def test_time_scales_with_length(self):
        timing = PciBusTiming()
        assert timing.time_ns(4) < timing.time_ns(256)
        assert timing.cycles_for(0) == timing.arbitration_cycles + timing.address_phase_cycles + timing.wait_states_per_burst + timing.turnaround_cycles

    def test_bandwidth(self):
        timing = PciBusTiming(clock_hz=33e6, bus_width_bytes=4)
        assert timing.bandwidth_mbytes_per_s() == pytest.approx(132.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PciBusTiming(clock_hz=0)
        with pytest.raises(ValueError):
            PciBusTiming(bus_width_bytes=0)


def _system(window_bytes=4096):
    clock = Clock()
    bus = PciBus(clock=clock)
    device = PciDevice("card", window_bar_size=window_bytes)
    bus.attach(device)
    bridge = HostBridge(bus)
    bridge.enumerate()
    return clock, bus, device, bridge


class TestBusAndDevice:
    def test_master_abort_when_no_device_claims(self):
        bus = PciBus()
        with pytest.raises(PciBusError):
            bus.read(0xDEAD0000, 4)

    def test_master_abort_charges_no_bus_time(self):
        # Routing happens before the clock advances: a transaction nobody
        # claims must not consume bus time or count toward statistics.
        bus = PciBus()
        before = bus.clock.now
        with pytest.raises(PciBusError):
            bus.read(0xDEAD0000, 4)
        assert bus.clock.now == before
        assert bus.busy_time_ns == 0.0
        assert bus.transactions_completed == 0
        assert bus.bytes_transferred == 0

    def test_register_write_and_read_through_bus(self):
        _, bus, device, bridge = _system()
        bridge.write_register("card", 0x10, 0xCAFEBABE)
        assert device.interface.read_register(0x10) == 0xCAFEBABE
        assert bridge.read_register("card", 0x10) == 0xCAFEBABE

    def test_window_write_and_read(self):
        _, _, device, bridge = _system()
        bridge.write_window("card", 8, b"payload")
        assert device.interface.read_window(8, 7) == b"payload"
        assert bridge.read_window("card", 8, 7) == b"payload"

    def test_register_hook_fires(self):
        _, _, device, bridge = _system()
        seen = []
        device.interface.on_register_write(0x00, lambda value: seen.append(value))
        bridge.write_register("card", 0x00, 7)
        assert seen == [7]

    def test_clock_advances_per_transaction(self):
        clock, bus, _, bridge = _system()
        before = clock.now
        bridge.write_window("card", 0, b"\x00" * 64)
        assert clock.now > before
        assert bus.transactions_completed >= 1
        assert bus.bytes_transferred >= 64

    def test_interface_bounds_checked(self):
        interface = PciFunctionInterface(register_bytes=16, window_bytes=32)
        with pytest.raises(ValueError):
            interface.read_register(20)
        with pytest.raises(ValueError):
            interface.read_register(3)  # unaligned
        with pytest.raises(ValueError):
            interface.write_window(30, b"abcdef")

    def test_bus_utilisation(self):
        clock, bus, _, bridge = _system()
        bridge.write_window("card", 0, b"\x00" * 256)
        assert 0.0 < bus.utilisation() <= 1.0


class TestDma:
    def test_dma_to_and_from_card(self):
        _, bus, device, bridge = _system(window_bytes=8192)
        payload = bytes((index * 31) % 256 for index in range(2000))
        completion = bridge.dma_to_card("card", 0, payload)
        assert completion.transactions == -(-2000 // bridge.dma.max_burst_bytes)
        assert device.interface.read_window(0, 2000) == payload
        readback = bridge.dma_from_card("card", 0, 2000)
        assert readback.data == payload
        assert bridge.dma.bytes_moved == 4000

    def test_dma_descriptor_validation(self):
        with pytest.raises(ValueError):
            DmaDescriptor(card_address=0, length=-1, to_card=False)
        with pytest.raises(ValueError):
            DmaDescriptor(card_address=0, length=4, to_card=True, host_buffer=b"xy")

    def test_dma_engine_validation(self):
        bus = PciBus()
        with pytest.raises(ValueError):
            DmaEngine(bus, max_burst_bytes=0)
        with pytest.raises(ValueError):
            DmaEngine(bus, setup_time_ns=-1)

    def test_dma_faster_than_pio_for_large_transfers(self):
        # DMA bursts amortise per-transaction overhead compared to 4-byte PIO.
        clock_dma = Clock()
        bus_dma = PciBus(clock=clock_dma)
        device_dma = PciDevice("card", window_bar_size=65536)
        bus_dma.attach(device_dma)
        bridge_dma = HostBridge(bus_dma)
        bridge_dma.enumerate()
        payload = b"\x55" * 4096
        bridge_dma.dma_to_card("card", 0, payload)
        dma_time = clock_dma.now

        clock_pio = Clock()
        bus_pio = PciBus(clock=clock_pio)
        device_pio = PciDevice("card", window_bar_size=65536)
        bus_pio.attach(device_pio)
        bridge_pio = HostBridge(bus_pio)
        bridge_pio.enumerate()
        for offset in range(0, 4096, 4):
            bridge_pio.write_window("card", offset, payload[offset : offset + 4])
        assert dma_time < clock_pio.now


class TestBridgeEnumeration:
    def test_bases_are_assigned_and_aligned(self):
        _, _, device, bridge = _system()
        register_base = bridge.register_base("card")
        window_base = bridge.window_base("card")
        assert register_base % 4096 == 0
        assert window_base % 4096 == 0
        assert register_base != window_base
        assert device.config_space.memory_enabled

    def test_unknown_device_lookup(self):
        _, _, _, bridge = _system()
        with pytest.raises(KeyError):
            bridge.register_base("ghost")
