"""Every script in examples/ must import and run in tiny mode.

Examples are documentation that executes; without coverage they rot the
moment an API changes.  Each example exposes ``main(tiny: bool)`` so this
smoke test can drive the full script cheaply — discovery is by glob, so a new
example is covered (or fails loudly) the day it lands.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_PATHS = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_is_populated():
    assert len(EXAMPLE_PATHS) >= 6
    assert EXAMPLES_DIR / "fleet_gateway.py" in EXAMPLE_PATHS
    assert EXAMPLES_DIR / "rebalance_demo.py" in EXAMPLE_PATHS


@pytest.mark.parametrize("path", EXAMPLE_PATHS, ids=lambda path: path.stem)
def test_example_runs_in_tiny_mode(path, capsys):
    module = load_example(path)
    assert hasattr(module, "main"), f"{path.name} must expose main(tiny=...)"
    module.main(tiny=True)
    output = capsys.readouterr().out
    assert output.strip(), f"{path.name} printed nothing"
