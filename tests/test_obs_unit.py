"""Unit tests for the observability layer: tracer, registry, exporters, names.

The determinism-critical behaviours (no RNG, integer-ns timestamps, seeded
sampling, capacity accounting, byte-stable exports) each get a direct test
here; the end-to-end properties over a live front door live in
``test_obs_properties`` and ``test_obs_determinism``.
"""

import json
import pickle

import pytest

from repro.obs import (
    MetricsRegistry,
    Observability,
    Tracer,
    chrome_trace_json,
    metrics_snapshot_json,
    names,
    to_chrome_trace,
    trace_fingerprint,
)


class TestTracer:
    def test_record_returns_monotonic_span_ids(self):
        tracer = Tracer()
        first = tracer.record("a.b", 1, None, 0, 10)
        second = tracer.record("a.b", 1, first, 10, 20)
        assert second == first + 1
        assert tracer.spans[1].parent_id == first

    def test_preallocated_root_id_is_honoured(self):
        tracer = Tracer()
        root_id = tracer.next_span_id()
        child = tracer.record("c.d", 5, root_id, 0, 3)
        tracer.record("root.x", 5, None, 0, 9, span_id=root_id)
        assert child != root_id
        assert tracer.spans[-1].span_id == root_id

    def test_fractional_timestamps_round_to_int_ns(self):
        tracer = Tracer()
        tracer.record("a.b", 1, None, 10.4, 20.6)
        span = tracer.spans[0]
        assert (span.start_ns, span.end_ns) == (10, 21)
        assert isinstance(span.start_ns, int) and isinstance(span.end_ns, int)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Tracer().record("a.b", 1, None, 10, 5)

    def test_marker_is_zero_duration(self):
        tracer = Tracer()
        tracer.marker("m.k", 1, None, 42.0, verdict="shed")
        span = tracer.spans[0]
        assert span.duration_ns == 0
        assert span.attrs == {"verdict": "shed"}

    def test_capacity_drops_and_counts(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            tracer.record("a.b", 1, None, index, index + 1)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_new_trace_ids_are_negative_and_distinct(self):
        tracer = Tracer()
        ids = [tracer.new_trace_id() for _ in range(4)]
        assert all(trace_id < 0 for trace_id in ids)
        assert len(set(ids)) == 4

    def test_sampling_is_a_pure_function_of_seed_and_id(self):
        first = Tracer(sample_rate=0.3, seed=7)
        second = Tracer(sample_rate=0.3, seed=7)
        decisions = [first.sampled(trace_id) for trace_id in range(200)]
        assert decisions == [second.sampled(trace_id) for trace_id in range(200)]
        kept = sum(decisions)
        assert 0 < kept < 200  # the rate actually thins

    def test_sampling_edge_rates(self):
        assert Tracer(sample_rate=1.0).sampled(123)
        assert not Tracer(sample_rate=0.0).sampled(123)
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestMetricsRegistry:
    def test_rejects_bad_names_and_duplicates(self):
        registry = MetricsRegistry()
        for bad in ("Upper.case", "with space", "dash-ed", ""):
            with pytest.raises(ValueError):
                registry.counter(bad)
        registry.counter("net.requests")
        with pytest.raises(ValueError):
            registry.gauge("net.requests")

    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        counter = registry.counter("c.total")
        counter.inc()
        counter.inc(4)
        gauge = registry.gauge("g.level")
        gauge.set(7)
        live = registry.gauge("g.live", fn=lambda: 11)
        with pytest.raises(RuntimeError):
            live.set(1)
        histogram = registry.histogram("h.latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        snapshot = registry.snapshot()
        assert snapshot["c.total"] == 5
        assert snapshot["g.level"] == 7
        assert snapshot["g.live"] == 11
        assert snapshot["h.latency"]["count"] == 4
        assert snapshot["h.latency"]["mean"] == pytest.approx(2.5)

    def test_labeled_counter_is_a_dropin_defaultdict(self):
        registry = MetricsRegistry()
        reasons = registry.labeled_counter("f.by_reason")
        reasons["timeout"] += 2
        reasons.inc("crash")
        assert dict(reasons) == {"timeout": 2, "crash": 1}
        assert sorted(reasons.items()) == [("crash", 1), ("timeout", 2)]
        assert registry.snapshot()["f.by_reason"] == {"crash": 1, "timeout": 2}

    def test_labeled_counter_pickles(self):
        reasons = MetricsRegistry().labeled_counter("f.by_reason", "why")
        reasons["x"] += 3
        clone = pickle.loads(pickle.dumps(reasons))
        assert dict(clone) == {"x": 3}
        assert (clone.name, clone.description) == ("f.by_reason", "why")
        clone["new"] += 1  # default factory survives the round-trip
        assert clone["new"] == 1

    def test_snapshot_json_is_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc(2)
        text = metrics_snapshot_json(registry)
        assert text.index('"a.first"') < text.index('"z.last"')
        assert json.loads(text) == {"a.first": 2, "z.last": 1}


class TestExport:
    def _tracer(self):
        tracer = Tracer()
        root = tracer.next_span_id()
        tracer.record("net.attempt", 3, root, 5, 9, attempt=0)
        tracer.record("client.request", 3, None, 0, 10, span_id=root)
        tracer.record("fleet.request", -1, None, 2, 4)
        return tracer

    def test_chrome_trace_shape(self):
        events = to_chrome_trace(self._tracer().spans)["traceEvents"]
        assert [event["ph"] for event in events] == ["X"] * 3
        # Sorted by (trace_id, start, span_id): the fleet trace (-1) first.
        assert events[0]["tid"] == -1
        assert events[1]["name"] == "client.request"
        assert events[1]["ts"] == 0.0 and events[1]["dur"] == pytest.approx(0.01)
        assert events[2]["args"] == {"attempt": 0, "parent_id": 1, "span_id": 2}

    def test_chrome_json_is_compact_and_parseable(self):
        text = chrome_trace_json(self._tracer().spans)
        assert "\n" not in text and ": " not in text
        payload = json.loads(text)
        assert payload["displayTimeUnit"] == "ns"
        assert len(payload["traceEvents"]) == 3

    def test_fingerprint_reacts_to_any_field(self):
        base = trace_fingerprint(self._tracer().spans)
        assert base == trace_fingerprint(self._tracer().spans)
        shifted = self._tracer()
        shifted.spans[0].end_ns += 1
        assert trace_fingerprint(shifted.spans) != base

    def test_fingerprint_limit_bounds_work(self):
        tracer = self._tracer()
        limited = trace_fingerprint(tracer.spans, limit=1)
        assert limited != trace_fingerprint(tracer.spans)
        assert limited == trace_fingerprint(tracer.spans, limit=1)


class TestNamingLint:
    def test_every_canonical_name_matches_the_pattern_once(self):
        canonical = names.all_names()
        assert len(canonical) == len(set(canonical))
        for name in canonical:
            assert names.NAME_RE.match(name), name

    def test_slo_and_incident_vocabulary_is_canonical_and_collision_free(self):
        # The SLO engine, flight recorder and tail sampler publish under
        # their own prefixes; all of them must be swept into METRIC_NAMES
        # (the globals sweep catches new constants automatically), match
        # the pattern, and never collide with the span namespace.
        metric_names = set(names.METRIC_NAMES)
        for expected in (
            names.METRIC_SLO_ALERTS,
            names.METRIC_SLO_ALERTS_BY_SLO,
            names.METRIC_SLO_ALERTS_RESOLVED,
            names.GAUGE_SLO_WORST_BURN,
            names.METRIC_INCIDENTS_OPENED,
            names.METRIC_INCIDENTS_OVERFLOWED,
            names.GAUGE_INCIDENTS_OPEN,
            names.GAUGE_TAIL_RETAINED,
            names.GAUGE_TAIL_DISCARDED,
            names.GAUGE_TAIL_BUDGET_DROPPED,
        ):
            assert expected in metric_names
            assert names.NAME_RE.match(expected), expected
        assert any(name.startswith("slo.") for name in metric_names)
        assert any(name.startswith("incident.") for name in metric_names)
        assert not metric_names & set(names.SPAN_NAMES)

    def test_device_span_names_are_sanitised_into_the_namespace(self):
        name = names.device_span_name("config-module", "reconfigure")
        assert name == "card.config_module.reconfigure"
        assert names.NAME_RE.match(name)
        assert names.device_span_name("FPGA", "execute") == "card.fpga.execute"

    def test_instrumented_stack_registers_only_canonical_metric_names(self):
        from repro.core.builder import build_fleet, build_frontdoor
        from repro.core.config import SMALL_CONFIG
        from repro.functions.bank import build_small_bank

        observability = Observability()
        fleet = build_fleet(
            cards=1,
            config=SMALL_CONFIG,
            bank=build_small_bank(),
            observability=observability,
        )
        build_frontdoor(fleet, seed=3, gateways=1)
        registered = set(observability.registry.names())
        assert registered <= set(names.METRIC_NAMES)
        # Snapshots only ever contain registered (hence canonical) names.
        assert set(observability.snapshot()) == registered
