"""Unit and end-to-end tests for the network front door (:mod:`repro.net`).

Three layers of coverage:

* **Component units** — links (serialisation, latency, loss, tail-drop),
  the token bucket's priority reserve, the circuit breaker's
  closed/open/half-open walk, and deadline expiry at both dispatch and
  in-queue.
* **End-to-end** — a small fleet behind the front door on clean and lossy
  networks: conservation of request fates, exactly-once execution under
  retransmits, and the gateway dedup cache replaying rather than
  re-executing.
* **Determinism** — identical seeds produce identical fingerprints
  (including the completion-stream digest) across repeated in-process runs;
  the cross-process half lives in ``test_net_determinism.py``.
"""

from __future__ import annotations

import pytest

from repro.core.builder import build_fleet, build_frontdoor
from repro.core.config import SMALL_CONFIG
from repro.net import (
    AdmissionConfig,
    CircuitBreaker,
    ClosedLoopPopulation,
    LinkSpec,
    OpenLoopPopulation,
    TokenBucket,
    TransportConfig,
)
from repro.net.link import Link, Packet
from repro.sim.kernel import Simulator
from repro.sim.rand import SeededRandom
from repro.workloads.multitenant import FleetRequest, default_tenant_mix, multi_tenant_trace


def make_frontdoor(
    bank,
    cards=2,
    gateways=2,
    loss=0.0,
    retries=3,
    admission=None,
    deadline_ns=30_000_000.0,
    seed=5,
    priorities=None,
    **fleet_kwargs,
):
    fleet = build_fleet(
        cards=cards,
        config=SMALL_CONFIG.with_overrides(seed=seed),
        bank=bank,
        queue_depth=8,
        **fleet_kwargs,
    )
    frontdoor = build_frontdoor(
        fleet,
        seed=seed,
        gateways=gateways,
        uplink=LinkSpec(latency_ns=20_000.0, loss=loss, jitter_ns=4_000.0),
        transport=TransportConfig(max_retries=retries),
        admission=admission,
        priorities=priorities,
        deadline_ns=deadline_ns,
    )
    return frontdoor


def make_trace(bank, length=80, mean_interarrival_ns=40_000.0, seed=5, tenants=2):
    specs = default_tenant_mix(bank, tenants=tenants)
    return specs, multi_tenant_trace(
        bank,
        specs,
        length=length,
        mean_interarrival_ns=mean_interarrival_ns,
        seed=seed,
    )


# ---------------------------------------------------------------------- links
class TestLink:
    def pump_through(self, spec, packets, seed=1):
        simulator = Simulator()
        arrived = []
        link = Link(
            simulator,
            spec,
            lambda packet: arrived.append((simulator.clock.now, packet)),
            SeededRandom(seed),
        )
        for packet in packets:
            link.send(packet)
        simulator.spawn(link.pump(), name="pump")
        simulator.run(until_ns=1e9)
        return link, arrived

    def test_clean_link_delivers_in_order_with_wire_time(self):
        spec = LinkSpec(latency_ns=10_000.0, gbps=1.0, jitter_ns=0.0, loss=0.0)
        packets = [Packet("req", index, 125) for index in range(4)]
        link, arrived = self.pump_through(spec, packets)
        assert [packet.request_id for _, packet in arrived] == [0, 1, 2, 3]
        assert link.offered == link.delivered == 4
        assert link.lost == link.dropped == 0
        # 125 bytes at 1 Gbit/s = 1000 ns of wire time per packet; packet k
        # finishes serialising at (k+1)*1000 and lands latency later.
        assert [when for when, _ in arrived] == [
            pytest.approx((index + 1) * 1000.0 + 10_000.0) for index in range(4)
        ]

    def test_total_loss_drops_every_packet(self):
        spec = LinkSpec(loss=0.999999, jitter_ns=0.0)
        link, arrived = self.pump_through(
            spec, [Packet("req", index, 64) for index in range(32)]
        )
        assert arrived == []
        assert link.lost == 32

    def test_bounded_queue_tail_drops(self):
        spec = LinkSpec(queue_packets=3)
        simulator = Simulator()
        link = Link(simulator, spec, lambda packet: None, SeededRandom(1))
        results = [link.send(Packet("req", index, 64)) for index in range(5)]
        assert results == [True, True, True, False, False]
        assert link.offered == 5 and link.dropped == 2

    def test_loss_probability_must_be_below_one(self):
        with pytest.raises(ValueError):
            LinkSpec(loss=1.0)


# --------------------------------------------------------------- token bucket
class TestTokenBucket:
    def test_priority_reserve_sheds_bulk_first(self):
        bucket = TokenBucket(AdmissionConfig(rate_per_s=1.0, burst=10.0, reserve_fraction=0.2))
        # Drain to below the bulk threshold (1 + 0.2*10 = 3 tokens) without
        # letting the (negligible) refill rate matter.
        for _ in range(8):
            assert bucket.admit(0, 0.0)
        assert not bucket.admit(0, 0.0)  # 2 tokens left: bulk needs 3
        assert bucket.admit(1, 0.0)  # priority only needs 1
        assert bucket.admit(1, 0.0)
        assert not bucket.admit(1, 0.0)  # reserve exhausted too

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(AdmissionConfig(rate_per_s=1e9, burst=4.0))
        for _ in range(4):
            assert bucket.admit(1, 0.0)
        # A long idle period refills to the burst cap, not beyond it.
        for _ in range(4):
            assert bucket.admit(1, 1e9)
        assert not bucket.admit(1, 1e9)


# ------------------------------------------------------------ circuit breaker
class TestCircuitBreaker:
    def test_closed_open_halfopen_walk(self):
        breaker = CircuitBreaker(threshold=3, open_ns=1000.0)
        assert breaker.allow(0.0)
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(0.0)
        assert breaker.record_failure(0.0)  # third failure opens
        assert breaker.state == "open"
        assert not breaker.allow(500.0)
        assert breaker.allow(1000.0)  # half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow(1000.0)  # only one probe per window
        breaker.record_success()
        assert breaker.state == "closed" and breaker.failures == 0

    def test_halfopen_failure_reopens_immediately(self):
        breaker = CircuitBreaker(threshold=3, open_ns=1000.0)
        for _ in range(3):
            breaker.record_failure(0.0)
        assert breaker.allow(1000.0)
        assert breaker.record_failure(1500.0)  # probe failed: reopen
        assert breaker.state == "open"
        assert not breaker.allow(2000.0)
        assert breaker.allow(2500.0)


# ------------------------------------------------------------------ deadlines
class TestDeadlines:
    def test_expired_at_dispatch_is_never_served(self, small_bank):
        fleet = build_fleet(
            cards=1, config=SMALL_CONFIG.with_overrides(seed=3), bank=small_bank
        )
        fleet.clock.advance(1_000.0)
        request = FleetRequest(
            tenant="t0",
            function="crc32",
            payload=b"x",
            arrival_ns=0.0,
            deadline_ns=500.0,
        )
        fleet.submit(request)
        fleet.simulator.run()
        assert fleet.stats.expired == 1
        assert fleet.stats.completed == 0

    def test_unexpired_request_completes(self, small_bank):
        fleet = build_fleet(
            cards=1, config=SMALL_CONFIG.with_overrides(seed=3), bank=small_bank
        )
        request = FleetRequest(
            tenant="t0",
            function="crc32",
            payload=b"x",
            arrival_ns=0.0,
            deadline_ns=1e9,
        )
        fleet.submit(request)
        fleet.simulator.run()
        assert fleet.stats.completed == 1
        assert fleet.stats.expired == 0

    def test_no_deadline_means_no_expiry(self, small_bank):
        fleet = build_fleet(
            cards=1, config=SMALL_CONFIG.with_overrides(seed=3), bank=small_bank
        )
        fleet.clock.advance(1e12)
        request = FleetRequest(
            tenant="t0", function="crc32", payload=b"x", arrival_ns=0.0
        )
        fleet.submit(request)
        fleet.simulator.run()
        assert fleet.stats.completed == 1


# ----------------------------------------------------------------- end-to-end
def assert_conservation(frontdoor, stats, issued):
    """Every request has exactly one client fate; execution is exactly-once."""
    assert stats.net_requests == issued
    assert stats.net_completed + stats.net_failed == issued
    admitted = sum(gateway.admitted for gateway in frontdoor.gateways)
    # Each admission reaches exactly one terminal fleet verdict...
    assert stats.completed + stats.rejected + stats.expired == admitted
    # ...and dedup means a request is admitted (hence executed) at most once.
    assert admitted <= issued
    assert stats.net_completed <= stats.completed


class TestFrontDoorEndToEnd:
    def test_clean_network_everything_completes(self, small_bank):
        frontdoor = make_frontdoor(small_bank)
        _, trace = make_trace(small_bank)
        frontdoor.add_population(OpenLoopPopulation(trace))
        stats = frontdoor.run()
        assert_conservation(frontdoor, stats, len(trace))
        assert stats.client_availability == 1.0
        assert stats.net_retries == 0
        assert stats.net_completed == stats.completed == len(trace)

    def test_lossy_network_retries_recover_exactly_once(self, small_bank):
        frontdoor = make_frontdoor(small_bank, loss=0.15)
        _, trace = make_trace(small_bank)
        frontdoor.add_population(OpenLoopPopulation(trace))
        stats = frontdoor.run()
        assert_conservation(frontdoor, stats, len(trace))
        assert stats.net_retries > 0
        assert stats.client_availability > 0.9
        # Lost responses cause retransmits of already-served requests; the
        # gateway must answer those from cache, never re-execute.
        assert stats.completed <= len(trace)

    def test_lossy_network_without_retries_fails_requests(self, small_bank):
        frontdoor = make_frontdoor(small_bank, loss=0.15, retries=0)
        _, trace = make_trace(small_bank)
        frontdoor.add_population(OpenLoopPopulation(trace))
        stats = frontdoor.run()
        assert_conservation(frontdoor, stats, len(trace))
        assert stats.net_failed > 0
        assert stats.client_availability < 1.0

    def test_admission_sheds_bulk_before_priority(self, small_bank):
        specs, trace = make_trace(
            small_bank, length=150, mean_interarrival_ns=2_000.0
        )
        frontdoor = make_frontdoor(
            small_bank,
            admission=AdmissionConfig(rate_per_s=50_000.0, burst=4.0),
            priorities={specs[0].name: 1},
        )
        frontdoor.add_population(OpenLoopPopulation(trace))
        stats = frontdoor.run()
        assert_conservation(frontdoor, stats, len(trace))
        assert stats.shed_total > 0
        gold_shed = stats.per_priority_shed[1] / max(1, stats.per_priority_requests[1])
        bulk_shed = stats.per_priority_shed[0] / max(1, stats.per_priority_requests[0])
        assert gold_shed < bulk_shed

    def test_closed_loop_population_completes_all(self, small_bank):
        _, trace = make_trace(small_bank, length=12)
        frontdoor = make_frontdoor(small_bank)
        frontdoor.add_population(
            ClosedLoopPopulation(
                trace,
                clients=3,
                requests_per_client=4,
                think_ns=50_000.0,
                rng=SeededRandom(9).fork("think"),
            )
        )
        stats = frontdoor.run()
        assert stats.net_requests == 12
        assert stats.net_completed == 12

    def test_run_without_population_raises(self, small_bank):
        frontdoor = make_frontdoor(small_bank)
        with pytest.raises(ValueError):
            frontdoor.run()

    def test_dead_cards_fail_fast(self, small_bank):
        frontdoor = make_frontdoor(small_bank, cards=2, retries=1)
        for card in frontdoor.fleet.cards:
            card.health = "down"
        _, trace = make_trace(small_bank, length=10)
        frontdoor.add_population(OpenLoopPopulation(trace))
        stats = frontdoor.run()
        # The health probe flips cards_up after its first period; everything
        # afterwards fails fast at the gateway instead of timing out.
        assert stats.net_failed == stats.net_requests == 10
        assert stats.completed == 0


class TestDeterminism:
    def test_identical_seeds_identical_fingerprints(self, small_bank):
        def run():
            frontdoor = make_frontdoor(small_bank, loss=0.10)
            _, trace = make_trace(small_bank)
            frontdoor.add_population(OpenLoopPopulation(trace))
            frontdoor.run()
            return frontdoor.fingerprint()

        first, second = run(), run()
        assert first == second
        assert first[0] > 0

    def test_net_disabled_digest_matches_plain_fleet(self, small_bank, small_trace):
        def run():
            fleet = build_fleet(
                cards=2, config=SMALL_CONFIG.with_overrides(seed=3), bank=small_bank
            )
            fleet.run(small_trace(small_bank))
            return fleet.fingerprint()

        # The deadline/outcome-callback plumbing is inert without a front
        # door: a plain fleet run must reproduce the pre-network schedule.
        assert run() == run()
