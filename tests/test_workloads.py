"""Tests for traces, trace generators and application models."""

import pytest

from repro.workloads import (
    Request,
    Trace,
    bursty_trace,
    dsp_pipeline_trace,
    hash_server_trace,
    ipsec_gateway_trace,
    phased_trace,
    repeated_trace,
    round_robin_trace,
    uniform_trace,
    zipf_trace,
)


class TestTrace:
    def test_basic_queries(self, small_bank):
        trace = Trace(
            [
                Request("crc32", b"a"),
                Request("crc32", b"b"),
                Request("parity32", b"cd"),
            ],
            name="demo",
        )
        assert len(trace) == 3
        assert trace.function_counts() == {"crc32": 2, "parity32": 1}
        assert trace.distinct_functions() == ["crc32", "parity32"]
        assert trace.switches() == 1
        assert trace.total_payload_bytes() == 4
        assert trace.function_sequence() == ["crc32", "crc32", "parity32"]
        assert "demo" in trace.describe()

    def test_slice_and_concatenate(self, small_bank):
        trace = repeated_trace(small_bank, "crc32", 10)
        head = trace.slice(0, 4)
        assert len(head) == 4
        combined = head.concatenate(trace.slice(4))
        assert len(combined) == 10

    def test_indexing(self, small_bank):
        trace = repeated_trace(small_bank, "crc32", 3)
        assert trace[0].function == "crc32"


class TestGenerators:
    def test_lengths_and_known_functions(self, small_bank):
        for trace in (
            uniform_trace(small_bank, 50, seed=1),
            zipf_trace(small_bank, 50, seed=1),
            phased_trace(small_bank, 50, phase_length=10, working_set=2, seed=1),
            round_robin_trace(small_bank, 50, seed=1),
            bursty_trace(small_bank, 50, seed=1),
        ):
            assert len(trace) == 50
            assert set(trace.distinct_functions()) <= set(small_bank.names())

    def test_seed_determinism(self, small_bank):
        first = zipf_trace(small_bank, 100, seed=5)
        second = zipf_trace(small_bank, 100, seed=5)
        third = zipf_trace(small_bank, 100, seed=6)
        assert first.function_sequence() == second.function_sequence()
        assert first.function_sequence() != third.function_sequence()

    def test_payload_sizes_follow_function_spec(self, small_bank):
        trace = uniform_trace(small_bank, 30, seed=2, payload_blocks=3)
        for request in trace:
            expected = small_bank.by_name(request.function).spec.input_bytes * 3
            assert request.payload_bytes == expected

    def test_zipf_is_skewed(self, default_bank):
        trace = zipf_trace(default_bank, 600, skew=1.4, seed=3)
        counts = sorted(trace.function_counts().values(), reverse=True)
        assert counts[0] > 2 * counts[-1]

    def test_round_robin_switches_every_repeat(self, small_bank):
        trace = round_robin_trace(small_bank, 40, repeats_per_function=1, seed=0)
        assert trace.switches() == 39
        batched = round_robin_trace(small_bank, 40, repeats_per_function=4, seed=0)
        assert batched.switches() < trace.switches()

    def test_phased_trace_limits_working_set_per_phase(self, default_bank):
        trace = phased_trace(default_bank, 200, phase_length=50, working_set=3, seed=4)
        for start in range(0, 200, 50):
            phase_functions = {request.function for request in trace.requests[start : start + 50]}
            assert len(phase_functions) <= 3

    def test_unknown_function_rejected(self, small_bank):
        with pytest.raises(KeyError):
            uniform_trace(small_bank, 5, functions=["ghost"])

    def test_interarrival_times(self, small_bank):
        trace = uniform_trace(small_bank, 20, seed=1, mean_interarrival_ns=1000.0)
        offsets = [request.arrival_offset_ns for request in trace]
        assert all(offset >= 0 for offset in offsets)
        assert any(offset > 0 for offset in offsets)

    def test_parameter_validation(self, small_bank):
        with pytest.raises(ValueError):
            round_robin_trace(small_bank, 10, repeats_per_function=0)
        with pytest.raises(ValueError):
            phased_trace(small_bank, 10, phase_length=0)
        with pytest.raises(ValueError):
            bursty_trace(small_bank, 10, mean_burst=0)


class TestApplicationModels:
    def test_ipsec_mixes_cipher_hash_and_rekey(self, default_bank):
        trace = ipsec_gateway_trace(default_bank, packets=100, rekey_interval=20, seed=1)
        counts = trace.function_counts()
        assert counts.get("modexp512", 0) == 5
        assert counts.get("aes128", 0) + counts.get("des", 0) == 100
        assert counts.get("sha1", 0) + counts.get("sha256", 0) == 100

    def test_hash_server_mostly_primary_digest(self, default_bank):
        trace = hash_server_trace(default_bank, requests=64, verify_every=16, seed=1)
        counts = trace.function_counts()
        assert counts["sha256"] == 64
        assert counts["crc32"] == 64
        assert counts["sha1"] == 4

    def test_dsp_pipeline_switches_waveforms(self, default_bank):
        trace = dsp_pipeline_trace(default_bank, frames=80, waveform_switch_every=20, seed=1)
        counts = trace.function_counts()
        assert counts["fir16"] == 80 and counts["fft256"] == 80
        assert counts["matmul8"] == 4 and counts["bitonic64"] == 4

    def test_validation(self, default_bank):
        with pytest.raises(ValueError):
            ipsec_gateway_trace(default_bank, packets=0)
        with pytest.raises(ValueError):
            hash_server_trace(default_bank, requests=0)
        with pytest.raises(ValueError):
            dsp_pipeline_trace(default_bank, frames=0)
