"""Tests for the analysis helpers (tables, figures, reports)."""

import pytest

from repro.analysis import ExperimentReport, Table, ascii_bar_chart, ascii_line_chart, format_value


class TestFormatValue:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (True, "yes"),
            (False, "no"),
            (0.0, "0"),
            (3.14159, "3.14"),
            (0.001234, "0.0012"),
            (12345.6, "12,346"),
            ("text", "text"),
            (7, "7"),
        ],
    )
    def test_rendering(self, value, expected):
        assert format_value(value) == expected


class TestTable:
    def test_add_rows_positionally_and_by_name(self):
        table = Table("demo", ["name", "value"])
        table.add_row("a", 1.0)
        table.add_row(name="b", value=2.0)
        rendered = table.render()
        assert "demo" in rendered and "a" in rendered and "b" in rendered
        assert table.column_values("name") == ["a", "b"]

    def test_row_length_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)
        with pytest.raises(ValueError):
            table.add_row(1, 2, **{"a": 3})

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table("demo", [])

    def test_sort_by_numeric_column(self):
        table = Table("demo", ["name", "value"])
        table.add_row("big", 10.0)
        table.add_row("small", 2.0)
        table.sort_by("value")
        assert table.column_values("name") == ["small", "big"]
        table.sort_by("value", reverse=True)
        assert table.column_values("name") == ["big", "small"]

    def test_dict_rows_and_export(self):
        table = Table("demo", ["x", "y"])
        table.add_dict_rows([{"x": 1, "y": 2}, {"x": 3, "y": 4}])
        assert table.to_dicts()[0] == {"x": "1", "y": "2"}

    def test_alignment_in_render(self):
        table = Table("demo", ["column"])
        table.add_row("a-much-longer-value")
        lines = table.render().splitlines()
        assert len(lines[2]) == len(lines[4])  # header width == row width


class TestCharts:
    def test_bar_chart_scales_to_width(self):
        chart = ascii_bar_chart("latency", {"hit": 1.0, "miss": 4.0}, width=20, unit="us")
        lines = chart.splitlines()
        assert lines[0] == "latency"
        hit_line = next(line for line in lines if line.startswith("hit"))
        miss_line = next(line for line in lines if line.startswith("miss"))
        assert miss_line.count("#") == 20
        assert hit_line.count("#") == 5

    def test_bar_chart_empty(self):
        assert "(no data)" in ascii_bar_chart("nothing", {})

    def test_bar_chart_invalid_width(self):
        with pytest.raises(ValueError):
            ascii_bar_chart("x", {"a": 1.0}, width=0)

    def test_line_chart_contains_markers_and_legend(self):
        chart = ascii_line_chart(
            "speedup",
            {"agile": [(1, 1.0), (2, 2.0), (4, 3.0)], "host": [(1, 1.0), (2, 1.0), (4, 1.0)]},
            width=30,
            height=8,
        )
        assert "legend" in chart
        assert "*" in chart and "o" in chart

    def test_line_chart_empty_and_invalid(self):
        assert "(no data)" in ascii_line_chart("x", {"s": []})
        with pytest.raises(ValueError):
            ascii_line_chart("x", {}, width=1, height=1)


class TestExperimentReport:
    def test_render_includes_everything(self):
        report = ExperimentReport("E2", "Reconfiguration latency")
        table = Table("latency", ["function", "us"])
        table.add_row("aes128", 120.0)
        report.add_table(table)
        report.add_figure(ascii_bar_chart("x", {"a": 1.0}))
        report.observe("partial reconfiguration is faster than full")
        report.record_metric("speedup", 3.5)
        text = report.render()
        assert "[E2]" in text
        assert "aes128" in text
        assert "partial reconfiguration" in text
        assert "speedup = 3.5" in text
        assert str(report) == text
