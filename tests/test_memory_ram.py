"""Tests for the local RAM allocator and timed access."""

import pytest

from repro.memory.errors import RamAllocationError
from repro.memory.ram import LocalRam
from repro.sim.clock import Clock


class TestAllocator:
    def test_allocate_and_free(self):
        ram = LocalRam(1024)
        allocation = ram.allocate("input", 256)
        assert allocation.address == 0 and allocation.length == 256
        assert ram.bytes_allocated == 256
        ram.free("input")
        assert ram.bytes_allocated == 0

    def test_allocations_do_not_overlap(self):
        ram = LocalRam(1024)
        first = ram.allocate("a", 100)
        second = ram.allocate("b", 200)
        assert second.address >= first.end
        assert ram.bytes_free == 1024 - 300

    def test_first_fit_reuses_gaps(self):
        ram = LocalRam(1024)
        ram.allocate("a", 100)
        ram.allocate("b", 100)
        ram.allocate("c", 100)
        ram.free("b")
        gap_fill = ram.allocate("d", 80)
        assert gap_fill.address == 100

    def test_duplicate_label_rejected(self):
        ram = LocalRam(256)
        ram.allocate("x", 10)
        with pytest.raises(RamAllocationError):
            ram.allocate("x", 10)

    def test_exhaustion_rejected(self):
        ram = LocalRam(128)
        ram.allocate("a", 100)
        with pytest.raises(RamAllocationError):
            ram.allocate("b", 64)

    def test_free_unknown_label_rejected(self):
        with pytest.raises(RamAllocationError):
            LocalRam(64).free("ghost")

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            LocalRam(0)
        with pytest.raises(ValueError):
            LocalRam(64).allocate("x", 0)

    def test_peak_tracking_and_free_all(self):
        ram = LocalRam(1024)
        ram.allocate("a", 400)
        ram.allocate("b", 300)
        ram.free_all()
        assert ram.bytes_allocated == 0
        assert ram.peak_bytes_allocated == 700


class TestTimedAccess:
    def test_write_then_read_round_trips(self):
        ram = LocalRam(1024, clock=Clock())
        allocation = ram.allocate("buffer", 64)
        elapsed = ram.write(allocation, b"hello world")
        assert elapsed > 0
        assert ram.read(allocation, 11) == b"hello world"
        assert ram.total_bytes_moved == 22

    def test_offsets(self):
        ram = LocalRam(1024)
        allocation = ram.allocate("buffer", 16)
        ram.write(allocation, b"abcd", offset=4)
        assert ram.read(allocation, 4, offset=4) == b"abcd"

    def test_out_of_bounds_rejected(self):
        ram = LocalRam(1024)
        allocation = ram.allocate("buffer", 8)
        with pytest.raises(ValueError):
            ram.write(allocation, b"123456789")
        with pytest.raises(ValueError):
            ram.read(allocation, 9)
        with pytest.raises(ValueError):
            ram.read(allocation, 4, offset=6)

    def test_clock_advances_with_transfer_size(self):
        clock = Clock()
        ram = LocalRam(64 * 1024, clock=clock)
        allocation = ram.allocate("buffer", 32 * 1024)
        ram.write(allocation, b"\x00" * 1024)
        small = clock.now
        ram.write(allocation, b"\x00" * 16 * 1024)
        assert clock.now - small > small

    def test_describe(self):
        ram = LocalRam(1024)
        ram.allocate("in", 10)
        assert "in@0+10" in ram.describe()
