"""Tests for the configuration memory and the configuration port."""

import pytest

from repro.bitstream.crc import crc32
from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.config_port import ConfigurationPort
from repro.fpga.errors import ConfigurationError, FrameCollisionError
from repro.fpga.frame import FrameRegion
from repro.sim.clock import Clock


def _payload(geometry, fill=0x11):
    return bytes([fill]) * geometry.frame_config_bytes


class TestConfigurationMemory:
    def test_write_and_read_frame(self, tiny_geometry):
        memory = ConfigurationMemory(tiny_geometry)
        address = tiny_geometry.frame_at(0)
        memory.write_frame(address, _payload(tiny_geometry), owner="aes")
        assert memory.owner_of(address) == "aes"
        assert memory.read_frame(address) == _payload(tiny_geometry)
        assert memory.total_frame_writes == 1

    def test_write_over_other_owner_rejected(self, tiny_geometry):
        memory = ConfigurationMemory(tiny_geometry)
        address = tiny_geometry.frame_at(2)
        memory.write_frame(address, _payload(tiny_geometry), owner="aes")
        with pytest.raises(FrameCollisionError):
            memory.write_frame(address, _payload(tiny_geometry, 0x22), owner="des")

    def test_claim_and_release(self, tiny_geometry):
        memory = ConfigurationMemory(tiny_geometry)
        region = FrameRegion.from_addresses([tiny_geometry.frame_at(index) for index in (0, 1)])
        memory.claim(region, "sha1")
        assert memory.owned_frames("sha1") == list(region)
        with pytest.raises(FrameCollisionError):
            memory.claim(region, "des")
        memory.release(region, owner="sha1")
        assert memory.owned_frames("sha1") == []

    def test_release_with_wrong_owner_rejected(self, tiny_geometry):
        memory = ConfigurationMemory(tiny_geometry)
        region = FrameRegion.from_addresses([tiny_geometry.frame_at(0)])
        memory.claim(region, "aes")
        with pytest.raises(ConfigurationError):
            memory.release(region, owner="des")

    def test_clear_frame_erases_and_frees(self, tiny_geometry):
        memory = ConfigurationMemory(tiny_geometry)
        address = tiny_geometry.frame_at(1)
        memory.write_frame(address, _payload(tiny_geometry), owner="aes")
        memory.clear_frame(address)
        assert memory.owner_of(address) is None
        assert memory.frames[address].is_clear

    def test_utilisation_and_describe(self, tiny_geometry):
        memory = ConfigurationMemory(tiny_geometry)
        assert memory.utilisation() == 0.0
        memory.claim(FrameRegion.from_addresses([tiny_geometry.frame_at(0)]), "x")
        assert memory.utilisation() == pytest.approx(1 / tiny_geometry.frame_count)
        assert "x:1f" in memory.describe()

    def test_readback_device(self, tiny_geometry):
        memory = ConfigurationMemory(tiny_geometry)
        snapshot = memory.readback_device()
        assert len(snapshot) == tiny_geometry.frame_count

    def test_clear_device(self, tiny_geometry):
        memory = ConfigurationMemory(tiny_geometry)
        memory.write_frame(tiny_geometry.frame_at(0), _payload(tiny_geometry), owner="aes")
        memory.clear_device()
        assert memory.unowned_frames() == tiny_geometry.all_frames()


class TestConfigurationPort:
    def _port(self, geometry, clock=None):
        memory = ConfigurationMemory(geometry)
        clock = clock or Clock()
        return ConfigurationPort(memory, clock), memory, clock

    def test_write_time_scales_with_payload(self, tiny_geometry):
        port, _, _ = self._port(tiny_geometry)
        small = port.write_time_ns(10)
        large = port.write_time_ns(1000)
        assert large > small

    def test_session_writes_frames_and_advances_clock(self, tiny_geometry):
        port, memory, clock = self._port(tiny_geometry)
        payload = _payload(tiny_geometry)
        port.begin_session("aes")
        elapsed = port.write_frame(tiny_geometry.frame_at(0), payload)
        frames, _ = port.end_session(expected_crc=crc32(payload))
        assert frames == [tiny_geometry.frame_at(0)]
        assert clock.now > 0
        assert elapsed == pytest.approx(port.write_time_ns(len(payload)))
        assert memory.owner_of(tiny_geometry.frame_at(0)) == "aes"
        assert port.stats.frames_written == 1

    def test_crc_mismatch_rolls_back(self, tiny_geometry):
        port, memory, _ = self._port(tiny_geometry)
        payload = _payload(tiny_geometry)
        port.begin_session("aes")
        port.write_frame(tiny_geometry.frame_at(0), payload)
        with pytest.raises(ConfigurationError):
            port.end_session(expected_crc=0xDEADBEEF)
        assert memory.owner_of(tiny_geometry.frame_at(0)) is None
        assert memory.frames[tiny_geometry.frame_at(0)].is_clear
        assert port.stats.crc_failures == 1

    def test_nested_sessions_rejected(self, tiny_geometry):
        port, _, _ = self._port(tiny_geometry)
        port.begin_session("aes")
        with pytest.raises(ConfigurationError):
            port.begin_session("des")

    def test_write_outside_session_rejected(self, tiny_geometry):
        port, _, _ = self._port(tiny_geometry)
        with pytest.raises(ConfigurationError):
            port.write_frame(tiny_geometry.frame_at(0), _payload(tiny_geometry))
        with pytest.raises(ConfigurationError):
            port.end_session()

    def test_abort_session_rolls_back(self, tiny_geometry):
        port, memory, _ = self._port(tiny_geometry)
        port.begin_session("aes")
        port.write_frame(tiny_geometry.frame_at(3), _payload(tiny_geometry))
        port.abort_session()
        assert memory.owner_of(tiny_geometry.frame_at(3)) is None
        assert not port.in_session

    def test_invalid_construction(self, tiny_geometry):
        memory = ConfigurationMemory(tiny_geometry)
        with pytest.raises(ValueError):
            ConfigurationPort(memory, Clock(), port_width_bytes=0)
        with pytest.raises(ValueError):
            ConfigurationPort(memory, Clock(), frame_setup_cycles=-1)
