"""Reservoir sampling in the statistics layer.

The old behaviour silently stopped appending latencies after
``max_recorded_latencies``, so percentiles on long traces only ever saw the
head of the run.  The reservoir keeps a uniform sample of the *whole* stream;
these tests pin down that tail samples are represented and that the sampling
is deterministic.
"""

import pytest

from repro.core.stats import CoprocessorStatistics, ReservoirSampler, percentile_of
from repro.mcu.microcontroller import RequestOutcome
from repro.sim.rand import SeededRandom


def outcome(latency_ns: float, hit: bool = True) -> RequestOutcome:
    return RequestOutcome(
        function="f", output=b"", hit=hit, total_time_ns=latency_ns
    )


class TestReservoirSampler:
    def test_below_capacity_keeps_everything_in_order(self):
        sampler = ReservoirSampler(10, SeededRandom(1))
        for value in range(5):
            sampler.add(float(value))
        assert sampler.values == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert sampler.seen == 5

    def test_capacity_is_never_exceeded(self):
        sampler = ReservoirSampler(16, SeededRandom(1))
        for value in range(1000):
            sampler.add(float(value))
        assert len(sampler) == 16
        assert sampler.seen == 1000

    def test_tail_values_are_represented(self):
        sampler = ReservoirSampler(100, SeededRandom(7))
        for value in range(10_000):
            sampler.add(float(value))
        # A uniform sample of 100 out of 10k has ~1 - (1/2)^100 probability of
        # containing at least one value from the last half; with a fixed seed
        # this is deterministic, and a head-biased sample would have none.
        tail = [value for value in sampler.values if value >= 5000]
        assert tail, "reservoir contains no tail samples - head-biased"
        # The sample mean of a uniform draw tracks the stream mean (~5000).
        assert 3500 < sampler.mean < 6500

    def test_deterministic_given_seed(self):
        def fill(seed):
            sampler = ReservoirSampler(32, SeededRandom(seed))
            for value in range(2000):
                sampler.add(float(value))
            return sampler.values

        assert fill(5) == fill(5)
        assert fill(5) != fill(6)

    def test_percentiles_and_validation(self):
        sampler = ReservoirSampler(8, SeededRandom(0))
        assert sampler.percentile(95) == 0.0
        for value in (3.0, 1.0, 2.0):
            sampler.add(value)
        assert sampler.percentile(0) == 1.0
        assert sampler.percentile(100) == 3.0
        with pytest.raises(ValueError):
            sampler.percentile(150)
        with pytest.raises(ValueError):
            ReservoirSampler(-1)

    def test_zero_capacity_counts_but_retains_nothing(self):
        sampler = ReservoirSampler(0, SeededRandom(0))
        for value in range(10):
            sampler.add(float(value))
        assert sampler.values == [] and sampler.seen == 10
        assert sampler.percentile(95) == 0.0
        # The statistics counterpart: a valid memory-saving configuration.
        stats = CoprocessorStatistics(max_recorded_latencies=0)
        stats.record(outcome(5.0), input_bytes=0)
        assert stats.latencies_ns == [] and stats.latencies_seen == 1
        assert stats.latency_percentile(95) == 0.0

    def test_percentile_of_empty(self):
        assert percentile_of([], 95) == 0.0


class TestCoprocessorStatisticsReservoir:
    def test_short_traces_identical_to_plain_append(self):
        stats = CoprocessorStatistics()
        latencies = [float(value) for value in range(500)]
        for latency in latencies:
            stats.record(outcome(latency), input_bytes=1)
        assert stats.latencies_ns == latencies
        assert stats.latencies_seen == 500

    def test_long_trace_tail_is_sampled(self):
        stats = CoprocessorStatistics(max_recorded_latencies=200)
        for value in range(20_000):
            stats.record(outcome(float(value)), input_bytes=0)
        assert len(stats.latencies_ns) == 200
        assert stats.latencies_seen == 20_000
        tail = [value for value in stats.latencies_ns if value >= 10_000]
        assert tail, "long-trace percentiles still head-biased"
        # The head-biased p95 would be ~190 (95% of the first 200 requests);
        # the uniform sample's p95 must track the full stream (~19000).
        assert stats.latency_percentile(95) > 10_000

    def test_sampling_is_deterministic_across_instances(self):
        def fill():
            stats = CoprocessorStatistics(max_recorded_latencies=50)
            for value in range(5000):
                stats.record(outcome(float(value)), input_bytes=0)
            return list(stats.latencies_ns)

        assert fill() == fill()

    def test_fresh_instances_compare_equal(self):
        assert CoprocessorStatistics() == CoprocessorStatistics()

    def test_oversized_initial_latencies_rejected(self):
        # Entries past the cap could never be displaced, permanently biasing
        # percentiles — refuse the construction outright.
        with pytest.raises(ValueError):
            CoprocessorStatistics(latencies_ns=[1.0, 2.0], max_recorded_latencies=1)

    def test_oversized_rebound_latencies_rejected(self):
        # The same cap contract holds when the public field is rebound later.
        stats = CoprocessorStatistics(max_recorded_latencies=2)
        stats.latencies_ns = [9.0, 8.0, 7.0]
        with pytest.raises(ValueError):
            stats.record(outcome(1.0), input_bytes=0)

    def test_rebinding_latencies_reattaches_the_sampler(self):
        stats = CoprocessorStatistics(max_recorded_latencies=10)
        for value in range(5):
            stats.record(outcome(float(value)), input_bytes=0)
        stats.latencies_ns = []
        stats.record(outcome(99.0), input_bytes=0)
        assert stats.latencies_ns == [99.0]
        assert stats.latency_percentile(95) == 99.0

    def test_shrinking_cap_trims_and_growing_after_overflow_rejected(self):
        stats = CoprocessorStatistics(max_recorded_latencies=10)
        for value in range(50):
            stats.record(outcome(float(value)), input_bytes=0)
        stats.max_recorded_latencies = 4
        stats.record(outcome(99.0), input_bytes=0)
        assert len(stats.latencies_ns) <= 4
        stats.max_recorded_latencies = 100  # grow after overflow: refused
        with pytest.raises(ValueError):
            stats.record(outcome(1.0), input_bytes=0)

    def test_reset_restarts_the_stream(self):
        stats = CoprocessorStatistics(max_recorded_latencies=10)
        for value in range(100):
            stats.record(outcome(float(value)), input_bytes=0)
        stats.reset()
        assert stats.latencies_ns == []
        assert stats.latencies_seen == 0
        stats.record(outcome(1.0), input_bytes=0)
        assert stats.latencies_ns == [1.0]
