"""Fleet self-healing: card health, failover, heal preloads, scrub services.

The load-bearing guarantees: requests on a killed card are never silently
dropped (conservation against the FleetStatistics counters), dead cards are
invisible to dispatch, degraded cards bounce misses to survivors, heal
preloads restore residency, and everything — faults included — reproduces
byte-identically.
"""

import pytest

from repro.core.builder import build_fleet
from repro.core.config import SMALL_CONFIG
from repro.faults import FaultSpec
from repro.fpga.errors import ConfigurationError
from repro.workloads.multitenant import default_tenant_mix, multi_tenant_trace


class TestCardHealth:
    def test_down_card_is_invisible_to_dispatch(self, small_bank, small_trace, protected_fleet):
        fleet = protected_fleet(small_bank)
        fleet.kill_card(1)
        assert not fleet.cards[1].has_room
        assert not fleet.cards[1].holds("crc32")
        for _ in range(6):
            card = fleet.policy.choose(small_trace(small_bank)[0], fleet.cards)
            assert card.index != 1

    def test_kill_is_idempotent_and_recorded(self, small_bank, protected_fleet):
        fleet = protected_fleet(small_bank)
        assert fleet.kill_card(0)
        assert not fleet.kill_card(0)
        assert fleet.stats.card_failures == 1
        assert fleet.cards[0].health == "down"
        assert fleet.cards[0].down_since_ns is not None

    def test_degraded_card_still_admissible_but_spread_avoids_it(self, small_bank, small_trace, protected_fleet):
        fleet = protected_fleet(small_bank)
        fleet.degrade_card(0, duration_ns=1e9)
        assert fleet.cards[0].health == "degraded"
        assert fleet.cards[0].has_room
        request = small_trace(small_bank)[0]
        # Nothing resident anywhere: the cold load must avoid the wedged card.
        chosen = fleet.policy.choose(request, fleet.cards)
        assert chosen.index != 0

    def test_wedged_port_miss_preserves_resident_functions(self, small_bank, protected_fleet):
        """A miss on a degraded card must fail *before* evicting residents."""
        fleet = protected_fleet(small_bank, cards=1)
        card = fleet.cards[0]
        card.driver.preload("crc32")
        resident_before = card.resident_functions()
        assert resident_before
        fleet.degrade_card(0, duration_ns=1e9)
        copro = card.driver.coprocessor
        with pytest.raises(ConfigurationError):
            copro.mcu.ensure_loaded("sha1" if "sha1" in copro.bank else "adder8")
        assert card.resident_functions() == resident_before

    def test_failover_reaches_every_untried_card(self, small_bank, small_trace):
        """The retry exclusion must be cumulative: with two of three ports
        wedged, requests end up served by the one healthy card, not rejected
        after bouncing between the wedged pair."""
        trace = small_trace(small_bank, length=30, mean_interarrival_ns=50_000.0)
        fleet = build_fleet(
            cards=3,
            config=SMALL_CONFIG.with_overrides(seed=3),
            bank=small_bank,
            policy="round_robin",
            queue_depth=8,
            fault_tolerance=True,
        )
        fleet.degrade_card(0, duration_ns=1e12)
        fleet.degrade_card(1, duration_ns=1e12)
        stats = fleet.run(trace)
        assert stats.completed + stats.rejected == stats.arrivals
        # Misses bounced off the wedged cards but always landed on card2.
        assert stats.completed == stats.arrivals
        assert stats.per_card_dispatched["card2"] > 0

    def test_stall_port_faults_delay_without_degrading(self, small_bank, small_trace, protected_fleet):
        """port_fault_kind='stall': reconfigs slow down, health never changes."""
        trace = small_trace(small_bank, length=60, mean_interarrival_ns=10_000.0)
        fleet = protected_fleet(
            small_bank,
            cards=2,
            fault_spec=FaultSpec(
                port_fault_rate_per_s=2_000.0,
                port_fault_duration_ns=20_000.0,
                port_fault_kind="stall",
                seed=31,
            ),
        )
        stats = fleet.run(trace)
        assert stats.completed == stats.arrivals
        assert stats.card_degradations == 0
        assert all(card.health == "up" for card in fleet.cards)
        assert fleet.injector.port_faults > 0
        # A stall is consumed by the next configuration session; pending
        # stalls on cards that never reconfigured again are drained here.
        for card in fleet.cards:
            copro = card.driver.coprocessor
            if copro.device.port._pending_stall_ns > 0:
                name = copro.bank.names()[0]
                if copro.is_loaded(name):
                    copro.evict(name)
                copro.preload(name)
        stalled = sum(
            card.driver.coprocessor.device.port.stats.stalled_time_ns
            for card in fleet.cards
        )
        assert stalled > 0

    def test_degrade_then_recover_restores_health(self, small_bank, protected_fleet):
        fleet = protected_fleet(small_bank)
        fleet.degrade_card(0, duration_ns=50_000.0)
        assert fleet.cards[0].driver.coprocessor.device.port.wedged
        fleet.simulator.run()
        assert fleet.cards[0].health == "up"
        assert not fleet.cards[0].driver.coprocessor.device.port.wedged
        assert fleet.stats.card_recoveries == 1


class TestKilledCardConservation:
    @pytest.mark.parametrize("kill_ns", [0.0, 200_000.0, 600_000.0])
    def test_no_request_is_silently_dropped(self, small_bank, kill_ns, small_trace, protected_fleet):
        trace = small_trace(small_bank, length=80, mean_interarrival_ns=15_000.0)
        fleet = protected_fleet(
            small_bank,
            fault_spec=FaultSpec(card_kill_times_ns=((kill_ns, 0),), seed=11),
        )
        stats = fleet.run(trace)
        assert fleet.cards[0].health == "down"
        assert stats.completed + stats.rejected == stats.arrivals == len(trace)
        # Every completion ran on a surviving card.
        assert stats.per_card_dispatched.get("card0", 0) >= 0
        summaries = {row["card"]: row for row in fleet.card_summaries()}
        served_alive = sum(
            row["served"] for name, row in summaries.items() if name != "card0"
        )
        assert served_alive + summaries["card0"]["served"] >= stats.completed

    def test_mid_run_kill_fails_over_queued_requests(self, small_bank, small_trace, protected_fleet):
        # Hammer one card hard so its queue is non-empty when it dies.
        trace = small_trace(small_bank, length=120, mean_interarrival_ns=2_000.0)
        fleet = protected_fleet(
            small_bank,
            cards=2,
            fault_spec=FaultSpec(card_kill_times_ns=((100_000.0, 0),), seed=11),
        )
        stats = fleet.run(trace)
        assert stats.completed + stats.rejected == stats.arrivals
        assert stats.failovers > 0
        assert stats.card_failures == 1

    def test_all_ports_wedged_terminates_with_rejections(self, small_bank, small_trace, protected_fleet):
        """Failover must not livelock between wedged cards.

        With every configuration port wedged, a cold request fails on any
        card it reaches; the retry must exclude the failed card and cap the
        bounce count (queue hand-offs cost zero simulated time, so an
        uncapped retry would spin the kernel forever at one instant).
        """
        trace = small_trace(small_bank, length=20)
        fleet = protected_fleet(small_bank, cards=2)
        for index in range(2):
            fleet.degrade_card(index, duration_ns=1e12)
        stats = fleet.run(trace)
        assert stats.completed + stats.rejected == stats.arrivals
        assert stats.rejected > 0
        assert stats.failovers > 0
        # Bounces are capped at one attempt per card.
        assert stats.failovers <= stats.arrivals * len(fleet.cards)

    def test_all_cards_down_rejects_rather_than_hangs(self, small_bank, small_trace, protected_fleet):
        trace = small_trace(small_bank, length=30)
        fleet = protected_fleet(
            small_bank,
            cards=2,
            fault_spec=FaultSpec(
                card_kill_times_ns=((0.0, 0), (0.0, 1)), seed=11
            ),
        )
        stats = fleet.run(trace)
        assert stats.completed + stats.rejected == stats.arrivals
        assert stats.rejected > 0


class TestHealing:
    def test_hot_functions_reresidentised_on_survivors(
        self, default_bank, fleet_working_set, pressure_config
    ):
        trace = multi_tenant_trace(
            default_bank.subset(fleet_working_set),
            default_tenant_mix(default_bank.subset(fleet_working_set), tenants=4, skew=1.2),
            length=200,
            mean_interarrival_ns=100_000.0,
            seed=7,
        )
        fleet = build_fleet(
            cards=3,
            config=pressure_config,
            bank=default_bank,
            functions=fleet_working_set,
            policy="affinity",
            fault_tolerance=True,
            fault_spec=FaultSpec(card_kill_times_ns=((8_000_000.0, 0),), seed=9),
        )
        stats = fleet.run(trace)
        assert stats.card_failures == 1
        assert stats.heal_orders > 0
        assert stats.heals_completed > 0
        assert stats.mttr_ns > 0
        assert stats.completed + stats.rejected == stats.arrivals
        # Healed functions actually live on surviving fabric now.
        survivors = [card for card in fleet.cards if card.health != "down"]
        resident_anywhere = set()
        for card in survivors:
            resident_anywhere.update(card.resident_functions())
        assert resident_anywhere

    def test_availability_reflects_downtime(self, small_bank, small_trace, protected_fleet):
        trace = small_trace(small_bank, length=80, mean_interarrival_ns=15_000.0)
        fleet = protected_fleet(
            small_bank,
            fault_spec=FaultSpec(card_kill_times_ns=((100_000.0, 0),), seed=5),
        )
        fleet.run(trace)
        assert 0.0 < fleet.availability() < 1.0
        summary = fleet.fault_summary()
        assert summary["cards_down"] == 1
        assert summary["availability"] == fleet.availability()

    def test_fully_dead_fleet_does_not_report_perfect_availability(self, small_bank, small_trace, protected_fleet):
        """A fleet that completed nothing must report its downtime, not 1.0."""
        trace = small_trace(small_bank, length=30)
        fleet = protected_fleet(
            small_bank,
            cards=2,
            fault_spec=FaultSpec(card_kill_times_ns=((0.0, 0), (0.0, 1)), seed=5),
        )
        stats = fleet.run(trace)
        assert stats.completed == 0 and stats.rejected == stats.arrivals
        assert fleet.availability() < 0.5


class TestScrubService:
    def test_periodic_scrubbing_repairs_and_run_terminates(self, small_bank, small_trace, protected_fleet):
        trace = small_trace(small_bank, length=80, mean_interarrival_ns=20_000.0)
        fleet = protected_fleet(
            small_bank,
            scrub_period_ns=50_000.0,
            fault_spec=FaultSpec(
                process="targeted", upset_rate_per_s=2_000.0, seed=13
            ),
        )
        stats = fleet.run(trace)
        summary = fleet.fault_summary()
        assert stats.completed + stats.rejected == stats.arrivals
        assert summary["scrub_passes"] > 0
        assert summary["scrub_detected"] > 0
        assert summary["scrub_detected"] == summary["scrub_corrected"]
        assert summary["scrub_uncorrectable"] == 0

    def test_scrubbing_consumes_card_time(self, small_bank, small_trace, protected_fleet):
        trace = small_trace(small_bank, length=40)
        quiet = protected_fleet(small_bank, seed=3)
        scrubbed = protected_fleet(small_bank, seed=3, scrub_period_ns=20_000.0)
        quiet_stats = quiet.run(trace)
        scrub_stats = scrubbed.run(trace)
        assert scrubbed.fault_summary()["scrub_frames_checked"] > 0
        # Same requests completed, but scrub work exists on the busy meter.
        assert scrub_stats.completed == quiet_stats.completed
        assert sum(c.busy_ns for c in scrubbed.cards) > sum(
            c.busy_ns for c in quiet.cards
        )

    def test_tight_scrubbing_eliminates_silent_corruption(self, small_bank, small_trace, protected_fleet):
        trace = small_trace(small_bank, length=100, mean_interarrival_ns=40_000.0)
        spec = FaultSpec(process="targeted", upset_rate_per_s=1_000.0, seed=21)

        def run(scrub_period_ns):
            fleet = protected_fleet(
                small_bank,
                scrub_period_ns=scrub_period_ns,
                scrub_frames_per_order=64,
                fault_spec=spec,
            )
            stats = fleet.run(trace)
            return stats.hazard_completions

        loose = run(5_000_000.0)
        tight = run(5_000.0)
        assert tight <= loose

    def test_demand_scrub_guarantees_zero_silent_corruption(self, small_bank, small_trace, protected_fleet):
        """scrub_period_ns=0 (readback-before-use) closes the hazard window."""
        trace = small_trace(small_bank, length=120, mean_interarrival_ns=20_000.0)
        fleet = protected_fleet(
            small_bank,
            scrub_period_ns=0,
            fault_spec=FaultSpec(
                process="targeted", upset_rate_per_s=5_000.0, seed=23
            ),
        )
        stats = fleet.run(trace)
        assert stats.hazard_completions == 0
        assert fleet.fault_summary()["scrub_detected"] > 0
        # Every request paid a region check: scrub work scales with traffic.
        assert fleet.fault_summary()["scrub_frames_checked"] >= stats.completed


class TestFaultDeterminism:
    def test_identical_fault_runs_have_identical_fingerprints(self, small_bank, small_trace, protected_fleet):
        trace = small_trace(small_bank, length=60, mean_interarrival_ns=10_000.0)

        def run():
            fleet = protected_fleet(
                small_bank,
                scrub_period_ns=40_000.0,
                fault_spec=FaultSpec(
                    process="burst",
                    burst_bits=3,
                    upset_rate_per_s=1_500.0,
                    port_fault_rate_per_s=200.0,
                    port_fault_duration_ns=100_000.0,
                    card_kill_times_ns=((500_000.0, 2),),
                    seed=17,
                ),
            )
            fleet.run(trace)
            return fleet.fingerprint(), fleet.fault_summary()

        first = run()
        second = run()
        assert first == second

    def test_faults_change_the_schedule_digest(self, small_bank, small_trace, protected_fleet):
        trace = small_trace(small_bank, length=60, mean_interarrival_ns=10_000.0)
        clean = protected_fleet(small_bank)
        faulty = protected_fleet(
            small_bank,
            fault_spec=FaultSpec(card_kill_times_ns=((100_000.0, 0),), seed=3),
        )
        clean.run(trace)
        faulty.run(trace)
        assert clean.fingerprint() != faulty.fingerprint()
