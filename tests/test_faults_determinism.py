"""Cross-process byte-identity of the fault experiments.

``SeededRandom.fork`` is process-stable (FNV-1a, not salted ``hash()``), so a
fault environment — upset times, targets, kills, scrub schedules — must
reproduce byte-identically in a fresh interpreter.  These tests actually
spawn fresh interpreters and compare: one for the E10 cell machinery, one for
the perf-smoke ``faults`` section, both at tiny sizes.  A same-process rerun
would not catch salted-hash regressions; only a second process does.
"""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_E10_SNIPPET = """
import json, sys
sys.path.insert(0, "src")
sys.path.insert(0, ".")
from benchmarks.bench_e10_reliability import build_trace, run_cell
from repro.functions.bank import build_default_bank

bank = build_default_bank()
trace = build_trace(bank, duration_ns=2e6)
fleet, stats = run_cell(bank, trace, "affinity", 10_000.0, 100_000.0, kill=True)
print(repr(fleet.fingerprint()))
print(json.dumps(fleet.fault_summary(), sort_keys=True))
print(repr((stats.failovers, stats.hazard_completions, stats.heals_completed)))
"""

_SMOKE_SNIPPET = """
import sys
sys.path.insert(0, "src")
sys.path.insert(0, "benchmarks")
import perf_smoke

results = perf_smoke.bench_faults(
    upsets_per_round=4, scrub_rounds=2, fleet_cards=2, fleet_trace_length=16
)
sweep = results["scrub_sweep"]
fleet = results["fault_fleet"]
# Everything except the wall-clock rate fields must be process-invariant.
print(repr((sweep["frames_checked"], sweep["detected"], sweep["corrected"],
            sweep["uncorrectable"], sweep["final_time_ns"])))
print(repr((fleet["events_dispatched"], fleet["final_time_ns"], fleet["completed"],
            fleet["rejected"], fleet["failovers"], fleet["card_failures"],
            fleet["hazard_completions"], fleet["scrub_detected"],
            fleet["scrub_corrected"], fleet["schedule_digest"])))
"""


def run_snippet(snippet: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", snippet],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestCrossProcessDeterminism:
    def test_e10_cell_is_byte_identical_across_processes(self):
        first = run_snippet(_E10_SNIPPET)
        second = run_snippet(_E10_SNIPPET)
        assert first == second
        assert first.strip()

    def test_faults_smoke_fingerprints_are_byte_identical_across_processes(self):
        first = run_snippet(_SMOKE_SNIPPET)
        second = run_snippet(_SMOKE_SNIPPET)
        assert first == second
        assert first.strip()
