"""PCI behaviour with multiple cards sharing one event kernel.

Each card owns a full PCI stack (bus, bridge, driver) on its own card-local
clock; the shared :class:`Simulator` kernel interleaves their service
periods on the fleet timeline.  These tests pin down that N-card schedules
are deterministic: the same setup run twice must produce the identical
interleaving, fingerprint for fingerprint.
"""

import hashlib

from repro.core.builder import build_host_driver
from repro.core.config import SMALL_CONFIG
from repro.sim.kernel import Simulator, Timeout

REQUESTS = [
    ("crc32", b"abcd1234"),
    ("parity32", bytes(4)),
    ("adder8", bytes([7, 9])),
    ("popcount8", bytes([0xF0])),
    ("crc32", b"another payload"),
    ("adder8", bytes([1, 2])),
]


def run_two_cards(bank, stagger_ns=250.0):
    """Two cards on distinct buses drained by one kernel; returns the log."""
    drivers = [build_host_driver(config=SMALL_CONFIG, bank=bank) for _ in range(2)]
    simulator = Simulator()
    log = []

    def card_process(index, driver, delay_ns):
        yield Timeout(delay_ns)
        for name, payload in REQUESTS:
            before = driver.clock.now
            result = driver.call(name, payload)
            service_ns = driver.clock.now - before
            yield Timeout(service_ns)
            hit = result.card_result.hit if result.card_result else True
            log.append((simulator.clock.now, index, name, hit, result.output))

    for index, driver in enumerate(drivers):
        simulator.spawn(card_process(index, driver, index * stagger_ns))
    simulator.run()
    return drivers, simulator, log


def log_digest(log):
    digest = hashlib.sha256()
    for time_ns, index, name, hit, output in log:
        digest.update(f"{time_ns!r}|{index}|{name}|{int(hit)}|".encode())
        digest.update(output)
    return digest.hexdigest()


class TestTwoCardsOneKernel:
    def test_both_cards_complete_all_requests(self, small_bank):
        drivers, simulator, log = run_two_cards(small_bank)
        assert len(log) == 2 * len(REQUESTS)
        for index, driver in enumerate(drivers):
            served = [entry for entry in log if entry[1] == index]
            assert len(served) == len(REQUESTS)
            assert driver.bus.transactions_completed > 0

    def test_cards_interleave_on_the_kernel_timeline(self, small_bank):
        _, _, log = run_two_cards(small_bank)
        order = [index for _, index, *_ in log]
        # A correct shared-kernel schedule alternates between the cards; a
        # serialised schedule (all of card 0 then all of card 1) would mean
        # one card's local time leaked into the other's.
        assert order != sorted(order)
        assert {0, 1} <= set(order)

    def test_buses_are_isolated(self, small_bank):
        drivers, _, _ = run_two_cards(small_bank)
        bus0, bus1 = (driver.bus for driver in drivers)
        assert bus0 is not bus1
        assert bus0.clock is not bus1.clock
        # Both bridges enumerate from the same MMIO base: identical BAR
        # addresses on distinct buses must not collide.
        assert drivers[0].bridge.register_base("agile-coprocessor") == drivers[
            1
        ].bridge.register_base("agile-coprocessor")
        assert bus0.devices[0] is not bus1.devices[0]

    def test_card_clocks_advance_independently_of_kernel(self, small_bank):
        drivers, simulator, _ = run_two_cards(small_bank)
        for driver in drivers:
            # Card-local clocks measure service time only; the kernel clock
            # includes the stagger and any queueing, so it runs ahead.
            assert 0 < driver.clock.now <= simulator.clock.now

    def test_schedule_fingerprint_stable_across_runs(self, small_bank):
        first_drivers, first_sim, first_log = run_two_cards(small_bank)
        second_drivers, second_sim, second_log = run_two_cards(small_bank)
        assert (first_sim.events_dispatched, first_sim.clock.now) == (
            second_sim.events_dispatched,
            second_sim.clock.now,
        )
        assert log_digest(first_log) == log_digest(second_log)
        for first, second in zip(first_drivers, second_drivers):
            assert first.clock.now == second.clock.now
            assert first.bus.transactions_completed == second.bus.transactions_completed
            assert first.bus.bytes_transferred == second.bus.bytes_transferred

    def test_stagger_changes_interleaving_but_not_outputs(self, small_bank):
        _, _, tight = run_two_cards(small_bank, stagger_ns=0.0)
        _, _, loose = run_two_cards(small_bank, stagger_ns=10_000.0)
        outputs = lambda log: sorted(
            (index, name, output) for _, index, name, _, output in log
        )
        assert outputs(tight) == outputs(loose)
        assert log_digest(tight) != log_digest(loose)  # timing did change
