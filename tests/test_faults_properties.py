"""Property-based invariants of the fault/scrub/self-healing layer.

Two guarantees the reliability story rests on:

1. **Scrub soundness** — whatever bits an upset flips, the frame afterwards
   is either CRC-detected (and then repaired byte-identically to golden) or
   its canonical readback never changed in the first place (the flip landed
   in padding the CLB parser masks).  There is no third outcome.
2. **Request conservation under card kills** — however cards die, every
   arrival is eventually completed or rejected; the FleetStatistics counters
   balance exactly and nothing is silently dropped.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.builder import build_coprocessor, build_fleet
from repro.core.config import SMALL_CONFIG
from repro.faults import FaultSpec
from repro.functions.bank import build_small_bank
from repro.workloads.multitenant import default_tenant_mix, multi_tenant_trace

_BANK = build_small_bank()


def _protected_card():
    copro = build_coprocessor(config=SMALL_CONFIG, bank=_BANK)
    copro.enable_fault_protection()
    copro.preload("crc32")
    copro.preload("adder8")
    return copro


class TestScrubSoundness:
    @given(
        upsets=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),   # frame (flat index)
                st.integers(min_value=0, max_value=2000),  # bit offset (wrapped)
                st.integers(min_value=1, max_value=8),     # burst width
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_corruption_is_detected_or_byte_identical(self, upsets):
        copro = _protected_card()
        memory = copro.device.memory
        golden = copro.device.golden
        frames = copro.geometry.all_frames()
        total_bits = copro.geometry.frame_config_bytes * 8

        for flat, bit, burst in upsets:
            address = frames[flat % len(frames)]
            memory.corrupt_bit(address, bit % total_bits, bits=burst)

        # Every frame whose final readback differs from golden must fail its
        # CRC: the corruption is detectable, never silent at scrub time.
        # (Flips that cancelled out or landed in parser-masked padding leave
        # the frame byte-identical — the other arm of the dichotomy.)
        changed_frames = {
            address
            for address in frames
            if memory.read_frame(address) != golden.payload_for(address)
        }
        for address in changed_frames:
            assert not memory.frame_crc_ok(address)

        detected_before = copro.scrubber.stats.detected
        copro.scrubber.scrub_pass()
        detected = copro.scrubber.stats.detected - detected_before
        assert detected >= len(changed_frames)
        assert copro.scrubber.stats.uncorrectable == 0

        # After the pass every frame is byte-identical to its golden image
        # (zeros for unowned frames) and passes its check word.
        for address in frames:
            assert memory.read_frame(address) == golden.payload_for(address)
            assert memory.frame_crc_ok(address)

    @given(
        flat=st.integers(min_value=0, max_value=63),
        bit=st.integers(min_value=0, max_value=4000),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_flip_dichotomy(self, flat, bit):
        """One flip: either readback changed AND CRC fails, or neither."""
        copro = _protected_card()
        memory = copro.device.memory
        frames = copro.geometry.all_frames()
        address = frames[flat % len(frames)]
        total_bits = copro.geometry.frame_config_bytes * 8
        before = memory.read_frame(address)
        changed = memory.corrupt_bit(address, bit % total_bits)
        after = memory.read_frame(address)
        assert changed == (before != after)
        assert memory.frame_crc_ok(address) == (not changed)


class TestKilledCardConservation:
    @given(
        kills=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2_500_000.0),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=1,
            max_size=3,
            unique_by=lambda kill: kill[1],
        ),
        seed=st.integers(min_value=0, max_value=5),
        interarrival=st.sampled_from([4_000.0, 15_000.0, 40_000.0]),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_arrivals_are_completed_or_rejected_never_lost(
        self, kills, seed, interarrival
    ):
        trace = multi_tenant_trace(
            _BANK,
            default_tenant_mix(_BANK, tenants=2, skew=1.2),
            length=60,
            mean_interarrival_ns=interarrival,
            seed=seed,
        )
        fleet = build_fleet(
            cards=3,
            config=SMALL_CONFIG.with_overrides(seed=seed),
            bank=_BANK,
            policy="affinity",
            queue_depth=4,
            fault_tolerance=True,
            fault_spec=FaultSpec(
                card_kill_times_ns=tuple((t, i) for t, i in kills), seed=seed
            ),
        )
        stats = fleet.run(trace)
        # The conservation law: nothing in flight, nothing dropped.
        assert stats.arrivals == len(trace)
        assert stats.completed + stats.rejected == stats.arrivals
        assert all(card.outstanding == 0 for card in fleet.cards)
        assert len(fleet.cards[0].queue) == 0
        # Per-tenant views balance too.
        for tenant in stats.tenants():
            arrivals = stats.per_tenant_arrivals.get(tenant, 0)
            done = stats.per_tenant_completed.get(tenant, 0)
            rejected = stats.per_tenant_rejected.get(tenant, 0)
            assert done + rejected == arrivals
        # Every kill the injector actually fired took a card down (kills
        # scheduled after the fleet drained legitimately never fire), and
        # dispatch counters only name real cards.
        cards_down = sum(1 for card in fleet.cards if card.health == "down")
        assert cards_down == fleet.injector.cards_killed
        assert cards_down <= len({index for _, index in kills})
        card_names = {card.name for card in fleet.cards}
        assert set(stats.per_card_dispatched) <= card_names
