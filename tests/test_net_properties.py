"""Property-based invariants of the network front door.

The guarantee the whole E12 story rests on: **requests are conserved and
execute at most once**, for *any* combination of loss rate, retry budget,
admission pressure and deadline budget.  Concretely, after any front-door
run:

1. every issued request reaches exactly one client-visible fate
   (``net_completed + net_failed == net_requests``);
2. the fleet serves only what the gateways admitted, each admission reaches
   exactly one terminal verdict, and no request is admitted twice
   (``completed + rejected + expired == sum(admitted) <= net_requests``) —
   retransmits of an in-flight or served request hit the dedup cache, so a
   lost response can never cause a second execution;
3. every client completion is backed by a fleet execution
   (``net_completed <= completed``; the inequality is strict exactly when a
   response died on the downlink with no retransmit left to replay it);
4. link accounting closes: every offered packet is delivered, lost or
   tail-dropped.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_fleet, build_frontdoor
from repro.core.config import SMALL_CONFIG
from repro.functions.bank import build_small_bank
from repro.net import AdmissionConfig, LinkSpec, OpenLoopPopulation, TransportConfig
from repro.workloads.multitenant import default_tenant_mix, multi_tenant_trace

_BANK = build_small_bank()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    length=st.integers(min_value=1, max_value=40),
    loss=st.sampled_from([0.0, 0.05, 0.3]),
    retries=st.sampled_from([0, 1, 3]),
    shed=st.booleans(),
    deadline_ns=st.sampled_from([None, 2_000_000.0, 30_000_000.0]),
)
def test_requests_are_conserved_and_execute_at_most_once(
    seed, length, loss, retries, shed, deadline_ns
):
    tenants = default_tenant_mix(_BANK, tenants=2)
    trace = multi_tenant_trace(
        _BANK,
        tenants,
        length=length,
        mean_interarrival_ns=20_000.0,
        seed=seed,
    )
    fleet = build_fleet(
        cards=2, config=SMALL_CONFIG.with_overrides(seed=seed), bank=_BANK
    )
    frontdoor = build_frontdoor(
        fleet,
        seed=seed,
        gateways=2,
        uplink=LinkSpec(latency_ns=20_000.0, loss=loss, jitter_ns=4_000.0),
        transport=TransportConfig(max_retries=retries),
        admission=(
            AdmissionConfig(rate_per_s=60_000.0, burst=2.0) if shed else None
        ),
        priorities={tenants[0].name: 1},
        deadline_ns=deadline_ns,
    )
    frontdoor.add_population(OpenLoopPopulation(trace))
    stats = frontdoor.run()

    issued = len(trace)
    assert stats.net_requests == issued
    assert stats.net_completed + stats.net_failed == issued

    admitted = sum(gateway.admitted for gateway in frontdoor.gateways)
    assert stats.completed + stats.rejected + stats.expired == admitted
    assert admitted <= issued
    assert stats.net_completed <= stats.completed

    shed_attempts = sum(stats.per_priority_shed.values())
    assert shed_attempts == stats.shed_total
    if not shed:
        assert stats.shed_total == 0

    links = frontdoor.link_summary()
    assert links["delivered"] + links["lost"] + links["dropped"] == links["offered"]
    # Quiescence: nothing in flight, no orphaned dedup entries pointing at
    # work the fleet still owes a verdict for.
    assert frontdoor.transport.in_flight == 0
