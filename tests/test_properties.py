"""Property-based tests on cross-cutting invariants.

These complement the per-module property tests: they check the invariants
that hold *across* components — frame accounting between the mini OS and the
device, bit-stream download/reload consistency, and end-to-end output
equivalence between the co-processor and the reference behaviours.
"""

from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.bitstream.codecs import get_codec
from repro.bitstream.window import WindowedCompressor, WindowedDecompressor
from repro.core.builder import build_coprocessor
from repro.core.config import SMALL_CONFIG
from repro.functions.bank import build_small_bank
from repro.mcu.minios import MiniOs
from repro.fpga.geometry import FabricGeometry

_GEOMETRY = FabricGeometry(columns=4, rows=16, clb_rows_per_frame=4)
_BANK_NAMES = ["crc32", "parity32", "adder8", "popcount8"]


class TestMiniOsAccountingInvariant:
    """free frames + resident frames == device frames, whatever the request mix."""

    @given(
        requests=st.lists(
            st.tuples(st.sampled_from(["a", "b", "c", "d", "e"]), st.integers(min_value=1, max_value=6)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_frame_accounting(self, requests):
        minios = MiniOs(_GEOMETRY)
        clock_ns = 0.0
        for name, frames_needed in requests:
            clock_ns += 10.0
            try:
                decision = minios.plan_load(name, frames_needed, clock_ns)
            except Exception:
                continue
            if decision.hit:
                minios.touch(name, clock_ns)
                continue
            for victim in decision.evictions:
                minios.commit_eviction(victim)
            minios.commit_load(name, decision.region, clock_ns)
            minios.touch(name, clock_ns)
            resident = minios.table.resident_frame_count()
            assert resident + minios.free_frames.free_count == _GEOMETRY.frame_count
            # No frame is both free and resident.
            resident_addresses = {
                address for entry in minios.table for address in entry.region
            }
            assert not (resident_addresses & set(minios.free_frames.as_list()))


class TestWindowedCompressionInvariant:
    @given(
        data=st.binary(max_size=3000),
        codec_name=st.sampled_from(["null", "rle", "lz77", "huffman", "golomb", "framediff", "symmetry"]),
        window=st.integers(min_value=32, max_value=1024),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_codec_any_window_round_trips(self, data, codec_name, window):
        codec = get_codec(codec_name)
        image = WindowedCompressor(codec, window).compress(data)
        restored = WindowedDecompressor(image, get_codec(codec_name)).decompress_all()
        assert restored == data
        assert image.original_length == len(data)


class TestEndToEndEquivalence:
    """The co-processor's output always equals the reference software output,
    regardless of request order (i.e. of which reconfigurations happen)."""

    @given(
        sequence=st.lists(st.sampled_from(_BANK_NAMES), min_size=1, max_size=12),
        payload_seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_outputs_match_reference(self, sequence, payload_seed):
        bank = build_small_bank()
        copro = build_coprocessor(config=SMALL_CONFIG.with_overrides(seed=1), bank=bank)
        from repro.sim.rand import SeededRandom

        rng = SeededRandom(payload_seed)
        for name in sequence:
            data = rng.bytes(bank.by_name(name).spec.input_bytes)
            result = copro.execute(name, data)
            assert result.output == bank.by_name(name).behaviour(data)
        # The clock only ever moves forward and statistics stay consistent.
        assert copro.stats.requests == len(sequence)
        assert copro.stats.hits + copro.stats.misses == len(sequence)
