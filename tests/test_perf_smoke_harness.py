"""Tier-1 smoke coverage for the perf harness.

Every benchmark section runs at tiny sizes so the harness itself cannot rot,
and the ``--check`` comparison logic is exercised against synthetic baselines
in both the passing and the regressing direction.
"""

import json
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

import perf_smoke  # noqa: E402


class TestSectionsRunTiny:
    def test_codecs_section(self):
        results = perf_smoke.bench_codecs()
        assert set(results) == {"huffman", "golomb", "lz77", "rle", "framediff", "symmetry"}
        for entry in results.values():
            assert entry["compress_MBps"] > 0
            assert entry["decompress_MBps"] > 0

    def test_kernel_section_tiny(self):
        results = perf_smoke.bench_kernel(workers=4, rounds=10, repeats=2)
        assert results["events_dispatched"] > 0
        assert results["events_per_s"] > 0

    def test_device_section_tiny(self):
        results = perf_smoke.bench_device(
            netlist_bits=8, pipeline_rounds=2, replay_requests=8
        )
        assert set(results) == {"netlist_exec", "reconfig_pipeline", "trace_replay"}
        for name in ("adder", "parity"):
            entry = results["netlist_exec"][name]
            assert entry["runs_per_s"] > 0
            assert entry["speedup_vs_reference"] > 0
        assert results["reconfig_pipeline"]["misses"] >= results["reconfig_pipeline"]["requests"]
        assert results["trace_replay"]["requests"] == 8
        assert results["trace_replay"]["hits"] + results["trace_replay"]["misses"] == 8

    def test_cluster_section_tiny(self):
        results = perf_smoke.bench_cluster(cards=2, trace_length=24, tenants=2)
        assert set(results) == {"affinity", "round_robin", "reconfigs_avoided_by_affinity"}
        for policy in ("affinity", "round_robin"):
            entry = results[policy]
            assert entry["completed"] + entry["rejected"] == 24
            assert entry["requests_per_s"] > 0
            assert entry["events_dispatched"] > 0
            assert len(entry["schedule_digest"]) == 16
        avoided = results["reconfigs_avoided_by_affinity"]
        assert avoided is None or avoided >= 0

    def test_faults_section_tiny(self):
        results = perf_smoke.bench_faults(
            upsets_per_round=6, scrub_rounds=2, fleet_cards=2, fleet_trace_length=24
        )
        assert set(results) == {"scrub_sweep", "fault_fleet"}
        sweep = results["scrub_sweep"]
        assert sweep["frames_per_s"] > 0
        assert sweep["frames_checked"] > 0
        assert sweep["detected"] == sweep["corrected"]
        assert sweep["uncorrectable"] == 0
        fleet = results["fault_fleet"]
        assert fleet["completed"] + fleet["rejected"] == 24
        assert fleet["card_failures"] == 1
        assert fleet["requests_per_s"] > 0
        assert len(fleet["schedule_digest"]) == 16

    def test_rebalance_section_tiny(self):
        results = perf_smoke.bench_rebalance(
            fleet_cards=2, fleet_trace_length=24, defrag_cycles=2
        )
        assert set(results) == {"defrag_sweep", "rebalance_fleet"}
        sweep = results["defrag_sweep"]
        assert sweep["frames_moved"] > 0
        assert sweep["frames_moved_per_s"] > 0
        assert sweep["frag_after_last"] == 0.0
        fleet = results["rebalance_fleet"]
        assert fleet["completed"] + fleet["rejected"] == 24
        assert fleet["migrations_completed"] > 0
        assert fleet["migration_byte_diffs"] == 0
        assert fleet["requests_per_s"] > 0
        assert len(fleet["schedule_digest"]) == 16

    def test_net_section_tiny(self):
        results = perf_smoke.bench_net(trace_length=60)
        assert set(results) == {"frontdoor"}
        entry = results["frontdoor"]
        assert entry["net_requests"] == 60
        assert entry["net_completed"] + entry["net_failed"] == 60
        assert entry["requests_per_s"] > 0
        assert entry["events_dispatched"] > 0
        # The section must exercise the loss/retry and shed machinery, not
        # just a clean pass-through.
        assert entry["net_retries"] > 0
        assert entry["shed"] > 0
        assert len(entry["schedule_digest"]) == 16

    def test_net_fingerprints_are_deterministic(self):
        first = perf_smoke.bench_net(trace_length=40)
        second = perf_smoke.bench_net(trace_length=40)
        for key in (
            "events_dispatched",
            "final_time_ns",
            "net_completed",
            "net_retries",
            "shed",
            "packets_lost",
            "schedule_digest",
        ):
            assert first["frontdoor"][key] == second["frontdoor"][key], key

    def test_kernel_horizon_peek_subsection(self):
        results = perf_smoke._bench_horizon_peek(pending=64, pauses=50)
        assert results["dispatched_during_pauses"] == 0
        assert results["events_after_drain"] == 2 * 64  # starts + timeouts
        assert results["final_time_ns"] == 1_000_000.0 + 63
        assert results["pauses_per_s"] > 0

    def test_scale_section_tiny(self):
        results = perf_smoke.bench_scale(tiny=True)
        assert set(results) == {"tiny", "sharded"}  # fleet_1m skipped under tiny
        streaming = results["tiny"]
        assert streaming["completed"] + streaming["rejected"] == streaming["requests"]
        assert streaming["rejected"] == 0
        assert streaming["requests_per_s"] > 0
        assert len(streaming["schedule_digest"]) == 16
        # O(1)-memory statistics: the sketch footprint is a few hundred
        # buckets regardless of the request count.
        assert 0 < streaming["sketch_buckets"] < 1_000
        assert streaming["sojourn_p50_ns"] <= streaming["sojourn_p95_ns"]
        assert streaming["sojourn_p95_ns"] <= streaming["sojourn_p99_ns"]
        sharded = results["sharded"]
        assert sharded["digest_match"] is True
        assert sharded["completed"] + sharded["rejected"] == sharded["requests"]
        assert sharded["epochs"] >= 1

    def test_check_section_tiny(self):
        results = perf_smoke.bench_check(
            max_schedules=12, max_depth=6, max_branch=2, sampled=3
        )
        assert set(results) == {"explored", "sampled"}
        explored = results["explored"]
        assert explored["schedules"] == 12
        assert explored["distinct_choice_sequences"] == 12
        assert explored["violations"] == 0
        assert explored["schedules_per_s"] > 0
        assert explored["root_max_branching"] >= 2
        assert len(explored["outcome_sha"]) == 16
        sampled = results["sampled"]
        assert sampled["schedules"] == 3
        assert sampled["violations"] == 0
        assert sampled["max_depth_reached"] > 0

    def test_check_fingerprints_are_deterministic(self):
        first = perf_smoke.bench_check(
            max_schedules=8, max_depth=6, max_branch=2, sampled=2
        )
        second = perf_smoke.bench_check(
            max_schedules=8, max_depth=6, max_branch=2, sampled=2
        )
        for key in ("distinct_digests", "outcome_sha", "root_depth", "root_max_branching"):
            assert first["explored"][key] == second["explored"][key], key

    def test_rebalance_fingerprints_are_deterministic(self):
        first = perf_smoke.bench_rebalance(
            fleet_cards=2, fleet_trace_length=16, defrag_cycles=2
        )
        second = perf_smoke.bench_rebalance(
            fleet_cards=2, fleet_trace_length=16, defrag_cycles=2
        )
        assert first["defrag_sweep"]["final_time_ns"] == second["defrag_sweep"]["final_time_ns"]
        assert first["defrag_sweep"]["frames_moved"] == second["defrag_sweep"]["frames_moved"]
        assert (
            first["rebalance_fleet"]["schedule_digest"]
            == second["rebalance_fleet"]["schedule_digest"]
        )
        assert (
            first["rebalance_fleet"]["final_time_ns"]
            == second["rebalance_fleet"]["final_time_ns"]
        )

    def test_faults_fingerprints_are_deterministic(self):
        first = perf_smoke.bench_faults(
            upsets_per_round=4, scrub_rounds=2, fleet_cards=2, fleet_trace_length=16
        )
        second = perf_smoke.bench_faults(
            upsets_per_round=4, scrub_rounds=2, fleet_cards=2, fleet_trace_length=16
        )
        assert (
            first["scrub_sweep"]["final_time_ns"]
            == second["scrub_sweep"]["final_time_ns"]
        )
        assert first["scrub_sweep"]["detected"] == second["scrub_sweep"]["detected"]
        assert (
            first["fault_fleet"]["schedule_digest"]
            == second["fault_fleet"]["schedule_digest"]
        )
        assert (
            first["fault_fleet"]["final_time_ns"]
            == second["fault_fleet"]["final_time_ns"]
        )

    def test_cluster_fingerprints_are_deterministic(self):
        first = perf_smoke.bench_cluster(cards=2, trace_length=16, tenants=2)
        second = perf_smoke.bench_cluster(cards=2, trace_length=16, tenants=2)
        for policy in ("affinity", "round_robin"):
            assert first[policy]["schedule_digest"] == second[policy]["schedule_digest"]
            assert first[policy]["final_time_ns"] == second[policy]["final_time_ns"]

    def test_device_fingerprints_are_deterministic(self):
        first = perf_smoke.bench_device(netlist_bits=8, pipeline_rounds=1, replay_requests=6)
        second = perf_smoke.bench_device(netlist_bits=8, pipeline_rounds=1, replay_requests=6)
        assert (
            first["netlist_exec"]["output_digest"]
            == second["netlist_exec"]["output_digest"]
        )
        assert first["trace_replay"]["final_time_ns"] == second["trace_replay"]["final_time_ns"]
        assert first["trace_replay"]["output_digest"] == second["trace_replay"]["output_digest"]


class TestCheckMode:
    def test_rate_regression_is_flagged_and_fingerprint_mismatch_detected(self):
        baseline = {"section": {"requests_per_s": 100.0, "final_time_ns": 5.0, "elapsed_s": 1.0}}
        fresh_ok = {"section": {"requests_per_s": 80.0, "final_time_ns": 5.0, "elapsed_s": 9.0}}
        problems = []
        perf_smoke._compare(baseline, fresh_ok, 0.5, "root", problems)
        assert problems == []  # 80 >= 100*(1-0.5); elapsed_s ignored

        fresh_slow = {"section": {"requests_per_s": 40.0, "final_time_ns": 5.0}}
        problems = []
        perf_smoke._compare(baseline, fresh_slow, 0.5, "root", problems)
        assert len(problems) == 1 and "requests_per_s" in problems[0]

        fresh_drifted = {"section": {"requests_per_s": 100.0, "final_time_ns": 6.0}}
        problems = []
        perf_smoke._compare(baseline, fresh_drifted, 0.5, "root", problems)
        assert len(problems) == 1 and "fingerprint" in problems[0]

    def test_tiny_prunes_skipped_scale_keys(self, tmp_path, monkeypatch):
        baseline = {
            "tiny": {"requests_per_s": 10.0},
            "fleet_1m": {"requests_per_s": 10.0},
        }
        (tmp_path / perf_smoke.SECTIONS["scale"][1]).write_text(json.dumps(baseline))
        monkeypatch.setattr(perf_smoke, "REPO_ROOT", tmp_path)
        fresh = {"scale": {"tiny": {"requests_per_s": 10.0}}}
        assert perf_smoke.check_against_baselines(fresh, 0.5, tiny=True) == []
        problems = perf_smoke.check_against_baselines(fresh, 0.5, tiny=False)
        assert problems and "fleet_1m" in problems[0]

    def test_tiny_write_mode_refused(self):
        with pytest.raises(SystemExit):
            perf_smoke.main(["--tiny", "--sections", "kernel"])

    def test_missing_key_is_flagged(self):
        problems = []
        perf_smoke._compare({"a": {"b_per_s": 1.0}}, {"a": {}}, 0.5, "root", problems)
        assert problems and "missing" in problems[0]

    def test_committed_baselines_have_expected_shape(self):
        repo_root = BENCH_DIR.parent
        for section, (_, filename) in perf_smoke.SECTIONS.items():
            path = repo_root / filename
            assert path.exists(), f"{filename} must be committed at the repo root"
            data = json.loads(path.read_text())
            assert isinstance(data, dict) and data

    def test_unknown_section_rejected(self):
        with pytest.raises(SystemExit):
            perf_smoke.main(["--sections", "nonsense"])
