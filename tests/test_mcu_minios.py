"""Tests for the mini OS data structures: free frame list, replacement table,
policies and the load-planning logic."""

import pytest

from repro.fpga.frame import FrameRegion
from repro.mcu.minios import (
    BeladyPolicy,
    FifoPolicy,
    FrameReplacementTable,
    FreeFrameList,
    LfuPolicy,
    LruPolicy,
    MiniOs,
    RandomPolicy,
    build_policy,
)
from repro.mcu.minios.policies import CapacityError, available_policies


def _region(geometry, indices):
    return FrameRegion.from_addresses([geometry.frame_at(index) for index in indices])


class TestFreeFrameList:
    def test_starts_with_every_frame_free(self, tiny_geometry):
        free = FreeFrameList(tiny_geometry)
        assert free.free_count == tiny_geometry.frame_count
        assert free.largest_contiguous_run() == tiny_geometry.frame_count

    def test_allocate_and_release(self, tiny_geometry):
        free = FreeFrameList(tiny_geometry)
        region = _region(tiny_geometry, [0, 1, 2])
        free.allocate(region)
        assert free.free_count == tiny_geometry.frame_count - 3
        assert tiny_geometry.frame_at(0) not in free
        free.release(region)
        assert free.free_count == tiny_geometry.frame_count

    def test_double_allocation_rejected(self, tiny_geometry):
        free = FreeFrameList(tiny_geometry)
        region = _region(tiny_geometry, [5])
        free.allocate(region)
        with pytest.raises(ValueError):
            free.allocate(region)

    def test_largest_contiguous_run_with_fragmentation(self, tiny_geometry):
        free = FreeFrameList(tiny_geometry)
        free.allocate(_region(tiny_geometry, [3, 8]))
        # Runs: 0-2 (3), 4-7 (4), 9-15 (7).
        assert free.largest_contiguous_run() == 7

    def test_can_host_and_clear(self, tiny_geometry):
        free = FreeFrameList(tiny_geometry)
        free.allocate(_region(tiny_geometry, range(10)))
        assert free.can_host(6)
        assert not free.can_host(7)
        free.clear()
        assert free.free_count == tiny_geometry.frame_count

    def test_as_list_is_sorted(self, tiny_geometry):
        free = FreeFrameList(tiny_geometry, initially_free=[tiny_geometry.frame_at(9), tiny_geometry.frame_at(2)])
        indices = [address.flat_index(tiny_geometry.tiles_per_column) for address in free.as_list()]
        assert indices == [2, 9]


class TestFrameReplacementTable:
    def test_insert_touch_remove(self, tiny_geometry):
        table = FrameReplacementTable()
        table.insert("aes128", _region(tiny_geometry, [0, 1]), now_ns=100.0)
        assert "aes128" in table and len(table) == 1
        table.touch("aes128", 250.0)
        entry = table.entry("aes128")
        assert entry.last_access_ns == 250.0 and entry.access_count == 1
        removed = table.remove("aes128")
        assert removed.frame_count == 2 and "aes128" not in table

    def test_duplicate_insert_rejected(self, tiny_geometry):
        table = FrameReplacementTable()
        table.insert("x", _region(tiny_geometry, [0]), 0.0)
        with pytest.raises(ValueError):
            table.insert("x", _region(tiny_geometry, [1]), 0.0)

    def test_missing_entry_rejected(self):
        table = FrameReplacementTable()
        with pytest.raises(KeyError):
            table.entry("ghost")
        with pytest.raises(KeyError):
            table.remove("ghost")

    def test_oldest_by_last_access(self, tiny_geometry):
        table = FrameReplacementTable()
        assert table.oldest_by_last_access() is None
        table.insert("old", _region(tiny_geometry, [0]), 10.0)
        table.insert("new", _region(tiny_geometry, [1]), 20.0)
        table.touch("old", 30.0)
        assert table.oldest_by_last_access().name == "new"

    def test_resident_frame_count_and_describe(self, tiny_geometry):
        table = FrameReplacementTable()
        table.insert("a", _region(tiny_geometry, [0, 1]), 0.0)
        table.insert("b", _region(tiny_geometry, [2]), 1.0)
        assert table.resident_frame_count() == 3
        assert "a" in table.describe(now_ns=10.0)


class TestPolicies:
    def _table(self, tiny_geometry):
        table = FrameReplacementTable()
        table.insert("first", _region(tiny_geometry, [0, 1]), now_ns=10.0)    # oldest load
        table.insert("second", _region(tiny_geometry, [2, 3, 4]), now_ns=20.0)
        table.insert("third", _region(tiny_geometry, [5]), now_ns=30.0)
        table.touch("first", 100.0)   # recently used, frequently used
        table.touch("first", 110.0)
        table.touch("second", 50.0)
        return table

    def test_lru_evicts_oldest_timestamp(self, tiny_geometry):
        table = self._table(tiny_geometry)
        ranked = LruPolicy().rank_victims(table, now_ns=200.0)
        assert [entry.name for entry in ranked] == ["third", "second", "first"]

    def test_fifo_evicts_oldest_load(self, tiny_geometry):
        table = self._table(tiny_geometry)
        ranked = FifoPolicy().rank_victims(table, now_ns=200.0)
        assert [entry.name for entry in ranked] == ["first", "second", "third"]

    def test_lfu_evicts_least_accessed(self, tiny_geometry):
        table = self._table(tiny_geometry)
        ranked = LfuPolicy().rank_victims(table, now_ns=200.0)
        assert ranked[0].name == "third"

    def test_random_is_seed_deterministic(self, tiny_geometry):
        table = self._table(tiny_geometry)
        first = [entry.name for entry in RandomPolicy(seed=3).rank_victims(table, 0.0)]
        second = [entry.name for entry in RandomPolicy(seed=3).rank_victims(table, 0.0)]
        assert first == second
        assert sorted(first) == ["first", "second", "third"]

    def test_belady_uses_future_knowledge(self, tiny_geometry):
        table = self._table(tiny_geometry)
        future = ["third", "first"]  # "second" is never used again
        ranked = BeladyPolicy().rank_victims(table, 0.0, future_requests=future)
        assert ranked[0].name == "second"

    def test_belady_without_future_falls_back_to_lru(self, tiny_geometry):
        table = self._table(tiny_geometry)
        assert [entry.name for entry in BeladyPolicy().rank_victims(table, 0.0)] == [
            entry.name for entry in LruPolicy().rank_victims(table, 0.0)
        ]

    def test_select_victims_frees_enough_frames(self, tiny_geometry):
        table = self._table(tiny_geometry)
        victims = LruPolicy().select_victims(table, frames_needed=4, free_frames=0, now_ns=200.0)
        assert sum(victim.frame_count for victim in victims) >= 4
        assert victims[0].name == "third"

    def test_select_victims_respects_protection(self, tiny_geometry):
        table = self._table(tiny_geometry)
        victims = LruPolicy().select_victims(
            table, frames_needed=1, free_frames=0, now_ns=200.0, protect={"third"}
        )
        assert victims[0].name == "second"

    def test_select_victims_no_op_when_enough_free(self, tiny_geometry):
        table = self._table(tiny_geometry)
        assert LruPolicy().select_victims(table, frames_needed=2, free_frames=5, now_ns=0.0) == []

    def test_capacity_error_when_nothing_left_to_evict(self, tiny_geometry):
        table = self._table(tiny_geometry)
        with pytest.raises(CapacityError):
            LruPolicy().select_victims(table, frames_needed=100, free_frames=0, now_ns=0.0)

    def test_policy_registry(self):
        assert set(available_policies()) == {"lru", "fifo", "lfu", "random", "belady"}
        assert build_policy("lru").name == "lru"
        assert build_policy("random", seed=5).name == "random"
        with pytest.raises(KeyError):
            build_policy("arc")


class TestMiniOs:
    def test_hit_when_already_resident(self, tiny_geometry):
        minios = MiniOs(tiny_geometry)
        decision = minios.plan_load("aes128", 2, now_ns=0.0)
        assert not decision.hit
        minios.commit_load("aes128", decision.region, 0.0)
        second = minios.plan_load("aes128", 2, now_ns=10.0)
        assert second.hit and second.region is None
        assert minios.stats.hits == 1 and minios.stats.misses == 1

    def test_miss_without_eviction_uses_free_frames(self, tiny_geometry):
        minios = MiniOs(tiny_geometry)
        decision = minios.plan_load("sha1", 3, now_ns=0.0)
        assert decision.evictions == []
        assert len(decision.region) == 3
        minios.commit_load("sha1", decision.region, 0.0)
        assert minios.free_frames.free_count == tiny_geometry.frame_count - 3

    def test_eviction_planned_when_fabric_full(self, tiny_geometry):
        minios = MiniOs(tiny_geometry)
        # Fill the fabric with two functions.
        for name, frames in (("a", 10), ("b", 6)):
            decision = minios.plan_load(name, frames, now_ns=0.0)
            minios.commit_load(name, decision.region, 0.0)
        minios.touch("a", 50.0)  # make "b" the LRU victim
        decision = minios.plan_load("c", 4, now_ns=60.0)
        assert decision.evictions == ["b"]
        # Execute the plan: evict then load.
        for victim in decision.evictions:
            minios.commit_eviction(victim)
        minios.commit_load("c", decision.region, 60.0)
        assert not minios.is_resident("b")
        assert minios.is_resident("c")
        assert minios.stats.evictions == 1
        assert minios.stats.frames_evicted == 6

    def test_capacity_error_for_oversized_function(self, tiny_geometry):
        minios = MiniOs(tiny_geometry)
        with pytest.raises(CapacityError):
            minios.plan_load("huge", tiny_geometry.frame_count + 1, now_ns=0.0)
        assert minios.stats.capacity_failures == 1

    def test_reset(self, tiny_geometry):
        minios = MiniOs(tiny_geometry)
        decision = minios.plan_load("x", 2, 0.0)
        minios.commit_load("x", decision.region, 0.0)
        minios.reset()
        assert not minios.is_resident("x")
        assert minios.free_frames.free_count == tiny_geometry.frame_count
        assert minios.stats.requests == 0

    def test_describe(self, tiny_geometry):
        minios = MiniOs(tiny_geometry)
        assert "policy=lru" in minios.describe()
