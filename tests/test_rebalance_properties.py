"""Property-based invariants of live migration and defragmentation.

The two guarantees the rebalance story rests on:

1. **Migration is byte-exact** — for any resident function and any prior
   load/evict history on the destination (i.e. any destination free-space
   shape), migrate(source → dest) leaves the destination's readback
   byte-identical to the source's, slot for slot, with every CRC check word
   valid and the golden image stores consistent on both cards.  Placement may
   differ — that is the *relocatable* part — but never a payload byte.

2. **Defragmentation is a permutation** — for any load/evict history, a
   defrag pass preserves each function's payload *sequence* exactly (the same
   bytes in the same slot order, possibly at new addresses), preserves the
   exact owned-frame multiset sizes, keeps every ``ConfigurationMemory``
   index consistent with a naive full scan, and never decreases the largest
   contiguous free run.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.builder import build_coprocessor
from repro.core.config import SMALL_CONFIG
from repro.core.host import build_host_system
from repro.core.exceptions import CoprocessorError
from repro.functions.bank import build_small_bank

_BANK = build_small_bank()
_NAMES = _BANK.names()

#: A load/evict history: (function index, evict?) pairs applied in order.
_HISTORY = st.lists(
    st.tuples(st.integers(min_value=0, max_value=len(_NAMES) - 1), st.booleans()),
    min_size=0,
    max_size=10,
)


def _protected_driver(seed=17):
    coprocessor = build_coprocessor(config=SMALL_CONFIG.with_overrides(seed=seed), bank=_BANK)
    coprocessor.enable_fault_protection()
    coprocessor.enable_defrag()
    return build_host_system(coprocessor)


def _apply_history(driver, history) -> None:
    for index, evict in history:
        name = _NAMES[index]
        try:
            if evict:
                driver.evict(name)
            else:
                driver.preload(name)
        except CoprocessorError:
            pass  # capacity refusals are part of a legitimate history


def _assert_memory_indexes_consistent(coprocessor) -> None:
    """Every O(1) ownership index answers exactly like a naive full scan."""
    memory = coprocessor.device.memory
    geometry = coprocessor.geometry
    frames = geometry.all_frames()
    naive_unowned = [a for a in frames if memory.owner_of(a) is None]
    assert memory.unowned_frames() == naive_unowned
    for name in coprocessor.minios.resident_functions():
        naive = [a for a in frames if memory.owner_of(a) == name]
        assert memory.owned_frames(name) == naive
    owned = geometry.frame_count - len(naive_unowned)
    assert memory.utilisation() == owned / geometry.frame_count
    # The mini OS's free list is the same set as the device's free index.
    assert coprocessor.minios.free_frames.as_list() == memory.unowned_frames()


class TestMigrationByteExactness:
    @given(
        function=st.integers(min_value=0, max_value=len(_NAMES) - 1),
        dest_history=_HISTORY,
        seed=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_migrate_preserves_bytes_crc_and_golden(self, function, dest_history, seed):
        name = _NAMES[function]
        # Fleet cards are identically configured (same bank, same seed): a
        # restore landing on a card that already holds the function is a hit
        # on the *same* image, which is what makes it a legitimate no-op.
        source = _protected_driver(seed)
        dest = _protected_driver(seed)
        _apply_history(dest, dest_history)
        source.preload(name)
        source_payloads = source.coprocessor.device.readback(name)

        blob = source.capture_function(name)
        try:
            dest.restore_function(name, blob)
        except CoprocessorError:
            # The destination's history can leave too little capacity even
            # after eviction planning; a refused restore must leave the
            # source fully serviceable and the destination untouched.
            assert source.card.is_resident(name)
            assert source.coprocessor.device.readback(name) == source_payloads
            return
        source.evict(name)

        dest_device = dest.coprocessor.device
        # Byte-identical modulo the address rebase: same payloads, same slot
        # order, wherever the destination's mini OS placed them.
        assert dest_device.readback(name) == source_payloads
        for address in dest_device.region_of(name):
            assert dest_device.memory.frame_crc_ok(address)
        # Golden stores are consistent on both cards: captured on the
        # destination, released on the source.
        golden = dest_device.golden
        for address, payload in zip(dest_device.region_of(name), source_payloads):
            assert golden.payload_for(address) == payload
        source_device = source.coprocessor.device
        for address in source_device.memory.unowned_frames():
            assert address not in source_device.golden or (
                source_device.golden.payload_for(address)
                == source_device.memory.read_frame(address)
            )
        _assert_memory_indexes_consistent(source.coprocessor)
        _assert_memory_indexes_consistent(dest.coprocessor)


class TestDefragPermutation:
    @given(
        history=_HISTORY,
        budget=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
        seed=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_defrag_preserves_functions_and_invariants(self, history, budget, seed):
        driver = _protected_driver(seed)
        _apply_history(driver, history)
        coprocessor = driver.coprocessor
        device = coprocessor.device
        resident = coprocessor.minios.resident_functions()
        readbacks = {fn: device.readback(fn) for fn in resident}
        owned_counts = {fn: len(device.region_of(fn)) for fn in resident}
        run_before = coprocessor.minios.free_frames.largest_contiguous_run()

        coprocessor.defrag(max_moves=budget)

        # Exact owned-frame multiset: same functions, same frame counts.
        assert coprocessor.minios.resident_functions() == resident
        for fn in resident:
            assert len(device.region_of(fn)) == owned_counts[fn]
            # Payload sequence preserved byte for byte, slot for slot.
            assert device.readback(fn) == readbacks[fn]
            for address in device.region_of(fn):
                assert device.memory.frame_crc_ok(address)
                assert device.golden.payload_for(address) == device.memory.read_frame(
                    address
                )
        # Compaction never fragments: the largest free run cannot shrink.
        assert coprocessor.minios.free_frames.largest_contiguous_run() >= run_before
        _assert_memory_indexes_consistent(coprocessor)
        # Vacated frames really are erased (a relocation must not leave
        # ghost configuration behind for the scrubber to "repair").
        for address in device.memory.unowned_frames():
            assert device.memory.frames[address].is_clear

    @given(history=_HISTORY, seed=st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_full_defrag_reaches_zero_fragmentation(self, history, seed):
        driver = _protected_driver(seed)
        _apply_history(driver, history)
        coprocessor = driver.coprocessor
        coprocessor.defrag()
        # An unbounded pass over this geometry always converges: every
        # function ends packed and the free space is one contiguous run.
        assert coprocessor.defragmenter.fragmentation() == 0.0
