"""Tests for function records and the two-ended ROM layout."""

import pytest

from repro.memory.errors import RomFullError, RomLookupError
from repro.memory.records import FunctionRecord, RecordTable
from repro.memory.rom import ConfigurationRom
from repro.memory.timing import MemoryTiming
from repro.sim.clock import Clock


def _record(name="aes128", function_id=1, start=0, size=128):
    return FunctionRecord(
        function_id=function_id,
        name=name,
        start_address=start,
        compressed_size=size,
        uncompressed_size=size * 3,
        input_bytes=16,
        output_bytes=16,
        frame_count=4,
        codec_name="rle",
    )


class TestFunctionRecord:
    def test_pack_unpack_round_trip(self):
        record = _record()
        rebuilt = FunctionRecord.unpack(record.pack())
        assert rebuilt == record
        assert len(record.pack()) == FunctionRecord.packed_size()

    def test_end_address(self):
        assert _record(start=100, size=28).end_address == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            _record(name="x" * 17)
        with pytest.raises(ValueError):
            FunctionRecord(1, "ok", 0, 10, 10, 1, 1, 0, "rle")
        with pytest.raises(ValueError):
            FunctionRecord(1, "ok", -1, 10, 10, 1, 1, 1, "rle")
        with pytest.raises(ValueError):
            FunctionRecord(1, "ok", 0, 10, 10, 1, 1, 1, "a-very-long-codec-name")

    def test_unpack_short_buffer(self):
        with pytest.raises(ValueError):
            FunctionRecord.unpack(b"\x00" * 4)


class TestRecordTable:
    def test_add_and_lookup(self):
        table = RecordTable()
        table.add(_record("aes128", 1))
        table.add(_record("des", 2, start=128))
        assert table.by_name("des").function_id == 2
        assert table.by_id(1).name == "aes128"
        assert "aes128" in table and "ghost" not in table
        assert table.names() == ["aes128", "des"]

    def test_duplicates_rejected(self):
        table = RecordTable()
        table.add(_record("aes128", 1))
        with pytest.raises(ValueError):
            table.add(_record("aes128", 9))
        with pytest.raises(ValueError):
            table.add(_record("other", 1))

    def test_missing_lookup_raises(self):
        table = RecordTable()
        with pytest.raises(KeyError):
            table.by_name("nope")
        with pytest.raises(KeyError):
            table.by_id(9)

    def test_pack_unpack_round_trip(self):
        table = RecordTable()
        table.add(_record("aes128", 1))
        table.add(_record("des", 2, start=128))
        rebuilt = RecordTable.unpack(table.pack(), count=2)
        assert rebuilt.names() == table.names()
        assert rebuilt.packed_size == table.packed_size


class TestConfigurationRom:
    def _rom(self, capacity=64 * 1024):
        return ConfigurationRom(capacity, clock=Clock())

    def test_download_populates_both_ends(self):
        rom = self._rom()
        image = b"\xAB" * 1000
        record = rom.download(1, "aes128", image, 3000, 16, 16, 4, "rle")
        assert record.start_address == 0
        assert rom.bitstream_bytes_used == 1000
        assert rom.record_bytes_used == FunctionRecord.packed_size()
        assert rom.free_bytes == rom.capacity_bytes - 1000 - FunctionRecord.packed_size()
        assert 0.0 < rom.utilisation < 1.0

    def test_sequential_downloads_stack(self):
        rom = self._rom()
        rom.download(1, "a", b"\x01" * 100, 300, 1, 1, 1, "rle")
        record = rom.download(2, "b", b"\x02" * 50, 150, 1, 1, 1, "rle")
        assert record.start_address == 100
        assert len(rom.record_table) == 2

    def test_collision_between_areas_rejected(self):
        rom = self._rom(capacity=1024)
        with pytest.raises(RomFullError):
            rom.download(1, "big", b"\x00" * 1024, 1, 1, 1, 1, "rle")
        # A bit-stream that fits the data area but not data + record also fails.
        with pytest.raises(RomFullError):
            rom.download(1, "big", b"\x00" * (1024 - 10), 1, 1, 1, 1, "rle")

    def test_read_returns_stored_bytes_and_advances_clock(self):
        rom = self._rom()
        rom.download(1, "a", bytes(range(100)), 300, 1, 1, 1, "rle")
        before = rom.clock.now
        assert rom.read(0, 100) == bytes(range(100))
        assert rom.clock.now > before
        assert rom.total_bytes_read == 100

    def test_read_out_of_range_rejected(self):
        rom = self._rom(capacity=256)
        with pytest.raises(ValueError):
            rom.read(200, 100)

    def test_read_bitstream_chunked_matches_whole(self):
        rom = self._rom()
        image = bytes((index * 13) % 256 for index in range(1000))
        rom.download(5, "fir16", image, 2000, 256, 256, 3, "lz77")
        whole = b"".join(rom.read_bitstream("fir16"))
        chunked = b"".join(rom.read_bitstream("fir16", chunk_bytes=128))
        assert whole == image and chunked == image
        with pytest.raises(ValueError):
            list(rom.read_bitstream("fir16", chunk_bytes=0))

    def test_unknown_function_lookup(self):
        rom = self._rom()
        with pytest.raises(RomLookupError):
            rom.record_for("ghost")

    def test_record_table_readback_preserves_order(self):
        rom = self._rom()
        rom.download(1, "first", b"\x01" * 10, 30, 1, 1, 1, "rle")
        rom.download(2, "second", b"\x02" * 10, 30, 1, 1, 1, "rle")
        rom.download(3, "third", b"\x03" * 10, 30, 1, 1, 1, "rle")
        table = rom.read_record_table()
        assert table.names() == ["first", "second", "third"]

    def test_empty_record_table_readback(self):
        rom = self._rom()
        assert len(rom.read_record_table()) == 0

    def test_layout_summary(self):
        rom = self._rom()
        rom.download(1, "a", b"\x00" * 64, 128, 1, 1, 1, "rle")
        summary = rom.layout_summary()
        assert summary["functions"] == 1
        assert summary["bitstream_bytes"] == 64
        assert summary["capacity_bytes"] == rom.capacity_bytes

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ConfigurationRom(0)

    def test_timing_model_validation(self):
        with pytest.raises(ValueError):
            MemoryTiming(access_latency_ns=-1.0)
        with pytest.raises(ValueError):
            MemoryTiming(bandwidth_bytes_per_ns=0.0)
        timing = MemoryTiming(access_latency_ns=10.0, bandwidth_bytes_per_ns=0.5)
        assert timing.transfer_time_ns(0) == 0.0
        assert timing.transfer_time_ns(100) == pytest.approx(10.0 + 200.0)
        with pytest.raises(ValueError):
            timing.transfer_time_ns(-1)
