"""Multi-tenant open-arrival trace generation."""

import hashlib

import pytest

from repro.functions.bank import build_small_bank
from repro.workloads.multitenant import (
    FleetRequest,
    FleetTrace,
    TenantSpec,
    default_tenant_mix,
    multi_tenant_trace,
)


@pytest.fixture(scope="module")
def bank():
    return build_small_bank()


def trace_digest(trace):
    digest = hashlib.sha256()
    for request in trace:
        digest.update(
            f"{request.tenant}|{request.function}|{request.arrival_ns!r}|".encode()
        )
        digest.update(request.payload)
    return digest.hexdigest()


class TestTenantSpec:
    def test_rejects_bad_weight_and_mix(self):
        with pytest.raises(ValueError):
            TenantSpec(name="t", weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", functions=())
        with pytest.raises(ValueError):
            TenantSpec(name="t", mix="nonsense")
        with pytest.raises(ValueError):
            TenantSpec(name="t", mix="phased", phase_length=0)

    def test_default_mix_staggers_rank_offsets(self, bank):
        specs = default_tenant_mix(bank, tenants=3, skew=1.0)
        assert [spec.rank_offset for spec in specs] == [0, 1, 2]
        assert len({spec.name for spec in specs}) == 3


class TestMultiTenantTrace:
    def test_deterministic_across_generations(self, bank):
        specs = default_tenant_mix(bank, tenants=3, skew=1.2)
        first = multi_tenant_trace(bank, specs, length=120, seed=42)
        second = multi_tenant_trace(bank, specs, length=120, seed=42)
        assert trace_digest(first) == trace_digest(second)

    def test_seed_changes_trace(self, bank):
        specs = default_tenant_mix(bank, tenants=3)
        first = multi_tenant_trace(bank, specs, length=120, seed=1)
        second = multi_tenant_trace(bank, specs, length=120, seed=2)
        assert trace_digest(first) != trace_digest(second)

    def test_arrivals_are_sorted_and_open(self, bank):
        specs = default_tenant_mix(bank, tenants=2)
        trace = multi_tenant_trace(bank, specs, length=80, mean_interarrival_ns=1000.0, seed=5)
        arrivals = [request.arrival_ns for request in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0.0
        assert trace.duration_ns == arrivals[-1]

    def test_every_tenant_contributes(self, bank):
        specs = default_tenant_mix(bank, tenants=3)
        trace = multi_tenant_trace(bank, specs, length=300, seed=3)
        counts = trace.per_tenant_counts()
        assert set(counts) == {"tenant0", "tenant1", "tenant2"}
        assert all(count > 0 for count in counts.values())
        assert sum(counts.values()) == 300

    def test_weights_shift_traffic_shares(self, bank):
        heavy = TenantSpec(name="heavy", weight=9.0, functions=tuple(bank.names()))
        light = TenantSpec(name="light", weight=1.0, functions=tuple(bank.names()))
        trace = multi_tenant_trace(bank, [heavy, light], length=400, seed=4)
        counts = trace.per_tenant_counts()
        assert counts["heavy"] > 3 * counts["light"]

    def test_rank_offset_rotates_hot_function(self, bank):
        names = bank.names()
        for offset in range(len(names)):
            spec = TenantSpec(
                name="t", mix="zipf", skew=2.5, functions=tuple(names), rank_offset=offset
            )
            trace = multi_tenant_trace(bank, [spec], length=200, seed=6)
            counts = trace.function_counts()
            hottest = max(counts, key=counts.get)
            assert hottest == names[offset]

    def test_phased_tenant_changes_working_set(self, bank):
        spec = TenantSpec(
            name="t", mix="phased", functions=tuple(bank.names()),
            phase_length=50, working_set=1,
        )
        trace = multi_tenant_trace(bank, [spec], length=200, seed=8)
        functions = [request.function for request in trace]
        # With a working set of one, each 50-request phase is a constant run;
        # across 4 phases at least two distinct functions must appear.
        assert len(set(functions)) >= 2
        for start in range(0, 200, 50):
            assert len(set(functions[start : start + 50])) == 1

    def test_bursty_arrivals_are_deterministic_and_clustered(self, bank):
        specs = default_tenant_mix(bank, tenants=2)
        first = multi_tenant_trace(
            bank, specs, length=150, arrival="bursty", mean_interarrival_ns=10_000.0, seed=9
        )
        second = multi_tenant_trace(
            bank, specs, length=150, arrival="bursty", mean_interarrival_ns=10_000.0, seed=9
        )
        assert trace_digest(first) == trace_digest(second)
        gaps = [
            second[i + 1].arrival_ns - second[i].arrival_ns for i in range(len(second) - 1)
        ]
        mean_gap = sum(gaps) / len(gaps)
        # Bursty = high variability: many gaps far below the mean.
        assert sum(1 for gap in gaps if gap < mean_gap / 2) > len(gaps) / 3

    def test_bursty_long_run_rate_matches_poisson(self, bank):
        specs = default_tenant_mix(bank, tenants=2)
        bursty = multi_tenant_trace(
            bank, specs, length=2000, arrival="bursty", mean_interarrival_ns=10_000.0, seed=9
        )
        # The leading idle gap of each burst compensates for the fast
        # in-burst gaps, so the long-run mean gap stays the configured mean.
        assert 8_000.0 < bursty.duration_ns / len(bursty) < 12_000.0

    def test_payloads_match_function_spec(self, bank):
        spec = TenantSpec(name="t", functions=tuple(bank.names()), payload_blocks=2)
        trace = multi_tenant_trace(bank, [spec], length=40, seed=10)
        for request in trace:
            expected = bank.by_name(request.function).spec.input_bytes * 2
            assert request.payload_bytes == expected

    def test_validation_errors(self, bank):
        specs = default_tenant_mix(bank, tenants=1)
        with pytest.raises(ValueError):
            multi_tenant_trace(bank, [], length=5)
        with pytest.raises(ValueError):
            multi_tenant_trace(bank, specs, length=-1)
        with pytest.raises(ValueError):
            multi_tenant_trace(bank, specs, length=5, mean_interarrival_ns=0.0)
        with pytest.raises(ValueError):
            multi_tenant_trace(bank, specs, length=5, arrival="martian")
        with pytest.raises(ValueError):
            multi_tenant_trace(bank, specs, length=5, arrival="bursty", burst_speedup=1.0)
        # Burst knobs are ignored (and not validated) on the poisson path.
        assert (
            len(multi_tenant_trace(bank, specs, length=5, arrival="poisson", burst_speedup=1.0))
            == 5
        )
        with pytest.raises(KeyError):
            multi_tenant_trace(
                bank, [TenantSpec(name="t", functions=("missing",))], length=5
            )


class TestFleetTrace:
    def test_container_queries(self, bank):
        requests = [
            FleetRequest(tenant="b", function="crc32", payload=b"x", arrival_ns=20.0),
            FleetRequest(tenant="a", function="crc32", payload=b"y", arrival_ns=10.0),
        ]
        trace = FleetTrace(requests, name="t")
        assert len(trace) == 2
        assert trace[0].tenant == "a"  # sorted by arrival
        assert trace.tenants() == ["a", "b"]
        assert trace.function_counts() == {"crc32": 2}
        assert "2 requests" in trace.describe()
        assert trace.mean_arrival_rate_per_s() > 0

    def test_empty_trace(self):
        trace = FleetTrace([], name="empty")
        assert len(trace) == 0
        assert trace.duration_ns == 0.0
        assert trace.mean_arrival_rate_per_s() == 0.0
