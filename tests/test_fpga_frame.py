"""Tests for frames, frame regions and the frame array."""

import pytest

from repro.fpga.frame import Frame, FrameArray, FrameRegion
from repro.fpga.geometry import FrameAddress
from repro.fpga.lut import LookUpTable


class TestFrame:
    def test_serialisation_round_trip(self, tiny_geometry):
        frame = Frame(tiny_geometry, FrameAddress(0, 0))
        frame.clbs[0].luts[0] = LookUpTable.logic_xor(4)
        frame.clbs[2].switch_box.state[1] = 0x55
        data = frame.to_config_bytes()
        assert len(data) == tiny_geometry.frame_config_bytes

        other = Frame(tiny_geometry, FrameAddress(1, 1))
        other.load_config_bytes(data)
        assert other.clbs[0].luts[0] == LookUpTable.logic_xor(4)
        assert other.clbs[2].switch_box.state[1] == 0x55

    def test_wrong_payload_length_rejected(self, tiny_geometry):
        frame = Frame(tiny_geometry, FrameAddress(0, 0))
        with pytest.raises(ValueError):
            frame.load_config_bytes(b"\x00")

    def test_non_canonical_payload_reads_back_canonical(self):
        # The CLB parser masks unused padding bits (here the FF byte's upper
        # nibble, with 4 LUTs per CLB); readback must return the canonical
        # serialisation, not echo the raw written bytes.
        from repro.fpga.geometry import FabricGeometry

        geometry = FabricGeometry(columns=1, rows=4, clb_rows_per_frame=4, luts_per_clb=4)
        frame = Frame(geometry, FrameAddress(0, 0))
        payload = bytearray(frame.config_byte_length)
        lut_bytes = max(1, (1 << geometry.lut_inputs) // 8)
        ff_offset = geometry.luts_per_clb * lut_bytes
        payload[ff_offset] = 0xF0  # only unused padding bits set
        frame.load_config_bytes(bytes(payload))
        assert frame.to_config_bytes()[ff_offset] == 0
        assert frame.is_clear

    def test_clear_and_is_clear(self, tiny_geometry):
        frame = Frame(tiny_geometry, FrameAddress(0, 0))
        assert frame.is_clear
        frame.clbs[1].luts[3] = LookUpTable.constant(4, True)
        assert not frame.is_clear
        frame.clear()
        assert frame.is_clear

    def test_lut_utilisation(self, tiny_geometry):
        frame = Frame(tiny_geometry, FrameAddress(0, 0))
        assert frame.lut_utilisation() == 0.0
        frame.clbs[0].luts[0] = LookUpTable.constant(4, True)
        assert frame.lut_utilisation() == pytest.approx(1 / tiny_geometry.luts_per_frame)

    def test_invalid_address_rejected(self, tiny_geometry):
        with pytest.raises(IndexError):
            Frame(tiny_geometry, FrameAddress(99, 0))

    def test_flat_index(self, tiny_geometry):
        frame = Frame(tiny_geometry, FrameAddress(1, 2))
        assert frame.flat_index == 1 * tiny_geometry.tiles_per_column + 2


class TestFrameRegion:
    def test_duplicate_addresses_rejected(self):
        with pytest.raises(ValueError):
            FrameRegion((FrameAddress(0, 0), FrameAddress(0, 0)))

    def test_contiguity(self, tiny_geometry):
        contiguous = FrameRegion.from_addresses(
            [tiny_geometry.frame_at(index) for index in (2, 3, 4)]
        )
        scattered = FrameRegion.from_addresses(
            [tiny_geometry.frame_at(index) for index in (0, 5, 9)]
        )
        assert contiguous.is_contiguous(tiny_geometry)
        assert not scattered.is_contiguous(tiny_geometry)

    def test_empty_region_is_contiguous(self, tiny_geometry):
        assert FrameRegion(()).is_contiguous(tiny_geometry)

    def test_overlap_and_intersection(self, tiny_geometry):
        region_a = FrameRegion.from_addresses([tiny_geometry.frame_at(index) for index in (0, 1, 2)])
        region_b = FrameRegion.from_addresses([tiny_geometry.frame_at(index) for index in (2, 3)])
        region_c = FrameRegion.from_addresses([tiny_geometry.frame_at(index) for index in (7, 8)])
        assert region_a.overlaps(region_b)
        assert not region_a.overlaps(region_c)
        assert region_a.intersection(region_b) == (tiny_geometry.frame_at(2),)

    def test_union_preserves_order_and_uniqueness(self, tiny_geometry):
        region_a = FrameRegion.from_addresses([tiny_geometry.frame_at(0), tiny_geometry.frame_at(1)])
        region_b = FrameRegion.from_addresses([tiny_geometry.frame_at(1), tiny_geometry.frame_at(2)])
        union = region_a.union(region_b)
        assert len(union) == 3
        assert list(union)[0] == tiny_geometry.frame_at(0)

    def test_contains_and_iteration(self, tiny_geometry):
        region = FrameRegion.from_addresses([tiny_geometry.frame_at(4)])
        assert tiny_geometry.frame_at(4) in region
        assert tiny_geometry.frame_at(5) not in region
        assert list(region.flat_indices(tiny_geometry)) == [4]

    def test_describe(self, tiny_geometry):
        region = FrameRegion.from_addresses([tiny_geometry.frame_at(0)])
        assert "F[0,0]" in region.describe()


class TestFrameArray:
    def test_contains_every_frame(self, tiny_geometry):
        array = FrameArray(tiny_geometry)
        assert len(array) == tiny_geometry.frame_count
        assert array.by_flat_index(3).address == tiny_geometry.frame_at(3)

    def test_unknown_address_rejected(self, tiny_geometry):
        array = FrameArray(tiny_geometry)
        with pytest.raises(IndexError):
            array[FrameAddress(50, 50)]

    def test_region_and_clear_region(self, tiny_geometry):
        array = FrameArray(tiny_geometry)
        region = FrameRegion.from_addresses([tiny_geometry.frame_at(0), tiny_geometry.frame_at(1)])
        frames = array.region(region)
        frames[0].clbs[0].luts[0] = LookUpTable.constant(4, True)
        assert not frames[0].is_clear
        array.clear_region(region)
        assert frames[0].is_clear

    def test_snapshot_covers_device(self, tiny_geometry):
        array = FrameArray(tiny_geometry)
        snapshot = array.snapshot()
        assert len(snapshot) == tiny_geometry.frame_count
        assert all(len(data) == tiny_geometry.frame_config_bytes for data in snapshot.values())
