"""End-to-end integration tests across the whole stack.

These are the tests that correspond most directly to the paper's proof of
concept: the full architecture of Figure 1, exercised through the host
driver, with the mini OS swapping algorithms on demand.
"""

import pytest

from repro.baselines import FullReconfigEngine, HostOnlyEngine, StaticFixedEngine
from repro.core.builder import build_coprocessor, build_host_driver
from repro.core.config import CoprocessorConfig, SMALL_CONFIG
from repro.core.ondemand import TraceRunner
from repro.functions.bank import build_small_bank
from repro.workloads import ipsec_gateway_trace, round_robin_trace, zipf_trace


@pytest.mark.integration
class TestFigure1Architecture:
    """Every block of the paper's block diagram exists and is exercised."""

    def test_blocks_exist_and_are_wired(self, small_coprocessor):
        copro = small_coprocessor
        # Memory block: ROM with two-ended layout + local RAM.
        assert copro.rom.capacity_bytes > 0 and copro.ram.capacity_bytes > 0
        assert len(copro.rom.record_table) == len(copro.bank)
        # Microcontroller block with config/data modules and the mini OS.
        assert copro.mcu.config_module is copro.config_module
        assert copro.mcu.minios is copro.minios
        # Partially reconfigurable FPGA.
        assert copro.device.geometry.frame_count > 0

    def test_end_to_end_request_touches_every_block(self, small_config, small_bank):
        copro = build_coprocessor(config=small_config.with_overrides(enable_trace=True), bank=small_bank)
        copro.execute("crc32", b"touch every block")
        components = {event.component for event in copro.trace}
        for expected in ("rom", "ram", "fpga", "config-module", "data-in", "data-out", "mcu"):
            assert expected in components, expected

    def test_full_default_system_over_pci(self, default_bank):
        driver = build_host_driver(bank=default_bank)
        for name in ("aes128", "sha256", "crc32"):
            function = default_bank.by_name(name)
            data = bytes(range(function.spec.input_bytes))
            result = driver.call(name, data)
            assert result.output == function.behaviour(data)
        # Residency is visible across calls: repeat is a hit.
        repeat = driver.call("aes128", bytes(16))
        assert repeat.card_result.hit


@pytest.mark.integration
class TestOnDemandSwapping:
    def test_thrashing_workload_stays_correct(self):
        config = SMALL_CONFIG.with_overrides(fabric_columns=2, fabric_rows=16, clb_rows_per_frame=4)
        bank = build_small_bank()
        copro = build_coprocessor(config=config, bank=bank)
        trace = round_robin_trace(bank, 48, seed=2)
        for request in trace:
            result = copro.execute(request.function, request.payload)
            expected = bank.by_name(request.function).behaviour(request.payload)
            assert result.output == expected
        assert copro.stats.evictions > 0
        assert copro.stats.hit_rate < 1.0

    def test_policy_choice_changes_behaviour_under_pressure(self, default_bank):
        # A bank subset whose combined footprint exceeds a small fabric, so
        # the replacement policy is actually exercised.
        functions = ["sha1", "crc32", "fir16", "strmatch", "bitonic64"]
        results = {}
        for policy in ("lru", "fifo", "random"):
            config = CoprocessorConfig(
                fabric_columns=8, fabric_rows=32, clb_rows_per_frame=8,
                replacement_policy=policy, seed=3,
            )
            bank = default_bank.subset(functions)
            copro = build_coprocessor(config=config, bank=bank)
            trace = zipf_trace(bank, 120, skew=1.2, seed=3)
            results[policy] = TraceRunner(copro, policy).run(trace).hit_rate
        # All policies produce valid hit rates; LRU should not be the worst on
        # a skewed trace.
        assert all(0.0 <= rate <= 1.0 for rate in results.values())
        assert results["lru"] >= min(results.values())

    def test_agile_beats_full_reconfiguration_on_switching_workload(self):
        bank = build_small_bank()
        config = SMALL_CONFIG.with_overrides(seed=5)
        trace = round_robin_trace(bank, 32, repeats_per_function=2, seed=5)
        agile = build_coprocessor(config=config, bank=bank)
        full = FullReconfigEngine(config, bank)
        agile_result = TraceRunner(agile, "agile").run(trace)
        full_result = TraceRunner(full, "full").run(trace)
        assert agile_result.mean_latency_ns < full_result.mean_latency_ns

    def test_baselines_and_coprocessor_agree_on_outputs(self):
        bank = build_small_bank()
        config = SMALL_CONFIG.with_overrides(seed=6)
        engines = {
            "agile": build_coprocessor(config=config, bank=bank),
            "host": HostOnlyEngine(bank),
            "static": StaticFixedEngine(config, bank, resident_functions=["crc32", "parity32"]),
        }
        data = bytes(range(24))
        outputs = {name: engine.execute("crc32", data).output for name, engine in engines.items()}
        assert len(set(outputs.values())) == 1


@pytest.mark.integration
class TestRealisticApplication:
    def test_ipsec_gateway_on_default_card(self, default_bank):
        copro = build_coprocessor(bank=default_bank)
        trace = ipsec_gateway_trace(default_bank, packets=40, seed=9)
        result = TraceRunner(copro, "agile").run(trace)
        assert result.requests == len(trace)
        assert result.hit_rate > 0.5  # the cipher/hash working set fits and stays resident
        assert copro.stats.requests == len(trace)
