"""Cross-process byte-identity of the network front door.

The front door adds three new sources of per-run randomness (link loss and
jitter draws, backoff jitter) and two new digest record kinds (net verdicts,
sheds), all rooted in ``SeededRandom`` forks — so an E12 cell and the
perf-smoke ``net`` section must reproduce byte-identically in a fresh
interpreter.  Same pattern as ``test_rebalance_determinism``: only a second
process catches salted-hash or dict-order regressions.

The E12 snippet runs one reference overload cell and one kill-drill cell
(not the full 27-cell sweep — the suite must stay fast); the full-report
byte-identity run is the driver-level check documented in the benchmark.
"""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_E12_SNIPPET = """
import sys
sys.path.insert(0, "src")
sys.path.insert(0, ".")
from benchmarks.bench_e12_frontdoor import (
    KILL_LOSS, KILL_OVERLOAD, REFERENCE_LOSS, REFERENCE_OVERLOAD, run_cell,
)
from repro.functions.bank import build_default_bank

bank = build_default_bank()
frontdoor, stats = run_cell(bank, REFERENCE_OVERLOAD, REFERENCE_LOSS, "retry+shed")
print(repr(frontdoor.fingerprint()))
print(repr(sorted(frontdoor.link_summary().items())))
print(repr((stats.latency_percentile(95), stats.net_latency_percentile(95),
            stats.net_timeouts, stats.breaker_opens,
            sorted(stats.per_priority_shed.items()))))
frontdoor, stats = run_cell(bank, KILL_OVERLOAD, KILL_LOSS, "retry", kill=True)
print(repr(frontdoor.fingerprint()))
print(repr((stats.card_failures, stats.heals_completed, stats.failovers,
            stats.duplicates_served, stats.duplicates_suppressed)))
"""

_SMOKE_SNIPPET = """
import sys
sys.path.insert(0, "src")
sys.path.insert(0, "benchmarks")
import perf_smoke

results = perf_smoke.bench_net(trace_length=120)
frontdoor = results["frontdoor"]
# Everything except the wall-clock rate fields must be process-invariant.
print(repr((frontdoor["events_dispatched"], frontdoor["final_time_ns"],
            frontdoor["net_requests"], frontdoor["net_completed"],
            frontdoor["net_failed"], frontdoor["net_retries"],
            frontdoor["shed"], frontdoor["expired"],
            frontdoor["duplicates_served"], frontdoor["packets_lost"],
            frontdoor["schedule_digest"])))
"""


def run_snippet(snippet: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", snippet],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestCrossProcessDeterminism:
    def test_e12_cells_are_byte_identical_across_processes(self):
        first = run_snippet(_E12_SNIPPET)
        second = run_snippet(_E12_SNIPPET)
        assert first == second
        assert first.strip()

    def test_net_smoke_fingerprints_are_byte_identical_across_processes(self):
        first = run_snippet(_SMOKE_SNIPPET)
        second = run_snippet(_SMOKE_SNIPPET)
        assert first == second
        assert first.strip()
