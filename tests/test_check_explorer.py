"""The schedule-space model checker: traces, exploration, replay, invariants.

The raw-kernel conflict scenario proves the harness *detects* divergence
(same-instant puts to one store are observably order-dependent); the tiny
control-plane scenario proves the fleet *has none* — every explored
interleaving of migrate+scrub+defrag+heal is observationally equivalent to
the default schedule, with the full invariant pack clean.  Three pinned
seeds keep the highest-branching explored schedules as regressions, per the
"no race found" branch of the model-checking issue.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import (
    ExplorationReport,
    Explorer,
    ScheduleTrace,
    check_invariants,
    tiny_control_plane,
    tiny_scenario_factory,
)
from repro.check.scenarios import ScenarioRun
from repro.sim.kernel import Simulator, StoreGet, Timeout
from repro.sim.schedule import RandomTieBreakPolicy, ScriptedPolicy


# --------------------------------------------------------------- trace object
class TestScheduleTrace:
    def test_seed_round_trip(self):
        trace = ScheduleTrace(choices=(0, 2, 1), branching=(3, 3, 2))
        assert trace.seed() == "0.2.1"
        parsed = ScheduleTrace.from_seed(trace.seed())
        assert parsed.choices == trace.choices

    def test_empty_seed_is_the_root_schedule(self):
        assert ScheduleTrace.from_seed("").choices == ()
        assert ScheduleTrace(choices=()).seed() == ""

    def test_json_round_trip(self):
        trace = ScheduleTrace(
            choices=(1, 0),
            branching=(2, 3),
            digest="d",
            violations=("boom",),
        )
        assert ScheduleTrace.from_json(trace.to_json()) == trace

    def test_validation_rejects_inconsistent_records(self):
        with pytest.raises(ValueError):
            ScheduleTrace(choices=(0, 1), branching=(2,))
        with pytest.raises(ValueError):
            ScheduleTrace(choices=(2,), branching=(2,))
        with pytest.raises(ValueError):
            ScheduleTrace.from_seed("1.-2")

    def test_branching_metrics(self):
        trace = ScheduleTrace(choices=(0, 1, 0), branching=(2, 5, 2))
        assert trace.depth == 3
        assert trace.max_branching == 5
        assert ScheduleTrace(choices=()).max_branching == 1


# ------------------------------------------------- divergence-sensitive model
def _conflict_scenario(policy):
    """Same-instant puts from two producers: schedule-order observable."""
    sim = Simulator(schedule_policy=policy)
    store = sim.store("shared")
    log = []

    def producer(tag):
        yield Timeout(10.0)
        store.put(tag)

    def consumer():
        for _ in range(2):
            item = yield StoreGet(store)
            log.append(item)

    sim.spawn(producer("a"), name="pa")
    sim.spawn(producer("b"), name="pb")
    sim.spawn(consumer(), name="consumer")
    sim.run()
    return _KernelRun(tuple(log))


class _KernelRun:
    """Adapts a raw-kernel run to the Explorer's ScenarioRun protocol."""

    def __init__(self, outcome):
        self.outcome = outcome
        self.trace_length = 0

    @property
    def digest(self):
        return repr(self.outcome)

    @property
    def fleet(self):
        return self

    # The invariant pack is fleet-shaped; give the adapter empty state.
    cards = ()
    migrating = frozenset()

    class _Stats:
        arrivals = completed = rejected = expired = 0
        migration_orders = migrations_completed = migrations_failed = 0
        migration_byte_diffs = heal_orders = heals_completed = heals_skipped = 0
        per_tenant_arrivals = per_tenant_completed = {}
        per_tenant_rejected = per_tenant_expired = {}

        @staticmethod
        def tenants():
            return ()

    stats = _Stats()


class TestExplorerOnDivergentModel:
    def test_dfs_finds_both_consumption_orders(self):
        explorer = Explorer(_conflict_scenario, max_schedules=40)
        report = explorer.explore()
        digests = {trace.digest for trace in report.traces}
        assert repr(("a", "b")) in digests
        assert repr(("b", "a")) in digests
        assert report.distinct_digests >= 2
        assert not report.truncated

    def test_replay_reproduces_recorded_digests(self):
        explorer = Explorer(_conflict_scenario, max_schedules=40)
        report = explorer.explore()
        for trace in report.traces:
            assert explorer.replay(trace).digest == trace.digest

    def test_replay_raises_on_digest_mismatch(self):
        explorer = Explorer(_conflict_scenario, max_schedules=4)
        trace = explorer.run_prefix(())
        forged = ScheduleTrace(
            choices=trace.choices, branching=trace.branching, digest="forged"
        )
        with pytest.raises(AssertionError, match="replay diverged"):
            explorer.replay(forged)

    def test_sampling_records_replayable_traces(self):
        explorer = Explorer(_conflict_scenario)
        report = explorer.sample(schedules=6, seed=11)
        assert report.schedules_run == 6
        for trace in report.traces:
            assert explorer.replay(trace).digest == trace.digest

    def test_first_violation_surfaces_a_seeded_bug(self):
        # Wrap the scenario so one specific interleaving "corrupts": the
        # explorer must return that trace, seed attached.
        def buggy(policy):
            run = _conflict_scenario(policy)
            if run.outcome == ("b", "a"):
                run.trace_length = -1  # trips request conservation
            return run

        explorer = Explorer(buggy, max_schedules=40)
        found = explorer.first_violation()
        assert found is not None
        assert found.violations
        # The violating seed replays to the same interleaving.
        replayed = Explorer(_conflict_scenario).run_prefix(found.choices)
        assert replayed.digest == repr(("b", "a"))

    def test_exploration_bounds_are_validated(self):
        with pytest.raises(ValueError):
            Explorer(_conflict_scenario, max_schedules=0)
        with pytest.raises(ValueError):
            Explorer(_conflict_scenario, max_branch=0)

    def test_truncation_is_reported(self):
        explorer = Explorer(_conflict_scenario, max_schedules=2)
        report = explorer.explore()
        assert report.schedules_run == 2
        assert report.truncated


# ------------------------------------------------------ tiny control plane
@pytest.fixture(scope="module")
def control_plane_exploration() -> ExplorationReport:
    """One bounded DFS over the tiny migrate+scrub+defrag fleet (shared)."""
    explorer = Explorer(
        tiny_scenario_factory(), max_depth=24, max_branch=3, max_schedules=110
    )
    return explorer.explore()


class TestControlPlaneExploration:
    def test_default_policy_is_byte_identical_to_no_policy(self):
        assert (
            tiny_control_plane(None).digest
            == tiny_control_plane(ScriptedPolicy(())).digest
        )

    def test_dfs_enumerates_at_least_100_distinct_schedules(
        self, control_plane_exploration
    ):
        report = control_plane_exploration
        assert report.schedules_run >= 100
        assert len({trace.choices for trace in report.traces}) == report.schedules_run

    def test_every_explored_schedule_satisfies_the_invariant_pack(
        self, control_plane_exploration
    ):
        assert control_plane_exploration.violations == []

    def test_control_plane_is_schedule_insensitive(self, control_plane_exploration):
        # The model-checking result: every explored interleaving of the
        # four control-plane actors is observationally equivalent — same
        # event count, same final time, same completion-stream digest.
        assert control_plane_exploration.distinct_digests == 1

    def test_exploration_reaches_wide_ready_sets(self, control_plane_exploration):
        assert max(t.max_branching for t in control_plane_exploration.traces) >= 4


#: Satellite: no race was found, so the three highest-branching explored
#: schedules are pinned instead — one DFS sibling of the widest (8-wide,
#: the t=0 spawn burst) choice point and two deep random-sampled scrambles
#: that permute nearly every tie-break of the run.
PINNED_SCHEDULE_SEEDS = [
    "0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.1.0.0.0.0.0",
    "2.4.0.2.0.1.1.1.1.0.0.1.0.1.1.0.1.2.2.0.2.0.1.0.0.0.0.1",
    "3.4.4.1.2.2.1.0.0.1.1.0.0.1.1.1.1.0.0.2.1.0.0.0.2.0.1.0.1",
]


class TestPinnedScheduleRegressions:
    @pytest.mark.parametrize("seed", PINNED_SCHEDULE_SEEDS)
    def test_pinned_schedule_replays_clean_and_equivalent(self, seed):
        explorer = Explorer(tiny_scenario_factory())
        trace = explorer.replay(ScheduleTrace.from_seed(seed))
        assert trace.violations == ()
        assert trace.digest == tiny_control_plane(None).digest

    def test_pinned_schedules_really_permute(self):
        explorer = Explorer(tiny_scenario_factory())
        trace = explorer.replay(ScheduleTrace.from_seed(PINNED_SCHEDULE_SEEDS[1]))
        assert any(choice != 0 for choice in trace.choices)
        assert trace.max_branching >= 4


# ----------------------------------------------------- hypothesis properties
class TestSchedulePermutationProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_schedules_preserve_conservation_and_bytes(self, seed):
        policy = RandomTieBreakPolicy(seed=seed)
        run = tiny_control_plane(policy)
        # Request conservation and byte-identical payloads: the invariant
        # pack checks arrivals==completed+rejected+expired, drained queues,
        # and every frame byte-identical to its golden image on every card.
        assert check_invariants(run.fleet, run.trace_length) == []
        # The recorded random schedule replays to the exact digest.
        explorer = Explorer(tiny_scenario_factory())
        trace = ScheduleTrace(
            choices=tuple(policy.choices),
            branching=tuple(policy.branching),
            digest=run.digest,
        )
        assert explorer.replay(trace).digest == run.digest

    @given(first=st.integers(min_value=0, max_value=7))
    @settings(max_examples=8, deadline=None)
    def test_any_first_choice_is_observationally_equivalent(self, first):
        run = tiny_control_plane(ScriptedPolicy((first,)))
        assert isinstance(run, ScenarioRun)
        assert run.digest == tiny_control_plane(None).digest
