"""Tests for the FPGA device: partial reconfiguration semantics."""

import pytest

from repro.fpga.bitgen import BitstreamGenerator
from repro.fpga.device import FPGADevice
from repro.fpga.errors import ConfigurationError, ExecutionError, FrameCollisionError
from repro.fpga.frame import FrameRegion
from repro.fpga.placer import Placer
from repro.functions.misc.logic import AdderFunction, ParityFunction, PopcountFunction


def _load(device, function, start_frame=0):
    """Generate and load *function* at a region starting at *start_frame*."""
    geometry = device.geometry
    netlist = function.build_netlist(geometry)
    placer = Placer(geometry)
    frames_needed = function.frames_required(geometry)
    region = FrameRegion.from_addresses(
        [geometry.frame_at(index) for index in range(start_frame, start_frame + frames_needed)]
    )
    placement = placer.place(netlist, list(region), frames_needed=frames_needed)
    # Rebuild the placement on exactly the region's frames, in region order.
    bitstream = BitstreamGenerator(geometry).generate(
        netlist, placement, function.function_id, function.spec.input_bytes, function.spec.output_bytes
    )
    executor = function.executor(geometry)
    elapsed = device.configure_partial(bitstream, placement.region, executor)
    return bitstream, placement.region, elapsed


class TestPartialConfiguration:
    def test_load_and_execute(self, tiny_geometry):
        device = FPGADevice(tiny_geometry)
        adder = AdderFunction()
        _, region, elapsed = _load(device, adder)
        assert device.is_loaded("adder8")
        assert elapsed > 0
        output, fabric_ns = device.execute("adder8", bytes([30, 12]))
        assert output[0] == 42 and fabric_ns > 0

    def test_partial_load_does_not_disturb_other_functions(self, tiny_geometry):
        device = FPGADevice(tiny_geometry)
        adder = AdderFunction()
        parity = ParityFunction()
        _, adder_region, _ = _load(device, adder, start_frame=0)
        adder_readback = device.readback("adder8")
        _load(device, parity, start_frame=len(adder_region))
        # The adder's frames are untouched and it still executes correctly.
        assert device.readback("adder8") == adder_readback
        output, _ = device.execute("adder8", bytes([5, 6]))
        assert output[0] == 11
        output, _ = device.execute("parity32", bytes([1, 0, 0, 0]))
        assert output[0] == 1

    def test_collision_with_live_function_rejected(self, tiny_geometry):
        device = FPGADevice(tiny_geometry)
        adder = AdderFunction()
        parity = ParityFunction()
        _load(device, adder, start_frame=0)
        with pytest.raises(FrameCollisionError):
            _load(device, parity, start_frame=0)

    def test_region_size_must_match_bitstream(self, tiny_geometry):
        device = FPGADevice(tiny_geometry)
        adder = AdderFunction()
        bitstream, region, _ = _load(device, adder)
        device.unload("adder8")
        wrong_region = FrameRegion.from_addresses(list(region)[:-1] or [tiny_geometry.frame_at(0)])
        if len(wrong_region) == len(region):
            wrong_region = FrameRegion.from_addresses(list(region) + [tiny_geometry.frame_at(10)])
        with pytest.raises(ConfigurationError):
            device.configure_partial(bitstream, wrong_region, adder.executor(tiny_geometry))

    def test_unload_frees_frames_and_disables_execution(self, tiny_geometry):
        device = FPGADevice(tiny_geometry)
        adder = AdderFunction()
        _, region, _ = _load(device, adder)
        freed = device.unload("adder8")
        assert set(freed) == set(region)
        assert not device.is_loaded("adder8")
        with pytest.raises(ExecutionError):
            device.execute("adder8", bytes([1, 2]))
        assert len(device.free_frames()) == tiny_geometry.frame_count

    def test_unload_unknown_function_rejected(self, tiny_geometry):
        device = FPGADevice(tiny_geometry)
        with pytest.raises(ExecutionError):
            device.unload("ghost")

    def test_readback_matches_bitstream(self, tiny_geometry):
        device = FPGADevice(tiny_geometry)
        adder = AdderFunction()
        bitstream, _, _ = _load(device, adder)
        assert device.verify_readback("adder8", bitstream)

    def test_reload_at_different_region_releases_old_frames(self, tiny_geometry):
        device = FPGADevice(tiny_geometry)
        popcount = PopcountFunction()
        bitstream, region, _ = _load(device, popcount, start_frame=0)
        # Reload the same function at a different region.
        new_region = FrameRegion.from_addresses(
            [tiny_geometry.frame_at(index + 8) for index in range(len(region))]
        )
        device.configure_partial(bitstream, new_region, popcount.executor(tiny_geometry))
        assert set(device.region_of("popcount8")) == set(new_region)
        owners = device.memory.owners()
        assert set(owners["popcount8"]) == set(new_region)

    def test_utilisation_and_describe(self, tiny_geometry):
        device = FPGADevice(tiny_geometry)
        assert device.utilisation() == 0.0
        _load(device, AdderFunction())
        assert device.utilisation() > 0.0
        assert "adder8" in device.describe()


class TestFullConfiguration:
    def test_full_reconfiguration_erases_everything_else(self, tiny_geometry):
        device = FPGADevice(tiny_geometry)
        adder = AdderFunction()
        parity = ParityFunction()
        _load(device, adder, start_frame=0)
        geometry = device.geometry
        netlist = parity.build_netlist(geometry)
        placer = Placer(geometry)
        placement = placer.place(netlist, geometry.all_frames())
        bitstream = BitstreamGenerator(geometry).generate(
            netlist, placement, parity.function_id, 4, 1
        )
        elapsed = device.configure_full(bitstream, parity.executor(geometry))
        assert elapsed > 0
        assert device.is_loaded("parity32")
        assert not device.is_loaded("adder8")
        # A full configuration writes every frame of the device.
        assert device.port.stats.frames_written >= geometry.frame_count

    def test_execute_unloaded_function_rejected(self, tiny_geometry):
        device = FPGADevice(tiny_geometry)
        with pytest.raises(ExecutionError):
            device.execute("aes128", b"\x00" * 16)
