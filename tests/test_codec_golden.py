"""Golden-corpus and robustness tests for the optimised codec fast paths.

The blobs in ``tests/data/golden/`` were produced by the original (per-bit /
per-byte) seed encoders.  The optimised encoders must reproduce them *byte
for byte* — compression is part of the stored-image format, so a drifting
encoder would silently invalidate every ROM image ever written — and the
optimised decoders must invert them.  Adversarial truncation must never
crash, hang, or mis-decode: every outcome is either a clean ``CodecError``
(or the codec-specific subset below) or a successful parse of a shorter
stream.
"""

from __future__ import annotations

import pathlib
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstream.codecs import (
    CodecError,
    FrameDifferentialCodec,
    GolombRiceCodec,
    HuffmanCodec,
    LZ77Codec,
    NullCodec,
    RunLengthCodec,
    SymmetryAwareCodec,
)

DATA_DIR = pathlib.Path(__file__).parent / "data"
CORPUS_DIR = DATA_DIR / "corpus"
GOLDEN_DIR = DATA_DIR / "golden"

#: Codec name -> default-constructed instance, matching the golden corpus.
CODECS = {
    "null": NullCodec(),
    "rle": RunLengthCodec(),
    "lz77": LZ77Codec(),
    "huffman": HuffmanCodec(),
    "golomb": GolombRiceCodec(),
    "framediff": FrameDifferentialCodec(),
    "symmetry": SymmetryAwareCodec(),
}

CORPUS_NAMES = sorted(path.stem for path in CORPUS_DIR.glob("*.bin"))


def _clb_structured(total: int, seed: int = 77) -> bytes:
    """Synthetic CLB-major frame bytes: strided records from a pattern pool."""
    rng = random.Random(seed)
    pool = [rng.randrange(1, 1 << 16) for _ in range(4)]
    records = bytearray()
    clb = 0
    while len(records) < total:
        pattern = pool[(clb // 4) % 4]
        record = bytearray(42)
        for lut in range(8):
            record[lut * 2] = pattern & 0xFF
            record[lut * 2 + 1] = (pattern >> 8) & 0xFF
        records.extend(record)
        clb += 1
    return bytes(records[:total])


class TestGoldenCorpus:
    @pytest.mark.parametrize("codec_name", sorted(CODECS), ids=str)
    @pytest.mark.parametrize("input_name", CORPUS_NAMES, ids=str)
    def test_compress_is_byte_identical_to_seed(self, codec_name, input_name):
        codec = CODECS[codec_name]
        data = (CORPUS_DIR / f"{input_name}.bin").read_bytes()
        golden = (GOLDEN_DIR / f"{codec_name}__{input_name}.bin").read_bytes()
        assert codec.compress(data) == golden

    @pytest.mark.parametrize("codec_name", sorted(CODECS), ids=str)
    @pytest.mark.parametrize("input_name", CORPUS_NAMES, ids=str)
    def test_seed_blobs_still_decode(self, codec_name, input_name):
        codec = CODECS[codec_name]
        data = (CORPUS_DIR / f"{input_name}.bin").read_bytes()
        golden = (GOLDEN_DIR / f"{codec_name}__{input_name}.bin").read_bytes()
        assert codec.decompress(golden) == data

    def test_corpus_is_complete(self):
        # One golden blob per (codec, input) pair; catches stray/missing files.
        expected = {f"{c}__{i}.bin" for c in CODECS for i in CORPUS_NAMES}
        assert {path.name for path in GOLDEN_DIR.glob("*.bin")} == expected


class TestStructuredRoundTrips:
    """CLB-shaped and adversarially skewed inputs through every codec."""

    @pytest.mark.parametrize("codec", list(CODECS.values()), ids=lambda c: c.name)
    def test_clb_structured_round_trip(self, codec):
        data = _clb_structured(8192)
        assert codec.decompress(codec.compress(data)) == data

    @pytest.mark.parametrize("codec", list(CODECS.values()), ids=lambda c: c.name)
    @given(data=st.binary(max_size=2048))
    @settings(max_examples=30, deadline=None)
    def test_random_round_trip(self, codec, data):
        assert codec.decompress(codec.compress(data)) == data

    @pytest.mark.parametrize("codec", list(CODECS.values()), ids=lambda c: c.name)
    @given(
        pattern=st.binary(min_size=1, max_size=64),
        repeats=st.integers(min_value=1, max_value=64),
        tail=st.binary(max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_repetitive_round_trip(self, codec, pattern, repeats, tail):
        data = pattern * repeats + tail
        assert codec.decompress(codec.compress(data)) == data

    def test_huffman_deep_tree_round_trip(self):
        # Exponential symbol counts force maximum-depth canonical codes,
        # exercising the decoder's long-code fallback path.
        data = b"".join(bytes([i]) * (2 ** min(i, 14)) for i in range(18))
        codec = HuffmanCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_golomb_explicit_parameters_round_trip(self):
        data = b"\x00" * 500 + bytes(range(1, 64)) + b"\x00" * 300
        for k in (0, 1, 7, 15):
            codec = GolombRiceCodec(k=k)
            assert codec.decompress(codec.compress(data)) == data


class TestAdversarialTruncation:
    @pytest.mark.parametrize("codec", list(CODECS.values()), ids=lambda c: c.name)
    @given(data=st.binary(max_size=512), cut=st.integers(min_value=0, max_value=511))
    @settings(max_examples=40, deadline=None)
    def test_truncated_blobs_never_crash(self, codec, data, cut):
        blob = codec.compress(data)
        truncated = blob[: min(cut, len(blob))]
        try:
            result = codec.decompress(truncated)
        except CodecError:
            return
        assert isinstance(result, bytes)

    def test_huffman_truncation_is_detected(self):
        blob = HuffmanCodec().compress(b"hello world, hello world")
        for cut in (1, 3, 100, len(blob) - 1):
            with pytest.raises(CodecError):
                HuffmanCodec().decompress(blob[:cut])

    def test_golomb_truncation_is_detected(self):
        blob = GolombRiceCodec().compress(b"\x00" * 64 + b"abcdef" * 10)
        for cut in (0, 4, 6, len(blob) - 1):
            with pytest.raises(CodecError):
                GolombRiceCodec().decompress(blob[:cut])

    def test_golomb_run_overrun_is_detected(self):
        # A forged stream whose zero-run exceeds the declared length.
        import struct

        from repro.bitstream.bitio import BitWriter

        writer = BitWriter()
        writer.write_unary(200)  # quotient 200, k=0 -> run of 200
        writer.write_bit(0)
        blob = struct.pack(">IB", 10, 0) + writer.getvalue()
        with pytest.raises(CodecError):
            GolombRiceCodec().decompress(blob)

    def test_huffman_invalid_code_is_detected(self):
        blob = bytearray(HuffmanCodec().compress(bytes(range(16)) * 8))
        blob[-1] ^= 0xFF  # corrupt the packed payload tail
        try:
            HuffmanCodec().decompress(bytes(blob))
        except CodecError:
            pass  # either outcome is fine; it must not crash or hang