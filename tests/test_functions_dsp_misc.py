"""Tests for the DSP and miscellaneous hardware functions."""

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.dsp.fft import FftFunction, fft_radix2
from repro.functions.dsp.fir import FirFilter, FirFunction
from repro.functions.dsp.matmul import MatMulFunction, matrix_multiply
from repro.functions.misc.crc import Crc32Function
from repro.functions.misc.sort import BitonicSortFunction, bitonic_sort, compare_exchange_count
from repro.functions.misc.strmatch import StringMatchFunction, count_occurrences


class TestFir:
    def test_impulse_response_recovers_coefficients(self):
        coefficients = [100, -200, 300, 50]
        fir = FirFilter(coefficients)
        impulse = [1 << 15] + [0] * 7  # unit impulse in Q15
        response = fir.filter_samples(impulse)
        assert response[: len(coefficients)] == coefficients
        assert all(value == 0 for value in response[len(coefficients):])

    def test_saturation(self):
        fir = FirFilter([32767])
        assert fir.filter_samples([32767]) == [32766]  # (32767*32767)>>15 stays within int16
        # Two max-magnitude taps overflow int16 and must clamp at the rails.
        fir_wide = FirFilter([32767, 32767])
        assert fir_wide.filter_samples([32767, 32767])[1] == 32767
        fir_negative = FirFilter([-32768, -32768])
        assert fir_negative.filter_samples([32767, 32767])[1] == -32768

    def test_bytes_interface_round_trip_length(self):
        function = FirFunction()
        samples = struct.pack("<8h", *[100, -100, 500, -500, 0, 1, -1, 32000])
        output = function.behaviour(samples)
        assert len(output) == len(samples)

    def test_coefficient_validation(self):
        with pytest.raises(ValueError):
            FirFilter([])
        with pytest.raises(ValueError):
            FirFilter([40000])


class TestFft:
    def test_matches_direct_dft_for_small_input(self):
        import cmath

        samples = [complex(value, 0) for value in (1, 2, 3, 4, 5, 6, 7, 8)]
        spectrum = fft_radix2(samples)
        for k in range(8):
            direct = sum(
                samples[n] * cmath.exp(-2j * cmath.pi * k * n / 8) for n in range(8)
            )
            assert abs(spectrum[k] - direct) < 1e-9

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            fft_radix2([1, 2, 3])

    def test_empty_input(self):
        assert fft_radix2([]) == []

    def test_dc_input_concentrates_in_bin_zero(self):
        function = FftFunction()
        samples = struct.pack(f"<{function.POINTS}h", *([1000] * function.POINTS))
        output = function.behaviour(samples)
        pairs = struct.unpack(f"<{function.POINTS * 2}h", output)
        real = pairs[0::2]
        assert real[0] == 1000  # mean value in bin 0 after 1/N scaling
        assert all(abs(value) <= 1 for value in real[1:])

    def test_output_length(self):
        function = FftFunction()
        output = function.behaviour(b"\x00\x01" * 256)
        assert len(output) == function.spec.output_bytes


class TestMatMul:
    def test_identity_multiplication(self):
        identity = [[1 if row == column else 0 for column in range(3)] for row in range(3)]
        matrix = [[1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert matrix_multiply(identity, matrix) == matrix

    def test_known_product(self):
        a = [[1, 2], [3, 4]]
        b = [[5, 6], [7, 8]]
        assert matrix_multiply(a, b) == [[19, 22], [43, 50]]

    def test_dimension_checks(self):
        with pytest.raises(ValueError):
            matrix_multiply([[1, 2]], [[1, 2]])
        with pytest.raises(ValueError):
            matrix_multiply([[1, 2], [3]], [[1], [2]])

    def test_hardware_function_matches_reference(self):
        function = MatMulFunction()
        a = [[(row * 8 + column) % 7 - 3 for column in range(8)] for row in range(8)]
        b = [[(row + column) % 5 - 2 for column in range(8)] for row in range(8)]
        payload = struct.pack("<64h", *[value for row in a for value in row]) + struct.pack(
            "<64h", *[value for row in b for value in row]
        )
        output = function.behaviour(payload)
        result = struct.unpack("<64i", output)
        expected = matrix_multiply(a, b)
        assert list(result) == [value for row in expected for value in row]


class TestCrc32Function:
    def test_matches_zlib(self):
        function = Crc32Function()
        for data in (b"", b"abc", bytes(range(200))):
            assert int.from_bytes(function.behaviour(data), "big") == zlib.crc32(data)


class TestBitonicSort:
    def test_sorts_power_of_two_lists(self):
        values = [5, 3, 8, 1, 9, 2, 7, 4]
        assert bitonic_sort(values) == sorted(values)

    @given(st.lists(st.integers(min_value=0, max_value=65535), min_size=64, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_matches_sorted_property(self, values):
        assert bitonic_sort(values) == sorted(values)

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            bitonic_sort([1, 2, 3])

    def test_compare_exchange_count(self):
        assert compare_exchange_count(1) == 0
        assert compare_exchange_count(8) == 4 * 3 * 4 // 2

    def test_hardware_function_sorts_keys(self):
        function = BitonicSortFunction()
        keys = list(range(64, 0, -1))
        payload = struct.pack("<64H", *keys)
        output = function.behaviour(payload)
        assert list(struct.unpack("<64H", output)) == sorted(keys)


class TestStringMatch:
    def test_counts_overlapping_occurrences(self):
        assert count_occurrences(b"aaaa", b"aa") == 3
        assert count_occurrences(b"hello", b"xyz") == 0
        assert count_occurrences(b"hello", b"") == 0

    def test_hardware_function(self):
        function = StringMatchFunction(pattern=b"AB")
        output = function.behaviour(b"ABxxABAB")
        assert struct.unpack(">I", output)[0] == 3

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            StringMatchFunction(pattern=b"")
