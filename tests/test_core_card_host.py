"""Tests for the PCI card personality and the host driver."""

import pytest

from repro.core.builder import build_coprocessor
from repro.core.card import CoprocessorCard
from repro.core.exceptions import UnknownFunctionError
from repro.core.host import build_host_system
from repro.mcu.commands import (
    REG_COMMAND,
    REG_FUNCTION_ID,
    REG_OUTPUT_LENGTH,
    REG_STATUS,
    STATUS_OK,
    STATUS_UNKNOWN_FUNCTION,
    CommandKind,
)


@pytest.fixture
def driver(small_config, small_bank):
    coprocessor = build_coprocessor(config=small_config, bank=small_bank)
    return build_host_system(coprocessor)


class TestHostDriver:
    def test_call_returns_correct_output(self, driver):
        data = bytes(range(40))
        expected = driver.coprocessor.bank.by_name("crc32").behaviour(data)
        result = driver.call("crc32", data)
        assert result.output == expected
        assert result.total_ns > 0
        assert result.card_result is not None

    def test_pci_overhead_is_separated_from_card_time(self, driver):
        result = driver.call("crc32", bytes(200))
        assert result.pci_overhead_ns > 0
        assert result.card_latency_ns > 0
        assert result.total_ns == pytest.approx(
            result.pci_overhead_ns + result.card_latency_ns, rel=0.05
        )

    def test_second_call_benefits_from_residency(self, driver):
        first = driver.call("parity32", bytes(4))
        second = driver.call("parity32", bytes(4))
        assert second.total_ns < first.total_ns

    def test_small_payload_uses_pio_and_large_uses_dma(self, driver):
        driver.call("crc32", bytes(8))
        pio_jobs = driver.bridge.dma.jobs_completed
        driver.call("crc32", bytes(4096))
        assert driver.bridge.dma.jobs_completed > pio_jobs

    def test_unknown_function_rejected_before_touching_the_bus(self, driver):
        transactions = driver.bus.transactions_completed
        with pytest.raises(UnknownFunctionError):
            driver.call("ghost", b"")
        assert driver.bus.transactions_completed == transactions

    def test_preload_then_call_hits(self, driver):
        driver.preload("adder8")
        result = driver.call("adder8", bytes([2, 3]))
        assert result.card_result.hit
        assert result.output[0] == 5

    def test_evict_and_reset_commands(self, driver):
        driver.call("crc32", b"abc")
        driver.evict("crc32")
        assert not driver.coprocessor.is_loaded("crc32")
        driver.call("crc32", b"abc")
        driver.reset_card()
        assert driver.coprocessor.loaded_functions() == []

    def test_call_counter_and_clock_sharing(self, driver):
        driver.call("crc32", b"a")
        driver.call("crc32", b"b")
        assert driver.calls == 2
        assert driver.clock is driver.coprocessor.clock


class TestCardRegisterInterface:
    def test_direct_register_protocol(self, small_config, small_bank):
        coprocessor = build_coprocessor(config=small_config, bank=small_bank)
        card = CoprocessorCard(coprocessor)
        function = coprocessor.bank.by_name("crc32")
        payload = b"register level"
        card.interface.write_window(0, payload)
        card.interface.write_register(REG_FUNCTION_ID, function.function_id)
        card.interface.write_register(0x08, len(payload))  # REG_INPUT_LENGTH
        card.interface.write_register(REG_COMMAND, int(CommandKind.EXECUTE))
        assert card.interface.read_register(REG_STATUS) == STATUS_OK
        output_length = card.interface.read_register(REG_OUTPUT_LENGTH)
        output = card.interface.read_window(card.output_offset, output_length)
        assert output == function.behaviour(payload)

    def test_unknown_function_id_sets_error_status(self, small_config, small_bank):
        coprocessor = build_coprocessor(config=small_config, bank=small_bank)
        card = CoprocessorCard(coprocessor)
        card.interface.write_register(REG_FUNCTION_ID, 250)
        card.interface.write_register(REG_COMMAND, int(CommandKind.EXECUTE))
        assert card.interface.read_register(REG_STATUS) == STATUS_UNKNOWN_FUNCTION

    def test_bad_opcode_sets_error_status(self, small_config, small_bank):
        coprocessor = build_coprocessor(config=small_config, bank=small_bank)
        card = CoprocessorCard(coprocessor)
        card.interface.write_register(REG_COMMAND, 0x99)
        assert card.interface.read_register(REG_STATUS) != STATUS_OK

    def test_reset_command_clears_fabric(self, small_config, small_bank):
        coprocessor = build_coprocessor(config=small_config, bank=small_bank)
        card = CoprocessorCard(coprocessor)
        coprocessor.execute("crc32", b"x")
        card.interface.write_register(REG_COMMAND, int(CommandKind.RESET))
        assert card.interface.read_register(REG_STATUS) == STATUS_OK
        assert coprocessor.loaded_functions() == []

    def test_commands_processed_counter(self, small_config, small_bank):
        coprocessor = build_coprocessor(config=small_config, bank=small_bank)
        card = CoprocessorCard(coprocessor)
        card.interface.write_register(REG_COMMAND, int(CommandKind.NOP))
        card.interface.write_register(REG_COMMAND, int(CommandKind.NOP))
        assert card.commands_processed == 2
