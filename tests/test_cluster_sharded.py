"""Sharded fleet execution: merged digests must equal single-process runs.

The determinism argument (static hash routing + card-local timelines +
restartable traces, see ``repro/cluster/sharded.py``) is checked end to end:
for shard counts {1, 2, 4} the merged schedule digest, the counters and the
sojourn sketch must all equal the unsharded reference run.
"""

from types import SimpleNamespace

import pytest

from repro.cluster.dispatch import StaticHashPolicy
from repro.cluster.sharded import (
    ShardTraceView,
    ShardedRunConfig,
    build_single_process_fleet,
    merge_shard_records,
    partition_cards,
    run_sharded,
)

#: Small enough for tier-1, long enough to exercise several lockstep epochs
#: and every card (1500 requests over ~60 ms of simulated time).
TEST_CONFIG = ShardedRunConfig(total_cards=4, requests=1_500)


def fake_card(index, has_room=True):
    return SimpleNamespace(index=index, has_room=has_room)


class TestStaticHashPolicy:
    def test_home_index_is_pure_and_stable(self):
        assert StaticHashPolicy.home_index("crc32", 4) == StaticHashPolicy.home_index(
            "crc32", 4
        )
        homes = {StaticHashPolicy.home_index(name, 4) for name in
                 ("crc32", "aes_round", "fir16", "histogram", "matmul4")}
        assert homes <= set(range(4))

    def test_choose_routes_to_home_card(self):
        policy = StaticHashPolicy(total_cards=4)
        cards = [fake_card(index) for index in range(4)]
        request = SimpleNamespace(function="crc32")
        chosen = policy.choose(request, cards)
        assert chosen.index == StaticHashPolicy.home_index("crc32", 4)

    def test_full_home_card_rejects_rather_than_spills(self):
        home = StaticHashPolicy.home_index("crc32", 4)
        cards = [fake_card(index, has_room=(index != home)) for index in range(4)]
        policy = StaticHashPolicy(total_cards=4)
        assert policy.choose(SimpleNamespace(function="crc32"), cards) is None

    def test_unhosted_home_card_is_an_error(self):
        home = StaticHashPolicy.home_index("crc32", 4)
        cards = [fake_card(index) for index in range(4) if index != home]
        with pytest.raises(ValueError):
            StaticHashPolicy(total_cards=4).choose(
                SimpleNamespace(function="crc32"), cards
            )

    def test_total_cards_validated(self):
        with pytest.raises(ValueError):
            StaticHashPolicy(total_cards=0)

    def test_default_total_is_offered_card_count(self):
        cards = [fake_card(index) for index in range(3)]
        chosen = StaticHashPolicy().choose(SimpleNamespace(function="fir16"), cards)
        assert chosen.index == StaticHashPolicy.home_index("fir16", 3)


class TestPartitioning:
    def test_strided_partition_covers_all_cards_disjointly(self):
        for shards in (1, 2, 3, 4):
            partitions = partition_cards(4, shards)
            assert len(partitions) == shards
            flat = [index for part in partitions for index in part]
            assert sorted(flat) == list(range(4))

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(ValueError):
            partition_cards(4, 0)
        with pytest.raises(ValueError):
            partition_cards(2, 3)

    def test_trace_view_partitions_the_stream_exactly(self):
        _, full_trace = build_single_process_fleet(TEST_CONFIG)
        requests = list(full_trace._trace)
        views = [
            ShardTraceView(requests, part, TEST_CONFIG.total_cards)
            for part in partition_cards(TEST_CONFIG.total_cards, 2)
        ]
        shares = [list(view) for view in views]
        assert sum(len(share) for share in shares) == len(requests)
        for part, share in zip(partition_cards(TEST_CONFIG.total_cards, 2), shares):
            homes = set(part)
            assert all(
                StaticHashPolicy.home_index(request.function, TEST_CONFIG.total_cards)
                in homes
                for request in share
            )


class TestShardedEqualsSingleProcess:
    @pytest.fixture(scope="class")
    def reference(self):
        fleet, trace = build_single_process_fleet(TEST_CONFIG)
        stats = fleet.run(trace)
        return fleet, stats

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_merged_digest_equals_single_process(self, reference, shards):
        _, single_stats = reference
        result = run_sharded(TEST_CONFIG, shards=shards)
        assert result.shards == shards
        assert result.epochs >= 1
        assert result.stats.schedule_digest() == single_stats.schedule_digest()

    def test_merged_counters_and_sketch_equal_single_process(self, reference):
        single_fleet, single_stats = reference
        result = run_sharded(TEST_CONFIG, shards=2)
        merged = result.stats
        assert merged.completed == single_stats.completed
        assert merged.rejected == single_stats.rejected
        assert merged.arrivals == single_stats.arrivals
        assert merged.dispatched == single_stats.dispatched
        assert dict(merged.per_tenant_completed) == dict(
            single_stats.per_tenant_completed
        )
        assert dict(merged.per_card_dispatched) == dict(
            single_stats.per_card_dispatched
        )
        assert merged.first_arrival_ns == single_stats.first_arrival_ns
        # The sojourn sketches are merged by replay: bit-identical sums and
        # identical percentiles, not merely "close".
        assert merged._fleet_sojourn._sum == single_stats._fleet_sojourn._sum
        for percentile in (50, 95, 99):
            assert merged.latency_percentile(percentile) == single_stats.latency_percentile(
                percentile
            )
        # Card summaries come back in global card order.
        names = [row["card"] for row in result.card_summaries]
        assert names == sorted(names)
        assert len(names) == TEST_CONFIG.total_cards
        assert result.events_dispatched > 0

    def test_merge_shard_records_is_order_insensitive_across_shards(self):
        records_a = [
            ("done", 100.0, "t0", "crc32", "card0", True, 50.0, 60.0, False),
            ("reject", 300.0, "t0", "crc32"),
        ]
        records_b = [
            ("done", 200.0, "t1", "fir16", "card1", False, 120.0, 130.0, False),
        ]
        first = merge_shard_records([records_a, records_b])
        second = merge_shard_records([records_b, records_a])
        assert first.schedule_digest() == second.schedule_digest()
        assert first.completed == 2 and first.rejected == 1


class TestEagerGetScheduleNeutrality:
    def test_fleet_digest_identical_with_fewer_events(self):
        """The scale configuration's kernel mode must not change the schedule.

        ``eager_get`` collapses the dispatcher→card store hand-off into a
        synchronous grant; the fleet workload's schedule digest must be
        byte-identical to the default kernel's while dispatching fewer
        events.
        """
        from repro.core.builder import build_fleet
        from repro.core.config import SMALL_CONFIG
        from repro.functions.bank import build_small_bank
        from repro.sim.kernel import Simulator
        from repro.workloads.multitenant import StreamingFleetTrace, default_tenant_mix

        digests = {}
        events = {}
        for eager in (False, True):
            bank = build_small_bank()
            specs = default_tenant_mix(bank, tenants=3, skew=1.2)
            stream = StreamingFleetTrace(
                bank, specs, 800, mean_interarrival_ns=40_000.0, seed=11
            )
            fleet = build_fleet(
                cards=3,
                config=SMALL_CONFIG.with_overrides(seed=11),
                bank=bank,
                policy="affinity",
                queue_depth=64,
                stats_mode="sketch",
                hit_fastpath=True,
                simulator=Simulator(eager_get=eager),
            )
            stats = fleet.run(stream)
            digests[eager] = stats.schedule_digest()
            events[eager] = fleet.simulator.events_dispatched
        assert digests[True] == digests[False]
        assert events[True] < events[False]
