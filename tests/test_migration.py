"""Live migration & defragmentation: capture/restore, relocation, rebalancing.

Unit coverage for the PR 5 stack, layer by layer: the relocatable-region
helpers, the device-level capture/relocate primitives, the CAPTURE / RESTORE /
DEFRAG PCI commands end to end through the host driver, the defragmenter
service, and the fleet rebalancer's planning and order execution.
"""

import pytest

from repro.bitstream.relocate import RelocationError, compatible_fabrics, rebase_region
from repro.core.builder import build_coprocessor, build_fleet
from repro.core.config import SMALL_CONFIG
from repro.core.exceptions import CoprocessorError
from repro.core.host import build_host_system
from repro.fpga.errors import ConfigurationError, ExecutionError, FrameCollisionError
from repro.fpga.frame import FrameRegion
from repro.fpga.geometry import TEST_GEOMETRY, FabricGeometry
from repro.workloads.multitenant import default_tenant_mix, multi_tenant_trace


def protected_driver(seed=11, defrag=True, bank=None):
    from repro.functions.bank import build_small_bank

    coprocessor = build_coprocessor(
        config=SMALL_CONFIG.with_overrides(seed=seed),
        bank=bank if bank is not None else build_small_bank(),
    )
    coprocessor.enable_fault_protection()
    if defrag:
        coprocessor.enable_defrag()
    return build_host_system(coprocessor)


class TestRebaseRegion:
    def test_preserves_shape_and_order(self):
        region = FrameRegion.from_addresses(
            [TEST_GEOMETRY.frame_at(i) for i in (7, 5, 10)]
        )
        rebased = rebase_region(TEST_GEOMETRY, region, TEST_GEOMETRY, 20)
        indices = [a.flat_index(TEST_GEOMETRY.tiles_per_column) for a in rebased]
        # Lowest frame lands at 20; relative offsets (2, 0, 5) and the slot
        # order are both preserved.
        assert indices == [22, 20, 25]

    def test_rejects_out_of_range_targets(self):
        region = FrameRegion.from_addresses([TEST_GEOMETRY.frame_at(0)])
        with pytest.raises(RelocationError):
            rebase_region(TEST_GEOMETRY, region, TEST_GEOMETRY, TEST_GEOMETRY.frame_count)

    def test_rejects_incompatible_fabrics(self):
        other = FabricGeometry(columns=8, rows=32, clb_rows_per_frame=8)
        assert not compatible_fabrics(TEST_GEOMETRY, other)
        region = FrameRegion.from_addresses([TEST_GEOMETRY.frame_at(0)])
        with pytest.raises(RelocationError):
            rebase_region(TEST_GEOMETRY, region, other, 0)

    def test_bigger_fabric_hosts_smaller_fabrics_frames(self):
        bigger = FabricGeometry(columns=16, rows=32, clb_rows_per_frame=4)
        assert compatible_fabrics(TEST_GEOMETRY, bigger)
        region = FrameRegion.from_addresses(
            [TEST_GEOMETRY.frame_at(i) for i in (0, 1)]
        )
        rebased = rebase_region(TEST_GEOMETRY, region, bigger, 100)
        assert [a.flat_index(bigger.tiles_per_column) for a in rebased] == [100, 101]


class TestDeviceCaptureRelocate:
    def test_capture_is_slot_indexed_and_timed(self):
        driver = protected_driver()
        driver.preload("crc32")
        device = driver.coprocessor.device
        before_ns = device.clock.now
        bitstream = device.capture_function("crc32")
        assert device.clock.now > before_ns  # readback costs port time
        assert bitstream.header.function_name == "crc32"
        assert bitstream.frames == device.readback("crc32")
        assert device.total_captures == 1

    def test_capture_unloaded_raises(self):
        driver = protected_driver()
        with pytest.raises(ExecutionError):
            driver.coprocessor.device.capture_function("crc32")

    def test_relocate_overlapping_region_preserves_payloads(self):
        driver = protected_driver()
        driver.preload("crc32")
        device = driver.coprocessor.device
        old_region = device.region_of("crc32")
        payloads = device.readback("crc32")
        tiles = device.geometry.tiles_per_column
        base = min(a.flat_index(tiles) for a in old_region)
        # Shift up by one frame: the target overlaps the source.
        target = rebase_region(device.geometry, old_region, device.geometry, base + 1)
        elapsed = device.relocate_function("crc32", target)
        assert elapsed > 0
        assert device.readback("crc32") == payloads
        assert list(device.region_of("crc32")) == list(target)
        # Ownership moved in lockstep; the vacated frame is erased and free.
        vacated = [a for a in old_region if a not in set(target)]
        for address in vacated:
            assert device.memory.owner_of(address) is None
            assert device.memory.frames[address].is_clear
        for address in target:
            assert device.memory.owner_of(address) == "crc32"
            assert device.memory.frame_crc_ok(address)
        # Golden images followed the move.
        golden = device.golden
        for address, payload in zip(target, payloads):
            assert golden.payload_for(address) == payload
        for address in vacated:
            assert address not in golden

    def test_relocate_refuses_foreign_frames_and_wrong_sizes(self):
        driver = protected_driver()
        driver.preload("crc32")
        driver.preload("adder8")
        device = driver.coprocessor.device
        foreign = device.region_of("adder8")
        crc_region = device.region_of("crc32")
        collision = FrameRegion.from_addresses(
            list(foreign)[:1] + list(crc_region)[1:]
        )
        with pytest.raises(FrameCollisionError):
            device.relocate_function("crc32", collision)
        with pytest.raises(ConfigurationError):
            device.relocate_function("crc32", FrameRegion.from_addresses(list(crc_region)[:-1]))

    def test_relocate_same_region_is_a_free_noop(self):
        driver = protected_driver()
        driver.preload("crc32")
        device = driver.coprocessor.device
        before_ns = device.clock.now
        assert device.relocate_function("crc32", device.region_of("crc32")) == 0.0
        assert device.clock.now == before_ns

    def test_relocate_on_wedged_port_refuses(self):
        driver = protected_driver()
        driver.preload("crc32")
        device = driver.coprocessor.device
        region = device.region_of("crc32")
        target = rebase_region(
            device.geometry, region, device.geometry,
            min(a.flat_index(device.geometry.tiles_per_column) for a in region) + 1,
        )
        device.port.wedge()
        with pytest.raises(ConfigurationError):
            device.relocate_function("crc32", target)
        device.port.unwedge()
        assert device.readback("crc32")  # still intact where it was


class TestCaptureRestorePci:
    def test_migration_roundtrip_is_byte_identical(self):
        source, dest = protected_driver(), protected_driver()
        source.preload("crc32")
        payloads = source.coprocessor.device.readback("crc32")
        blob = source.migrate_function_to("crc32", dest)
        assert not source.card.is_resident("crc32")
        assert dest.card.is_resident("crc32")
        assert dest.coprocessor.device.readback("crc32") == payloads
        assert len(blob) < sum(len(p) for p in payloads)  # it travelled compressed
        # The restored function still computes.
        assert dest.call("crc32", b"abcd1234").output

    def test_restore_pays_card_time_and_pci_transfer(self):
        source, dest = protected_driver(), protected_driver()
        source.preload("crc32")
        blob = source.capture_function("crc32")
        before = dest.clock.now
        dest.restore_function("crc32", blob)
        assert dest.clock.now > before

    def test_capture_of_nonresident_function_fails_cleanly(self):
        driver = protected_driver()
        with pytest.raises(CoprocessorError):
            driver.capture_function("crc32")
        assert driver.card.commands_processed == 1  # the card answered, not crashed

    def test_restore_refuses_wrong_function_blob(self):
        source, dest = protected_driver(), protected_driver()
        source.preload("crc32")
        blob = source.capture_function("crc32")
        with pytest.raises(CoprocessorError):
            dest.restore_function("adder8", blob)
        assert not dest.card.is_resident("adder8")

    def test_restore_refuses_empty_blob_and_garbage(self):
        dest = protected_driver()
        with pytest.raises(CoprocessorError):
            dest.restore_function("crc32", b"")
        with pytest.raises(CoprocessorError):
            dest.restore_function("crc32", b"not a compressed image")

    def test_restore_on_already_resident_card_is_a_hit(self):
        source, dest = protected_driver(), protected_driver()
        source.preload("crc32")
        dest.preload("crc32")
        blob = source.capture_function("crc32")
        outcome_region = dest.coprocessor.device.region_of("crc32")
        dest.restore_function("crc32", blob)
        assert list(dest.coprocessor.device.region_of("crc32")) == list(outcome_region)

    def test_failed_restore_never_evicts_residents(self):
        """Blob validation must run before the irreversible eviction loop."""
        from repro.core.config import CoprocessorConfig
        from repro.functions.bank import build_small_bank

        # 8 frames: restoring 7-frame crc32 next to three 1-frame residents
        # forces an eviction plan — which a bad blob must never execute.
        tiny = CoprocessorConfig(
            fabric_columns=2,
            fabric_rows=16,
            clb_rows_per_frame=4,
            rom_capacity_bytes=1 << 20,
            ram_capacity_bytes=1 << 18,
            seed=11,
        )
        source = protected_driver()
        source.preload("crc32")
        blob = source.capture_function("crc32")
        dest = build_host_system(build_coprocessor(config=tiny, bank=build_small_bank()))
        for name in ("parity32", "adder8", "popcount8"):
            dest.preload(name)
        residents = dest.card.resident_functions()
        for bad_blob in (blob[: len(blob) // 2], blob[:-3] + b"\x00\x00\x00"):
            with pytest.raises(CoprocessorError):
                dest.restore_function("crc32", bad_blob)
            assert dest.card.resident_functions() == residents
        # The intact blob, by contrast, is allowed to evict its way in.
        dest.restore_function("crc32", blob)
        assert dest.card.is_resident("crc32")

    def test_migrate_refuses_layout_incompatible_equal_size_fabrics(self):
        """Equal frame bytes is not enough: the CLB layout must match too."""
        from repro.functions.bank import build_small_bank

        source = protected_driver()
        source.preload("crc32")
        # 4x5-LUT CLBs serialise to the same 33 bytes as 8x4-LUT CLBs, so the
        # wire-level frame-size check alone would wave this through.
        other = build_host_system(
            build_coprocessor(
                config=SMALL_CONFIG.with_overrides(luts_per_clb=4, lut_inputs=5),
                bank=build_small_bank(),
            )
        )
        assert (
            other.coprocessor.geometry.frame_config_bytes
            == source.coprocessor.geometry.frame_config_bytes
        )
        with pytest.raises(CoprocessorError):
            source.migrate_function_to("crc32", other)
        assert source.card.is_resident("crc32")  # refused before capture

    def test_rebalancer_never_plans_onto_incompatible_fabrics(self, small_bank):
        from repro.core.builder import build_host_driver
        from repro.cluster import Fleet

        drivers = [
            build_host_driver(config=SMALL_CONFIG.with_overrides(seed=13), bank=small_bank),
            build_host_driver(
                config=SMALL_CONFIG.with_overrides(seed=13, luts_per_clb=4, lut_inputs=5),
                bank=small_bank,
            ),
        ]
        fleet = Fleet(drivers, policy="affinity", queue_depth=8)
        rebalancer = fleet.enable_rebalancing(40_000.0)
        for name in small_bank.names():
            fleet.cards[0].driver.preload(name)
        # Maximal residency skew, but the only receiver is frame-incompatible.
        assert rebalancer.plan(fleet) == []

    def test_restore_on_wedged_port_fails_like_a_load(self):
        source, dest = protected_driver(), protected_driver()
        source.preload("crc32")
        blob = source.capture_function("crc32")
        dest.coprocessor.device.port.wedge()
        with pytest.raises(CoprocessorError):
            dest.restore_function("crc32", blob)
        assert not dest.card.is_resident("crc32")


class TestDefragmenter:
    def fragmented_driver(self):
        driver = protected_driver()
        names = driver.coprocessor.bank.names()
        for name in names:
            driver.preload(name)
        for name in names[::2]:
            driver.evict(name)
        return driver

    def test_defrag_compacts_and_preserves_readback(self):
        driver = self.fragmented_driver()
        coprocessor = driver.coprocessor
        device = coprocessor.device
        resident = coprocessor.minios.resident_functions()
        readbacks = {name: device.readback(name) for name in resident}
        frag_before = coprocessor.defragmenter.fragmentation()
        run_before = coprocessor.minios.free_frames.largest_contiguous_run()
        moved = driver.defrag_card()
        assert moved > 0
        assert coprocessor.defragmenter.fragmentation() <= frag_before
        assert coprocessor.minios.free_frames.largest_contiguous_run() >= run_before
        for name in resident:
            assert device.readback(name) == readbacks[name]
            for address in device.region_of(name):
                assert device.memory.frame_crc_ok(address)
        # The mini OS's free list agrees with the device's ownership index.
        assert (
            coprocessor.minios.free_frames.as_list() == device.memory.unowned_frames()
        )

    def test_defrag_budget_bounds_moves(self):
        driver = self.fragmented_driver()
        result = driver.coprocessor.defrag(max_moves=1)
        assert result.moves <= 1

    def test_defrag_without_service_is_bad_command(self):
        driver = protected_driver(defrag=False)
        with pytest.raises(CoprocessorError):
            driver.defrag_card()

    def test_defrag_charges_card_time(self):
        driver = self.fragmented_driver()
        before = driver.clock.now
        driver.defrag_card()
        assert driver.clock.now > before

    def test_defrag_is_idempotent_once_compact(self):
        driver = self.fragmented_driver()
        driver.defrag_card()
        assert driver.defrag_card() == 0  # second pass has nothing to move


class TestFleetRebalancing:
    def skewed_fleet(self, bank, rebalance=True, cards=3, **kwargs):
        fleet = build_fleet(
            cards=cards,
            config=SMALL_CONFIG.with_overrides(seed=13),
            bank=bank,
            policy="affinity",
            queue_depth=8,
            rebalance_period_ns=40_000.0 if rebalance else None,
            rebalance_min_queue_skew=6,
            **kwargs,
        )
        for name in bank.names():
            fleet.cards[0].driver.preload(name)
        return fleet

    def small_trace(self, bank, length=120, seed=13):
        return multi_tenant_trace(
            bank,
            default_tenant_mix(bank, tenants=2, skew=1.2),
            length=length,
            mean_interarrival_ns=5_000.0,
            seed=seed,
        )

    def test_rebalancing_migrates_without_byte_diffs(self, small_bank):
        fleet = self.skewed_fleet(small_bank)
        stats = fleet.run(self.small_trace(small_bank))
        summary = fleet.rebalance_summary()
        assert summary["migrations_completed"] > 0
        assert summary["migration_byte_diffs"] == 0
        assert stats.completed + stats.rejected == stats.arrivals
        assert all(card.outstanding == 0 for card in fleet.cards)
        # Residency actually spread off card 0.
        assert any(card.resident_functions() for card in fleet.cards[1:])

    def test_rebalanced_schedules_are_deterministic(self, small_bank):
        def run():
            fleet = self.skewed_fleet(small_bank)
            fleet.run(self.small_trace(small_bank))
            return fleet.fingerprint()

        assert run() == run()

    def test_migrations_alter_the_schedule_digest(self, small_bank):
        off = self.skewed_fleet(small_bank, rebalance=False)
        off_stats = off.run(self.small_trace(small_bank))
        on = self.skewed_fleet(small_bank, rebalance=True)
        on_stats = on.run(self.small_trace(small_bank))
        assert on.rebalance_summary()["migrations_completed"] > 0
        assert off_stats.schedule_digest() != on_stats.schedule_digest()

    def test_migration_to_dead_card_fails_over_cleanly(self, small_bank):
        fleet = self.skewed_fleet(small_bank)
        trace = self.small_trace(small_bank, length=80)
        # Kill the (only) natural receiver early: orders targeting it must be
        # recorded as failures, never crash a worker or leak outstanding.
        fleet.kill_card(1)
        stats = fleet.run(trace)
        summary = fleet.rebalance_summary()
        assert stats.completed + stats.rejected == stats.arrivals
        assert all(card.outstanding == 0 for card in fleet.cards)
        assert summary["migration_byte_diffs"] == 0

    def test_enable_rebalancing_validates_period(self, small_bank):
        fleet = build_fleet(cards=2, config=SMALL_CONFIG, bank=small_bank)
        with pytest.raises(ValueError):
            fleet.enable_rebalancing(0.0)

    def test_rebalancer_cooldown_is_coerced_to_int_ns(self):
        from repro.cluster.rebalance import Rebalancer

        # Default and integral-float cooldowns land as ints.
        assert Rebalancer().cooldown_ns == 1_000_000
        assert isinstance(Rebalancer().cooldown_ns, int)
        coerced = Rebalancer(cooldown_ns=250_000.0)
        assert coerced.cooldown_ns == 250_000
        assert isinstance(coerced.cooldown_ns, int)
        assert Rebalancer(cooldown_ns=0).cooldown_ns == 0
        # Fractional, negative and non-numeric cooldowns are rejected.
        with pytest.raises(ValueError):
            Rebalancer(cooldown_ns=1000.5)
        with pytest.raises(ValueError):
            Rebalancer(cooldown_ns=-1)
        with pytest.raises(TypeError):
            Rebalancer(cooldown_ns="soon")
        with pytest.raises(TypeError):
            Rebalancer(cooldown_ns=True)

    def test_enable_rebalancing_default_cooldown_is_int_ten_periods(self, small_bank):
        fleet = build_fleet(cards=2, config=SMALL_CONFIG, bank=small_bank)
        rebalancer = fleet.enable_rebalancing(40_000.0)
        assert rebalancer.cooldown_ns == 400_000
        assert isinstance(rebalancer.cooldown_ns, int)

    def test_rebalancer_plans_nothing_on_a_balanced_fleet(self, small_bank):
        fleet = build_fleet(
            cards=2,
            config=SMALL_CONFIG.with_overrides(seed=13),
            bank=small_bank,
            policy="affinity",
        )
        rebalancer = fleet.enable_rebalancing(40_000.0)
        # Frame-balanced residency: crc32 is about as big as the other three
        # functions together, so neither queue depth nor frame usage is
        # skewed enough to justify paying for a migration.
        fleet.cards[0].driver.preload("crc32")
        for name in ("parity32", "adder8", "popcount8"):
            fleet.cards[1].driver.preload(name)
        assert rebalancer.plan(fleet) == []

    def test_fleet_defrag_service_compacts_cards(self, small_bank):
        fleet = build_fleet(
            cards=2,
            config=SMALL_CONFIG.with_overrides(seed=13),
            bank=small_bank,
            policy="affinity",
            defrag_period_ns=30_000.0,
        )
        driver = fleet.cards[0].driver
        names = small_bank.names()
        for name in names:
            driver.preload(name)
        for name in names[::2]:
            driver.evict(name)
        frag_before = fleet.cards[0].driver.coprocessor.defragmenter.fragmentation()
        assert frag_before > 0
        fleet.run(self.small_trace(small_bank, length=40))
        summary = fleet.rebalance_summary()
        assert summary["defrag_passes"] > 0
        assert summary["defrag_frames_moved"] > 0
        assert fleet.cards[0].driver.coprocessor.defragmenter.fragmentation() == 0.0
