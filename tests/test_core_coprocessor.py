"""Tests for the co-processor core: configuration, download, execution, stats."""

import pytest

from repro.core.builder import build_coprocessor, build_default_coprocessor
from repro.core.config import CoprocessorConfig, SMALL_CONFIG
from repro.core.exceptions import UnknownFunctionError
from repro.core.stats import CoprocessorStatistics


class TestCoprocessorConfig:
    def test_geometry_derived_from_fields(self):
        config = CoprocessorConfig(fabric_columns=8, fabric_rows=32, clb_rows_per_frame=4)
        geometry = config.geometry()
        assert geometry.frame_count == 64

    def test_with_overrides_returns_new_config(self):
        config = CoprocessorConfig()
        other = config.with_overrides(replacement_policy="fifo", seed=9)
        assert other.replacement_policy == "fifo" and other.seed == 9
        assert config.replacement_policy == "lru"

    def test_validation(self):
        with pytest.raises(ValueError):
            CoprocessorConfig(rom_capacity_bytes=0)
        with pytest.raises(ValueError):
            CoprocessorConfig(compression_window_bytes=0)
        with pytest.raises(ValueError):
            CoprocessorConfig(software_slowdown=0)


class TestBankDownload:
    def test_download_creates_a_record_per_function(self, small_coprocessor):
        records = small_coprocessor.rom.record_table
        assert len(records) == len(small_coprocessor.bank)
        for function in small_coprocessor.bank:
            record = records.by_name(function.name)
            assert record.input_bytes == function.spec.input_bytes
            assert record.output_bytes == function.spec.output_bytes
            assert record.frame_count == function.frames_required(small_coprocessor.geometry)
            assert record.codec_name == small_coprocessor.config.codec_name

    def test_download_reports_compression(self, small_coprocessor):
        for name, report in small_coprocessor.download_reports.items():
            assert report["stored_bytes"] > 0
            assert report["raw_bytes"] >= report["frames"]
            assert report["compression_ratio"] > 0

    def test_rom_layout_accounts_for_all_functions(self, small_coprocessor):
        layout = small_coprocessor.rom_layout()
        assert layout["functions"] == len(small_coprocessor.bank)
        assert layout["bitstream_bytes"] + layout["record_bytes"] + layout["free_bytes"] == layout["capacity_bytes"]

    def test_execute_without_download_downloads_lazily(self, small_config, small_bank):
        copro = build_coprocessor(config=small_config, bank=small_bank, download=False)
        assert not copro.bank_downloaded
        result = copro.execute("crc32", b"abc")
        assert copro.bank_downloaded
        assert len(result.output) == 4


class TestExecution:
    def test_results_match_reference_for_every_function(self, small_coprocessor):
        for function in small_coprocessor.bank:
            data = bytes(range(function.spec.input_bytes))
            result = small_coprocessor.execute(function.name, data)
            assert result.output == function.behaviour(data), function.name

    def test_unknown_function_raises(self, small_coprocessor):
        with pytest.raises(UnknownFunctionError):
            small_coprocessor.execute("ghost", b"")

    def test_hit_miss_accounting(self, small_coprocessor):
        first = small_coprocessor.execute("crc32", b"x")
        second = small_coprocessor.execute("crc32", b"x")
        assert not first.hit and first.reconfigured
        assert second.hit and not second.reconfigured
        stats = small_coprocessor.stats
        assert stats.requests == 2 and stats.hits == 1 and stats.misses == 1
        assert 0.0 < stats.hit_rate < 1.0

    def test_latency_breakdown_is_positive_and_complete(self, small_coprocessor):
        result = small_coprocessor.execute("parity32", bytes(4))
        assert result.latency_ns > 0
        assert set(result.breakdown) == {
            "decode", "stage_input", "reconfigure", "feed", "execute", "collect", "readout",
        }
        assert sum(result.breakdown.values()) == pytest.approx(result.latency_ns, rel=1e-6)

    def test_preload_hides_reconfiguration_from_execute(self, small_coprocessor):
        small_coprocessor.preload("adder8")
        result = small_coprocessor.execute("adder8", bytes([1, 1]))
        assert result.hit

    def test_evict_and_reset(self, small_coprocessor):
        small_coprocessor.execute("crc32", b"x")
        small_coprocessor.evict("crc32")
        assert not small_coprocessor.is_loaded("crc32")
        small_coprocessor.execute("crc32", b"x")
        small_coprocessor.reset()
        assert small_coprocessor.loaded_functions() == []
        assert small_coprocessor.stats.requests == 0

    def test_clock_advances_monotonically(self, small_coprocessor):
        times = []
        for _ in range(3):
            small_coprocessor.execute("crc32", b"data")
            times.append(small_coprocessor.clock.now)
        assert times == sorted(times)
        assert times[0] > 0

    def test_describe_mentions_policy_and_codec(self, small_coprocessor):
        text = small_coprocessor.describe()
        assert "lru" in text
        assert small_coprocessor.config.codec_name in text


class TestStatistics:
    def test_percentiles_and_summary(self, small_coprocessor):
        for index in range(10):
            small_coprocessor.execute("crc32", bytes([index]) * 16)
        stats = small_coprocessor.stats
        assert stats.latency_percentile(0) <= stats.latency_percentile(50) <= stats.latency_percentile(100)
        summary = stats.summary()
        assert summary["requests"] == 10
        assert 0 < summary["hit_rate"] <= 1.0
        assert "mean latency" in stats.describe()

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            stats = CoprocessorStatistics()
            stats.latencies_ns.append(1.0)
            stats.latency_percentile(150)

    def test_per_function_latency(self, small_coprocessor):
        small_coprocessor.execute("crc32", b"abc")
        small_coprocessor.execute("parity32", bytes(4))
        assert small_coprocessor.stats.mean_latency_for("crc32") > 0
        assert small_coprocessor.stats.mean_latency_for("ghost") == 0.0

    def test_empty_statistics_are_zero(self):
        stats = CoprocessorStatistics()
        assert stats.hit_rate == 0.0
        assert stats.mean_latency_ns == 0.0
        assert stats.latency_percentile(95) == 0.0


class TestDefaultBuilder:
    def test_small_default_coprocessor(self):
        copro = build_default_coprocessor(seed=1, small=True)
        assert copro.bank_downloaded
        assert len(copro.bank) == 4

    def test_function_subset_builder(self, default_bank):
        copro = build_coprocessor(
            config=SMALL_CONFIG, bank=default_bank, functions=["crc32", "sha1"]
        )
        assert copro.bank.names() == ["crc32", "sha1"]
        result = copro.execute("sha1", b"abc")
        assert result.output == default_bank.by_name("sha1").behaviour(b"abc")
