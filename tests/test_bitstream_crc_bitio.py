"""Tests for CRC-32 and the bit-level I/O helpers."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstream.bitio import BitReader, BitWriter
from repro.bitstream.crc import IncrementalCrc32, crc32


class TestCrc32:
    def test_known_value(self):
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32(b"") == 0

    def test_matches_zlib(self):
        for data in (b"", b"a", b"hello world", bytes(range(256)) * 3):
            assert crc32(data) == zlib.crc32(data)

    @given(st.binary(max_size=512))
    @settings(max_examples=50, deadline=None)
    def test_matches_zlib_property(self, data):
        assert crc32(data) == zlib.crc32(data)

    def test_incremental_matches_one_shot(self):
        data = b"the quick brown fox jumps over the lazy dog"
        accumulator = IncrementalCrc32()
        accumulator.update(data[:10]).update(data[10:])
        assert accumulator.value == crc32(data)

    def test_incremental_reset(self):
        accumulator = IncrementalCrc32()
        accumulator.update(b"junk")
        accumulator.reset()
        accumulator.update(b"abc")
        assert accumulator.value == crc32(b"abc")

    def test_initial_parameter_chains(self):
        data = b"abcdef"
        assert crc32(data[3:], crc32(data[:3])) == crc32(data)


class TestBitIo:
    def test_write_and_read_bits(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0x5A, 8)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(4) == 0b1011
        assert reader.read_bits(8) == 0x5A

    def test_single_bits_and_padding(self):
        writer = BitWriter()
        for bit in (1, 0, 1):
            writer.write_bit(bit)
        data = writer.getvalue()
        assert len(data) == 1
        reader = BitReader(data)
        assert [reader.read_bit() for _ in range(3)] == [1, 0, 1]

    def test_unary_round_trip(self):
        writer = BitWriter()
        for value in (0, 3, 7, 1):
            writer.write_unary(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_unary() for _ in range(4)] == [0, 3, 7, 1]

    def test_invalid_writes(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bit(2)
        with pytest.raises(ValueError):
            writer.write_bits(4, 2)
        with pytest.raises(ValueError):
            writer.write_bits(1, -1)
        with pytest.raises(ValueError):
            writer.write_unary(-1)

    def test_read_past_end_raises(self):
        reader = BitReader(b"")
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_align_to_byte(self):
        reader = BitReader(bytes([0b10000000, 0xFF]))
        reader.read_bit()
        reader.align_to_byte()
        assert reader.read_bits(8) == 0xFF

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        assert reader.bits_remaining == 16
        reader.read_bits(5)
        assert reader.bits_remaining == 11

    @given(st.lists(st.integers(min_value=0, max_value=2**16 - 1), max_size=20),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_fixed_width_round_trip_property(self, values, width):
        values = [value % (1 << width) for value in values]
        writer = BitWriter()
        for value in values:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bits(width) for _ in values] == values
