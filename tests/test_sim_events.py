"""Tests for the event queue."""

import pytest

from repro.sim.events import Event, EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.schedule(30.0, name="c")
        queue.schedule(10.0, name="a")
        queue.schedule(20.0, name="b")
        assert [queue.pop().name for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_priority_then_insertion(self):
        queue = EventQueue()
        queue.schedule(10.0, name="later", priority=5)
        queue.schedule(10.0, name="first", priority=0)
        queue.schedule(10.0, name="second", priority=0)
        assert [queue.pop().name for _ in range(3)] == ["first", "second", "later"]

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.schedule(1.0)
        assert queue and len(queue) == 1
        queue.pop()
        assert not queue

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.schedule(5.0, name="only")
        assert queue.peek().name == "only"
        assert len(queue) == 1

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        victim = queue.schedule(1.0, name="victim")
        queue.schedule(2.0, name="keeper")
        queue.cancel(victim)
        assert queue.pop().name == "keeper"

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0)

    def test_callbacks_fire(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, name="cb", callback=lambda event: fired.append(event.name))
        queue.pop().fire()
        assert fired == ["cb"]

    def test_cancelled_event_does_not_fire(self):
        fired = []
        event = Event(1.0, name="x", callback=lambda e: fired.append(1))
        event.cancel()
        event.fire()
        assert fired == []

    def test_drain_yields_in_order(self):
        queue = EventQueue()
        for time in (3.0, 1.0, 2.0):
            queue.schedule(time)
        assert [event.time_ns for event in queue.drain()] == [1.0, 2.0, 3.0]
        assert not queue

    def test_next_time(self):
        queue = EventQueue()
        assert queue.next_time is None
        queue.schedule(7.0)
        assert queue.next_time == 7.0

    def test_clear(self):
        queue = EventQueue()
        queue.schedule(1.0)
        queue.clear()
        assert len(queue) == 0


class TestLiveAccounting:
    """Regression tests: a cancelled event must be counted exactly once.

    The original implementation decremented the live count in ``cancel()``
    *and* again when ``pop()``/``peek()`` discarded the lazily-removed entry,
    so ``len(queue)`` drifted low.
    """

    def test_cancel_then_pop_counts_once(self):
        queue = EventQueue()
        victim = queue.schedule(1.0, name="victim")
        queue.schedule(2.0, name="keeper")
        queue.schedule(3.0, name="other")
        assert len(queue) == 3
        queue.cancel(victim)
        assert len(queue) == 2
        assert queue.pop().name == "keeper"  # discards the cancelled entry
        assert len(queue) == 1
        assert queue.pop().name == "other"
        assert len(queue) == 0
        assert not queue

    def test_cancel_then_peek_counts_once(self):
        queue = EventQueue()
        victim = queue.schedule(1.0, name="victim")
        queue.schedule(2.0, name="keeper")
        queue.cancel(victim)
        assert len(queue) == 1
        assert queue.peek().name == "keeper"  # peek discards lazily too
        assert len(queue) == 1

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        victim = queue.schedule(1.0)
        queue.schedule(2.0)
        queue.cancel(victim)
        queue.cancel(victim)
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_corrupt_len(self):
        # Cancelling an event that was already popped (e.g. a timeout that
        # fired before the caller got around to cancelling it) must not
        # drive the live count negative or disturb other entries.
        queue = EventQueue()
        done = queue.schedule(1.0, name="done")
        queue.schedule(2.0, name="pending")
        assert queue.pop() is done
        queue.cancel(done)
        assert len(queue) == 1
        assert queue.pop().name == "pending"
        assert len(queue) == 0

    def test_cancel_after_peek_discard_counts_once(self):
        queue = EventQueue()
        victim = queue.schedule(1.0, name="victim")
        queue.schedule(2.0, name="keeper")
        victim.cancel()  # direct cancel, then peek discards the entry
        assert queue.peek().name == "keeper"
        queue.cancel(victim)  # late queue-cancel of the discarded event
        assert len(queue) == 1

    def test_direct_event_cancel_counts_once(self):
        # Cancelling via Event.cancel() (bypassing the queue) is only
        # observable at discard time; the count must still end correct.
        queue = EventQueue()
        victim = queue.schedule(1.0, name="victim")
        queue.schedule(2.0, name="keeper")
        victim.cancel()
        assert queue.pop().name == "keeper"
        assert len(queue) == 0


class TestFastPathScheduling:
    def test_schedule_call_dispatches_in_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule_call(30.0, lambda a, b: fired.append((a, b)), "c", 3)
        queue.schedule_call(10.0, lambda a, b: fired.append((a, b)), "a", 1)
        queue.schedule_call(20.0, lambda a, b: fired.append((a, b)), "b", 2)
        while queue:
            entry = queue.pop_entry()
            entry[4](entry[5], entry[6])
        assert fired == [("a", 1), ("b", 2), ("c", 3)]

    def test_schedule_call_interleaves_with_events(self):
        queue = EventQueue()
        order = []
        queue.schedule(10.0, name="event", callback=lambda e: order.append("event"))
        queue.schedule_call(10.0, lambda a, b: order.append("call"), None, None)
        first = queue.pop_entry()
        second = queue.pop_entry()
        # Same time and priority: insertion order (sequence) breaks the tie.
        assert first[3] is not None and second[3] is None

    def test_schedule_call_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule_call(-1.0, lambda a, b: None)

    def test_pop_wraps_bare_callbacks_as_events(self):
        queue = EventQueue()
        fired = []
        queue.schedule_call(5.0, lambda a, b: fired.append((a, b)), "x", "y")
        event = queue.pop()
        assert event.time_ns == 5.0
        event.fire()
        assert fired == [("x", "y")]

    def test_cancel_of_popped_wrapper_does_not_corrupt_len(self):
        queue = EventQueue()
        queue.schedule_call(1.0, lambda a, b: None)
        queue.schedule(2.0, name="keeper")
        wrapped = queue.pop()
        queue.cancel(wrapped)  # already popped: must not decrement again
        assert len(queue) == 1
        assert queue.pop().name == "keeper"

    def test_len_counts_both_kinds(self):
        queue = EventQueue()
        queue.schedule(1.0)
        queue.schedule_call(2.0, lambda a, b: None)
        assert len(queue) == 2
        queue.pop()
        queue.pop()
        assert len(queue) == 0

    def test_peek_materialises_bare_entries_for_cancel(self):
        # peek() on a bare-callback entry must return an Event whose cancel()
        # affects the queued entry (and repeated peeks return the same one).
        queue = EventQueue()
        fired = []
        queue.schedule_call(1.0, lambda a, b: fired.append(1))
        queue.schedule(2.0, name="keeper")
        peeked = queue.peek()
        assert queue.peek() is peeked
        queue.cancel(peeked)
        assert len(queue) == 1
        assert queue.pop().name == "keeper"
        assert fired == []
