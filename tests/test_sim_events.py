"""Tests for the event queue."""

import pytest

from repro.sim.events import Event, EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.schedule(30.0, name="c")
        queue.schedule(10.0, name="a")
        queue.schedule(20.0, name="b")
        assert [queue.pop().name for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_priority_then_insertion(self):
        queue = EventQueue()
        queue.schedule(10.0, name="later", priority=5)
        queue.schedule(10.0, name="first", priority=0)
        queue.schedule(10.0, name="second", priority=0)
        assert [queue.pop().name for _ in range(3)] == ["first", "second", "later"]

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.schedule(1.0)
        assert queue and len(queue) == 1
        queue.pop()
        assert not queue

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.schedule(5.0, name="only")
        assert queue.peek().name == "only"
        assert len(queue) == 1

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        victim = queue.schedule(1.0, name="victim")
        queue.schedule(2.0, name="keeper")
        queue.cancel(victim)
        assert queue.pop().name == "keeper"

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0)

    def test_callbacks_fire(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, name="cb", callback=lambda event: fired.append(event.name))
        queue.pop().fire()
        assert fired == ["cb"]

    def test_cancelled_event_does_not_fire(self):
        fired = []
        event = Event(1.0, name="x", callback=lambda e: fired.append(1))
        event.cancel()
        event.fire()
        assert fired == []

    def test_drain_yields_in_order(self):
        queue = EventQueue()
        for time in (3.0, 1.0, 2.0):
            queue.schedule(time)
        assert [event.time_ns for event in queue.drain()] == [1.0, 2.0, 3.0]
        assert not queue

    def test_next_time(self):
        queue = EventQueue()
        assert queue.next_time is None
        queue.schedule(7.0)
        assert queue.next_time == 7.0

    def test_clear(self):
        queue = EventQueue()
        queue.schedule(1.0)
        queue.clear()
        assert len(queue) == 0
