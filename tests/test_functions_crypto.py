"""Tests for the cryptographic hardware functions (known-answer vectors)."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.crypto.aes import Aes128, AesFunction, DEFAULT_AES_KEY
from repro.functions.crypto.des import Des, DesFunction, DEFAULT_DES_KEY
from repro.functions.crypto.modexp import ModExpFunction, modular_exponentiation
from repro.functions.crypto.sha1 import Sha1, Sha1Function
from repro.functions.crypto.sha256 import Sha256, Sha256Function


class TestAes:
    def test_fips197_vector(self):
        cipher = Aes128(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert cipher.encrypt_block(plaintext) == expected
        assert cipher.decrypt_block(expected) == plaintext

    def test_appendix_b_vector(self):
        cipher = Aes128(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert cipher.encrypt_block(plaintext).hex() == "3925841d02dc09fbdc118597196a0b32"

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_encrypt_decrypt_round_trip(self, key, block):
        cipher = Aes128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_ecb_pads_to_blocks(self):
        cipher = Aes128(DEFAULT_AES_KEY)
        ciphertext = cipher.encrypt_ecb(b"short")
        assert len(ciphertext) == 16
        assert cipher.decrypt_ecb(ciphertext)[:5] == b"short"

    def test_ecb_rejects_partial_ciphertext(self):
        with pytest.raises(ValueError):
            Aes128(DEFAULT_AES_KEY).decrypt_ecb(b"\x00" * 10)

    def test_key_length_checked(self):
        with pytest.raises(ValueError):
            Aes128(b"short")

    def test_hardware_function_spec(self):
        function = AesFunction()
        assert function.name == "aes128"
        assert function.spec.input_bytes == 16
        output = function.behaviour(bytes(16))
        assert output == Aes128(DEFAULT_AES_KEY).encrypt_block(bytes(16))

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_table_driven_path_matches_reference(self, key, block):
        # The fast datapath must be bit-identical to the seed's step-by-step
        # SubBytes/ShiftRows/MixColumns chain, kept as _*_block_reference.
        cipher = Aes128(key)
        ciphertext = cipher.encrypt_block(block)
        assert ciphertext == cipher._encrypt_block_reference(block)
        assert cipher.decrypt_block(ciphertext) == cipher._decrypt_block_reference(ciphertext)


class TestDes:
    def test_classic_vector(self):
        cipher = Des(bytes.fromhex("133457799BBCDFF1"))
        assert cipher.encrypt_block(bytes.fromhex("0123456789ABCDEF")).hex() == "85e813540f0ab405"

    def test_weak_key_all_zero_identity_of_double_encrypt(self):
        # With an all-zero (weak) key, encryption is its own inverse.
        cipher = Des(bytes(8))
        block = bytes.fromhex("0123456789abcdef")
        assert cipher.encrypt_block(cipher.encrypt_block(block)) == block

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=8, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_encrypt_decrypt_round_trip(self, key, block):
        cipher = Des(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_block_and_key_sizes_checked(self):
        with pytest.raises(ValueError):
            Des(b"short")
        with pytest.raises(ValueError):
            Des(DEFAULT_DES_KEY).encrypt_block(b"tiny")

    def test_ecb_round_trip(self):
        cipher = Des(DEFAULT_DES_KEY)
        data = b"0123456789abcdef"
        assert cipher.decrypt_ecb(cipher.encrypt_ecb(data)) == data

    def test_hardware_function(self):
        function = DesFunction()
        assert function.spec.input_bytes == 8
        assert function.behaviour(bytes(8)) == Des(DEFAULT_DES_KEY).encrypt_block(bytes(8))


class TestSha1:
    @pytest.mark.parametrize(
        "message",
        [b"", b"abc", b"The quick brown fox jumps over the lazy dog", b"a" * 200],
    )
    def test_matches_hashlib(self, message):
        assert Sha1.hexdigest(message) == hashlib.sha1(message).hexdigest()

    @given(st.binary(max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_matches_hashlib_property(self, message):
        assert Sha1.digest(message) == hashlib.sha1(message).digest()

    def test_hardware_function(self):
        function = Sha1Function()
        assert function.spec.output_bytes == 20
        assert function.behaviour(b"abc") == hashlib.sha1(b"abc").digest()


class TestSha256:
    @pytest.mark.parametrize(
        "message",
        [b"", b"abc", b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq", b"x" * 1000],
    )
    def test_matches_hashlib(self, message):
        assert Sha256.hexdigest(message) == hashlib.sha256(message).hexdigest()

    @given(st.binary(max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_matches_hashlib_property(self, message):
        assert Sha256.digest(message) == hashlib.sha256(message).digest()

    @given(st.binary(min_size=64, max_size=64), st.lists(st.integers(0, 0xFFFFFFFF), min_size=8, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_inlined_compress_matches_reference(self, block, state):
        # The rotation-inlined compression must be bit-identical to the
        # helper-based seed implementation kept as _compress_reference.
        assert Sha256._compress(list(state), block) == Sha256._compress_reference(list(state), block)

    def test_hardware_function(self):
        function = Sha256Function()
        assert function.spec.output_bytes == 32
        assert function.behaviour(b"abc") == hashlib.sha256(b"abc").digest()


class TestModExp:
    def test_matches_builtin_pow(self):
        for base, exponent, modulus in [(2, 10, 1000), (123456789, 65537, 999999937), (5, 0, 7)]:
            assert modular_exponentiation(base, exponent, modulus) == pow(base, exponent, modulus)

    @given(
        st.integers(min_value=0, max_value=2**64),
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=1, max_value=2**64),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_builtin_pow_property(self, base, exponent, modulus):
        assert modular_exponentiation(base, exponent, modulus) == pow(base, exponent, modulus)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            modular_exponentiation(2, 3, 0)
        with pytest.raises(ValueError):
            modular_exponentiation(2, -1, 5)

    def test_hardware_function_block_semantics(self):
        function = ModExpFunction()
        operand = (42).to_bytes(64, "big")
        expected = pow(42, function.exponent, function.modulus).to_bytes(64, "big")
        assert function.behaviour(operand) == expected
        # Two blocks are processed independently.
        double = function.behaviour(operand * 2)
        assert double == expected * 2
