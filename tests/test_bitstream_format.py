"""Tests for the packetised bit-stream container format."""

import struct

import pytest

from repro.bitstream.format import (
    Bitstream,
    BitstreamFormatError,
    BitstreamHeader,
    build_bitstream,
    parse_bitstream,
)


def _frames(count=3, size=64, fill=0xA5):
    return [bytes([fill + index & 0xFF]) * size for index in range(count)]


class TestBitstreamHeader:
    def test_pack_unpack_round_trip(self):
        header = BitstreamHeader(
            function_id=7,
            function_name="fft256",
            frame_count=4,
            frame_payload_bytes=264,
            input_bytes=512,
            output_bytes=1024,
            lut_count=2000,
            flags=BitstreamHeader.FLAG_PARTIAL,
        )
        rebuilt = BitstreamHeader.unpack(header.pack())
        assert rebuilt == header
        assert rebuilt.is_partial

    def test_validation(self):
        with pytest.raises(ValueError):
            BitstreamHeader(1, "x" * 20, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            BitstreamHeader(1, "ok", 0, 1, 1, 1)
        with pytest.raises(ValueError):
            BitstreamHeader(1, "ok", 1, 0, 1, 1)
        with pytest.raises(ValueError):
            BitstreamHeader(-1, "ok", 1, 1, 1, 1)

    def test_bad_magic_rejected(self):
        header = BitstreamHeader(1, "ok", 1, 8, 4, 4)
        data = bytearray(header.pack())
        data[0:4] = b"XXXX"
        with pytest.raises(BitstreamFormatError):
            BitstreamHeader.unpack(bytes(data))

    def test_truncated_header_rejected(self):
        with pytest.raises(BitstreamFormatError):
            BitstreamHeader.unpack(b"\x00" * 4)


class TestBuildAndParse:
    def test_round_trip(self):
        frames = _frames()
        bitstream = build_bitstream(3, "sha1", frames, input_bytes=64, output_bytes=20)
        data = bitstream.to_bytes()
        parsed = parse_bitstream(data)
        assert parsed.header.function_name == "sha1"
        assert parsed.frames == frames
        assert parsed.raw_size == len(data)

    def test_empty_frame_list_rejected(self):
        with pytest.raises(BitstreamFormatError):
            build_bitstream(1, "x", [], 1, 1)

    def test_inconsistent_frame_sizes_rejected(self):
        with pytest.raises(BitstreamFormatError):
            build_bitstream(1, "x", [b"\x00" * 4, b"\x00" * 8], 1, 1)

    def test_corrupted_payload_fails_crc(self):
        bitstream = build_bitstream(3, "sha1", _frames(), 64, 20)
        data = bytearray(bitstream.to_bytes())
        data[BitstreamHeader.packed_size() + 10] ^= 0xFF
        with pytest.raises(BitstreamFormatError):
            parse_bitstream(bytes(data))
        # Parsing without CRC verification accepts the corrupted stream.
        parsed = parse_bitstream(bytes(data), verify_crc=False)
        assert parsed.header.function_name == "sha1"

    def test_truncated_stream_rejected(self):
        data = build_bitstream(3, "sha1", _frames(), 64, 20).to_bytes()
        with pytest.raises(BitstreamFormatError):
            parse_bitstream(data[:-10])

    def test_missing_end_packet_rejected(self):
        bitstream = build_bitstream(1, "x", _frames(1), 4, 4)
        data = bitstream.to_bytes()
        # Strip the END packet (7-byte packet header + 4-byte CRC).
        with pytest.raises(BitstreamFormatError):
            parse_bitstream(data[:-11])

    def test_duplicate_slot_rejected(self):
        frames = _frames(2)
        bitstream = build_bitstream(1, "x", frames, 4, 4)
        data = bytearray(bitstream.to_bytes())
        # Rewrite the second packet's slot to 0 (duplicate).
        offset = BitstreamHeader.packed_size() + 7 + len(frames[0]) + 1
        data[offset:offset + 2] = struct.pack(">H", 0)
        with pytest.raises(BitstreamFormatError):
            parse_bitstream(bytes(data), verify_crc=False)

    def test_mismatched_frame_count_rejected(self):
        header = BitstreamHeader(1, "x", 2, 4, 1, 1)
        with pytest.raises(BitstreamFormatError):
            Bitstream(header=header, frames=[b"\x00" * 4])

    def test_payload_crc_is_stable(self):
        bitstream = build_bitstream(1, "x", _frames(2), 4, 4)
        assert bitstream.payload_crc == build_bitstream(1, "x", _frames(2), 4, 4).payload_crc

    def test_iter_packets(self):
        bitstream = build_bitstream(1, "x", _frames(3), 4, 4)
        packets = list(bitstream.iter_packets())
        assert [packet.slot for packet in packets] == [0, 1, 2]
