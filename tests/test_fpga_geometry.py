"""Tests for fabric geometry and frame addressing."""

import pytest

from repro.fpga.geometry import DEFAULT_GEOMETRY, FabricGeometry, FrameAddress


class TestFabricGeometry:
    def test_frame_count_and_tiles(self, tiny_geometry):
        assert tiny_geometry.tiles_per_column == 4
        assert tiny_geometry.frame_count == 16
        assert tiny_geometry.clbs_per_frame == 4

    def test_rows_must_tile_into_frames(self):
        with pytest.raises(ValueError):
            FabricGeometry(columns=4, rows=10, clb_rows_per_frame=4)

    def test_positive_dimensions_required(self):
        with pytest.raises(ValueError):
            FabricGeometry(columns=0, rows=16)
        with pytest.raises(ValueError):
            FabricGeometry(columns=4, rows=16, luts_per_clb=0)

    def test_config_byte_sizes_are_consistent(self, tiny_geometry):
        assert tiny_geometry.lut_truth_table_bytes == 2  # 4-input LUT = 16 bits
        per_clb = tiny_geometry.clb_config_bytes
        assert per_clb == 8 * 2 + 1 + 16
        assert tiny_geometry.frame_config_bytes == per_clb * tiny_geometry.clbs_per_frame
        assert (
            tiny_geometry.device_config_bytes
            == tiny_geometry.frame_config_bytes * tiny_geometry.frame_count
        )

    def test_all_frames_enumerates_each_address_once(self, tiny_geometry):
        frames = tiny_geometry.all_frames()
        assert len(frames) == tiny_geometry.frame_count
        assert len(set(frames)) == tiny_geometry.frame_count

    def test_flat_index_round_trip(self, tiny_geometry):
        for index in range(tiny_geometry.frame_count):
            address = tiny_geometry.frame_at(index)
            assert address.flat_index(tiny_geometry.tiles_per_column) == index

    def test_frame_at_out_of_range(self, tiny_geometry):
        with pytest.raises(IndexError):
            tiny_geometry.frame_at(tiny_geometry.frame_count)
        with pytest.raises(IndexError):
            tiny_geometry.frame_at(-1)

    def test_validate_rejects_foreign_address(self, tiny_geometry):
        with pytest.raises(IndexError):
            tiny_geometry.validate(FrameAddress(99, 0))

    def test_clb_positions_cover_the_frame(self, tiny_geometry):
        address = FrameAddress(1, 2)
        positions = list(tiny_geometry.clb_positions(address))
        assert len(positions) == tiny_geometry.clbs_per_frame
        assert all(column == 1 for column, _ in positions)
        rows = [row for _, row in positions]
        assert rows == list(range(8, 12))

    def test_frames_needed_for_luts(self, tiny_geometry):
        per_frame = tiny_geometry.luts_per_frame
        assert tiny_geometry.frames_needed_for_luts(0) == 0
        assert tiny_geometry.frames_needed_for_luts(1) == 1
        assert tiny_geometry.frames_needed_for_luts(per_frame) == 1
        assert tiny_geometry.frames_needed_for_luts(per_frame + 1) == 2

    def test_describe_mentions_frames(self, tiny_geometry):
        assert "frames" in tiny_geometry.describe()

    def test_default_geometry_is_valid(self):
        assert DEFAULT_GEOMETRY.frame_count == 128


class TestFrameAddress:
    def test_ordering_and_string(self):
        assert FrameAddress(0, 1) < FrameAddress(1, 0)
        assert str(FrameAddress(2, 3)) == "F[2,3]"

    def test_hashable_and_equal(self):
        assert FrameAddress(1, 1) == FrameAddress(1, 1)
        assert len({FrameAddress(1, 1), FrameAddress(1, 1)}) == 1
