"""Cross-process byte-identity of the rebalance experiments.

Migration schedules fold into the fleet's completion-stream digest (order,
capture, restore, release records all hash in), so an E11 cell — warm-up,
skewed residency, migrations, defrag passes — must reproduce byte-identically
in a fresh interpreter, and so must the perf-smoke ``rebalance`` section's
fingerprints.  Same pattern as ``test_faults_determinism``: only a second
process catches salted-hash or dict-order regressions.
"""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_E11_SNIPPET = """
import json, sys
sys.path.insert(0, "src")
sys.path.insert(0, ".")
from benchmarks.bench_e11_rebalance import build_trace, defrag_drill, run_cell
from repro.functions.bank import build_default_bank

bank = build_default_bank()
trace = build_trace(bank, 1.2)
fleet, stats = run_cell(bank, trace, "migrate+defrag", 2)
print(repr(fleet.fingerprint()))
print(json.dumps(fleet.rebalance_summary(), sort_keys=True))
print(repr((stats.migration_orders, stats.migrations_completed,
            stats.migration_byte_diffs, stats.latency_percentile(95))))
print(json.dumps(defrag_drill(), sort_keys=True))
"""

_SMOKE_SNIPPET = """
import sys
sys.path.insert(0, "src")
sys.path.insert(0, "benchmarks")
import perf_smoke

results = perf_smoke.bench_rebalance(
    fleet_cards=2, fleet_trace_length=24, defrag_cycles=2
)
sweep = results["defrag_sweep"]
fleet = results["rebalance_fleet"]
# Everything except the wall-clock rate fields must be process-invariant.
print(repr((sweep["moves"], sweep["frames_moved"], sweep["frag_before_first"],
            sweep["frag_after_last"], sweep["final_time_ns"])))
print(repr((fleet["events_dispatched"], fleet["final_time_ns"], fleet["completed"],
            fleet["rejected"], fleet["migration_orders"],
            fleet["migrations_completed"], fleet["migrations_failed"],
            fleet["migration_byte_diffs"], fleet["schedule_digest"])))
"""


def run_snippet(snippet: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", snippet],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestCrossProcessDeterminism:
    def test_e11_cell_is_byte_identical_across_processes(self):
        first = run_snippet(_E11_SNIPPET)
        second = run_snippet(_E11_SNIPPET)
        assert first == second
        assert first.strip()

    def test_rebalance_smoke_fingerprints_are_byte_identical_across_processes(self):
        first = run_snippet(_SMOKE_SNIPPET)
        second = run_snippet(_SMOKE_SNIPPET)
        assert first == second
        assert first.strip()
