"""Byte-identity of the bitstream generation/compression caches.

Cache hits must return exactly the bytes a cold render/compression would
produce, and the reconfiguration-path decode memo must not perturb simulated
timing.
"""

import pytest

from repro.bitstream.codecs import get_codec
from repro.bitstream.window import WindowedCompressor
from repro.core.builder import build_coprocessor, clear_bitstream_cache
from repro.core.config import SMALL_CONFIG
from repro.fpga.bitgen import BitstreamCache, BitstreamGenerator, bitstream_cache
from repro.fpga.geometry import TEST_GEOMETRY
from repro.fpga.placer import Placer
from repro.functions.bank import build_small_bank
from repro.functions.netgen import build_adder_netlist


class TestRenderCache:
    def test_cached_render_is_byte_identical_to_cold_render(self):
        netlist = build_adder_netlist(TEST_GEOMETRY, 8)
        placer = Placer(TEST_GEOMETRY)
        placement = placer.place(netlist, TEST_GEOMETRY.all_frames())
        cold = BitstreamGenerator(TEST_GEOMETRY, cache=BitstreamCache())
        cold_payloads = cold.render_frames(netlist, placement)
        warm_cache = BitstreamCache()
        warm = BitstreamGenerator(TEST_GEOMETRY, cache=warm_cache)
        first = warm.render_frames(netlist, placement)
        second = warm.render_frames(netlist, placement)
        assert first == cold_payloads
        assert second == cold_payloads
        assert warm_cache.hits == 1 and warm_cache.misses == 1

    def test_synthetic_frames_cached_and_identical(self):
        cache = BitstreamCache()
        generator = BitstreamGenerator(TEST_GEOMETRY, cache=cache)
        first = generator.synthetic_frames(frame_count=3, lut_count=40, seed=9)
        second = generator.synthetic_frames(frame_count=3, lut_count=40, seed=9)
        different_seed = generator.synthetic_frames(frame_count=3, lut_count=40, seed=10)
        assert first == second
        assert first != different_seed
        assert cache.hits == 1

    def test_cache_bounded(self):
        cache = BitstreamCache(max_entries=2)
        for index in range(5):
            cache.lookup(("key", index), lambda: index)
        assert cache.stats()["entries"] == 2


class TestDownloadAndReconfigureCaching:
    def test_rom_images_identical_with_and_without_cache(self):
        config = SMALL_CONFIG.with_overrides(seed=3)
        clear_bitstream_cache()
        cold = build_coprocessor(config=config, bank=build_small_bank())
        warm = build_coprocessor(config=config, bank=build_small_bank())
        for name in cold.bank.names():
            assert cold.rom.record_for(name) == warm.rom.record_for(name)
            cold_blob = b"".join(cold.rom.read_bitstream(name))
            warm_blob = b"".join(warm.rom.read_bitstream(name))
            assert cold_blob == warm_blob
        assert bitstream_cache().hits > 0

    def test_compressed_image_cache_matches_fresh_compressor(self):
        config = SMALL_CONFIG.with_overrides(seed=3)
        copro = build_coprocessor(config=config, bank=build_small_bank())
        codec = get_codec(config.codec_name)
        compressor = WindowedCompressor(codec, config.compression_window_bytes)
        for name in copro.bank.names():
            blob = b"".join(copro.rom.read_bitstream(name))
            record = copro.rom.record_for(name)
            # Decompress the stored image and recompress from scratch: the
            # bytes in the ROM must equal a cache-free compression.
            from repro.bitstream.window import CompressedImage, WindowedDecompressor

            image = CompressedImage.from_bytes(blob)
            raw = WindowedDecompressor(image).decompress_all()
            assert compressor.compress(raw).to_bytes() == blob
            assert record.uncompressed_size == len(raw)

    def test_repeat_reconfiguration_timing_unchanged_by_decode_memo(self):
        config = SMALL_CONFIG.with_overrides(seed=3)
        copro = build_coprocessor(config=config, bank=build_small_bank())
        name = copro.bank.names()[0]
        copro.preload(name)
        first = copro.config_module.reports[-1]
        copro.evict(name)
        copro.preload(name)  # decode memo hit
        second = copro.config_module.reports[-1]
        # Exact equality up to float accumulation: `elapsed = now - started`
        # rounds differently at different absolute clock positions, with or
        # without the memo (the seed path had the same jitter).
        assert second.rom_time_ns == pytest.approx(first.rom_time_ns, rel=1e-12)
        assert second.decompress_time_ns == pytest.approx(first.decompress_time_ns, rel=1e-12)
        assert second.config_time_ns == pytest.approx(first.config_time_ns, rel=1e-12)
        assert second.total_time_ns == pytest.approx(first.total_time_ns, rel=1e-12)
