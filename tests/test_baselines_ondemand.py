"""Tests for the baselines and the trace runner."""

import pytest

from repro.baselines import FullReconfigEngine, HostOnlyEngine, StaticFixedEngine
from repro.core.builder import build_coprocessor
from repro.core.config import SMALL_CONFIG
from repro.core.ondemand import TraceRunner, compare_engines
from repro.functions.bank import build_small_bank
from repro.workloads import repeated_trace, round_robin_trace, uniform_trace


@pytest.fixture
def bank():
    return build_small_bank()


@pytest.fixture
def config():
    return SMALL_CONFIG.with_overrides(seed=11)


class TestHostOnlyEngine:
    def test_outputs_match_reference(self, bank):
        engine = HostOnlyEngine(bank)
        data = bytes(range(32))
        result = engine.execute("crc32", data)
        assert result.output == bank.by_name("crc32").behaviour(data)
        assert result.hit and not result.offloaded
        assert result.latency_ns > 0

    def test_latency_scales_with_input_and_slowdown(self, bank):
        engine = HostOnlyEngine(bank, software_slowdown=20.0)
        small = engine.software_time_ns("crc32", 16)
        large = engine.software_time_ns("crc32", 1024)
        assert large > small
        slower = HostOnlyEngine(bank, software_slowdown=40.0)
        assert slower.software_time_ns("crc32", 1024) > large

    def test_invalid_parameters(self, bank):
        with pytest.raises(ValueError):
            HostOnlyEngine(bank, host_clock_hz=0)
        with pytest.raises(ValueError):
            HostOnlyEngine(bank, software_slowdown=0)


class TestFullReconfigEngine:
    def test_switching_pays_full_device_cost(self, bank, config):
        full = FullReconfigEngine(config, bank)
        first = full.execute("crc32", b"abc")
        assert not first.hit
        assert first.breakdown["full_device_penalty"] > 0
        repeat = full.execute("crc32", b"abc")
        assert repeat.hit
        assert repeat.breakdown["full_device_penalty"] == 0
        switch = full.execute("parity32", bytes(4))
        assert not switch.hit
        assert full.full_reconfigurations == 2

    def test_only_one_function_resident(self, bank, config):
        full = FullReconfigEngine(config, bank)
        full.execute("crc32", b"abc")
        full.execute("parity32", bytes(4))
        assert full.coprocessor.loaded_functions() == ["parity32"]

    def test_outputs_still_correct(self, bank, config):
        full = FullReconfigEngine(config, bank)
        data = bytes(range(16))
        assert full.execute("crc32", data).output == bank.by_name("crc32").behaviour(data)


class TestStaticFixedEngine:
    def test_resident_functions_offloaded_others_fall_back(self, bank, config):
        static = StaticFixedEngine(config, bank, resident_functions=["crc32", "adder8"])
        offloaded = static.execute("crc32", b"xyz")
        fallback = static.execute("parity32", bytes(4))
        assert offloaded.offloaded and offloaded.hit
        assert not fallback.offloaded
        assert static.offloaded_calls == 1 and static.fallback_calls == 1
        assert fallback.output == bank.by_name("parity32").behaviour(bytes(4))

    def test_greedy_fill_when_no_set_given(self, bank, config):
        static = StaticFixedEngine(config, bank)
        assert len(static.resident) >= 1

    def test_oversized_static_set_rejected(self, bank):
        tiny = SMALL_CONFIG.with_overrides(fabric_columns=2, fabric_rows=8, clb_rows_per_frame=4)
        with pytest.raises(ValueError):
            StaticFixedEngine(tiny, bank, resident_functions=["crc32"])


class TestTraceRunner:
    def test_runs_trace_and_aggregates(self, bank, config):
        copro = build_coprocessor(config=config, bank=bank)
        trace = uniform_trace(bank, 40, seed=2)
        result = TraceRunner(copro, "agile").run(trace)
        assert result.requests == 40
        assert 0.0 <= result.hit_rate <= 1.0
        assert result.mean_latency_ns > 0
        assert result.total_time_ns >= result.total_latency_ns * 0.99
        assert result.throughput_requests_per_s > 0
        summary = result.summary()
        assert summary["requests"] == 40

    def test_limit_parameter(self, bank, config):
        copro = build_coprocessor(config=config, bank=bank)
        trace = uniform_trace(bank, 40, seed=2)
        result = TraceRunner(copro).run(trace, limit=10)
        assert result.requests == 10

    def test_repeated_trace_has_high_hit_rate(self, bank, config):
        copro = build_coprocessor(config=config, bank=bank)
        result = TraceRunner(copro).run(repeated_trace(bank, "crc32", 20))
        assert result.hits == 19 and result.misses == 1

    def test_provide_future_enables_belady(self, bank):
        config = SMALL_CONFIG.with_overrides(
            fabric_columns=2, fabric_rows=16, clb_rows_per_frame=4, replacement_policy="belady"
        )
        copro = build_coprocessor(config=config, bank=bank)
        trace = round_robin_trace(bank, 30, seed=1)
        result = TraceRunner(copro).run(trace, provide_future=True)
        assert result.requests == 30

    def test_per_function_latency_and_percentiles(self, bank, config):
        copro = build_coprocessor(config=config, bank=bank)
        trace = uniform_trace(bank, 30, seed=4)
        result = TraceRunner(copro).run(trace)
        busiest = max(trace.function_counts(), key=trace.function_counts().get)
        assert result.mean_latency_for(busiest) > 0
        assert result.latency_percentile(50) <= result.latency_percentile(99)

    def test_compare_engines_runs_all(self, bank, config):
        trace = uniform_trace(bank, 15, seed=5)
        engines = {
            "host": HostOnlyEngine(bank),
            "agile": build_coprocessor(config=config, bank=bank),
        }
        results = compare_engines(trace, engines)
        assert set(results) == {"host", "agile"}
        for result in results.values():
            assert result.requests == 15

    def test_arrival_offsets_advance_the_engine_clock(self, bank, config):
        copro = build_coprocessor(config=config, bank=bank)
        trace = uniform_trace(bank, 10, seed=6, mean_interarrival_ns=10_000.0)
        result = TraceRunner(copro).run(trace)
        assert result.total_time_ns > result.total_latency_ns
