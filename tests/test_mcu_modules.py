"""Tests for the configuration module, the data modules and the command codec."""

import pytest

from repro.bitstream.codecs import get_codec
from repro.bitstream.window import WindowedCompressor
from repro.fpga.bitgen import BitstreamGenerator
from repro.fpga.device import FPGADevice
from repro.fpga.placer import Placer
from repro.functions.misc.logic import AdderFunction
from repro.mcu.commands import Command, CommandError, CommandKind
from repro.mcu.config_module import ConfigurationModule
from repro.mcu.data_modules import DataInputModule, OutputCollectionModule
from repro.memory.ram import LocalRam
from repro.memory.rom import ConfigurationRom
from repro.sim.clock import Clock


class TestCommands:
    def test_pack_unpack_round_trip(self):
        command = Command(CommandKind.EXECUTE, function_id=7, input_length=128)
        rebuilt = Command.unpack(command.pack())
        assert rebuilt == command
        assert "EXECUTE" in str(rebuilt)

    def test_unknown_opcode_rejected(self):
        data = bytearray(Command(CommandKind.EXECUTE, 1, 1).pack())
        data[0] = 0xEE
        with pytest.raises(CommandError):
            Command.unpack(bytes(data))

    def test_short_block_rejected(self):
        with pytest.raises(CommandError):
            Command.unpack(b"\x01")


def _configured_system(geometry, codec_name="rle", overlap=False):
    """ROM + device + config module with one downloaded function (adder8)."""
    clock = Clock()
    rom = ConfigurationRom(256 * 1024, clock=clock)
    device = FPGADevice(geometry, clock=clock)
    function = AdderFunction()
    netlist = function.build_netlist(geometry)
    placer = Placer(geometry)
    placement = placer.place(netlist, geometry.all_frames())
    bitstream = BitstreamGenerator(geometry).generate(
        netlist, placement, function.function_id, 2, 2
    )
    raw = bitstream.to_bytes()
    image = WindowedCompressor(get_codec(codec_name), 256).compress(raw)
    rom.download(
        function.function_id, function.name, image.to_bytes(), len(raw), 2, 2,
        bitstream.header.frame_count, codec_name,
    )
    module = ConfigurationModule(rom, device, clock, overlap_decompress=overlap)
    return clock, rom, device, module, function, placement.region


class TestConfigurationModule:
    def test_reconfigure_loads_function_and_reports_phases(self, tiny_geometry):
        clock, rom, device, module, function, region = _configured_system(tiny_geometry)
        report = module.reconfigure(function.name, region, function.executor(tiny_geometry))
        assert device.is_loaded("adder8")
        assert report.frames == len(region)
        assert report.rom_time_ns > 0
        assert report.decompress_time_ns > 0
        assert report.config_time_ns > 0
        assert report.total_time_ns >= report.config_time_ns
        assert report.total_time_ns == pytest.approx(clock.now)
        assert report.effective_bandwidth_mbytes_per_s > 0
        output, _ = device.execute("adder8", bytes([7, 8]))
        assert output[0] == 15

    def test_overlapped_total_is_not_larger(self, tiny_geometry):
        _, _, _, module_serial, function, region = _configured_system(tiny_geometry, overlap=False)
        serial = module_serial.reconfigure(function.name, region, function.executor(tiny_geometry))
        _, _, _, module_overlap, function2, region2 = _configured_system(tiny_geometry, overlap=True)
        overlapped = module_overlap.reconfigure(function2.name, region2, function2.executor(tiny_geometry))
        assert overlapped.total_time_ns <= serial.total_time_ns
        assert overlapped.overlapped

    def test_decompression_cost_scales_with_cycles_per_byte(self, tiny_geometry):
        _, _, _, cheap_module, function, region = _configured_system(tiny_geometry)
        cheap_module.decompress_cycles_per_byte = 1.0
        cheap = cheap_module.reconfigure(function.name, region, function.executor(tiny_geometry))
        _, _, _, costly_module, function2, region2 = _configured_system(tiny_geometry)
        costly_module.decompress_cycles_per_byte = 16.0
        costly = costly_module.reconfigure(function2.name, region2, function2.executor(tiny_geometry))
        assert costly.decompress_time_ns > cheap.decompress_time_ns

    def test_fetch_reads_in_chunks(self, tiny_geometry):
        _, rom, _, module, function, _ = _configured_system(tiny_geometry)
        module.rom_chunk_bytes = 64
        image, rom_time = module.fetch_compressed_image(function.name)
        assert rom_time > 0
        assert rom.total_reads > 1
        assert image.original_length > 0

    def test_invalid_construction(self, tiny_geometry):
        clock, rom, device, _, _, _ = _configured_system(tiny_geometry)
        with pytest.raises(ValueError):
            ConfigurationModule(rom, device, clock, decompress_cycles_per_byte=0)
        with pytest.raises(ValueError):
            ConfigurationModule(rom, device, clock, rom_chunk_bytes=0)


class TestDataModules:
    def test_feed_returns_exact_payload_with_padded_timing(self):
        clock = Clock()
        ram = LocalRam(4096, clock=clock)
        module = DataInputModule(ram, clock, bus_width_bytes=4)
        allocation = ram.allocate("in", 64)
        ram.write(allocation, b"0123456789")
        payload, record = module.feed(allocation, 10)
        assert payload == b"0123456789"
        assert record.payload_bytes == 10
        assert record.padded_bytes == 12  # rounded up to whole 4-byte beats
        assert record.beats == 3
        assert record.elapsed_ns > 0
        assert module.bytes_transferred == 10

    def test_collect_stores_payload(self):
        clock = Clock()
        ram = LocalRam(4096, clock=clock)
        module = OutputCollectionModule(ram, clock, bus_width_bytes=4)
        allocation = ram.allocate("out", 32)
        record = module.collect(allocation, b"result!")
        assert ram.read(allocation, 7) == b"result!"
        assert record.padded_bytes == 8
        assert record.direction == "output"

    def test_zero_length_transfers(self):
        clock = Clock()
        ram = LocalRam(1024, clock=clock)
        in_module = DataInputModule(ram, clock)
        allocation = ram.allocate("in", 8)
        payload, record = in_module.feed(allocation, 0)
        assert payload == b"" and record.beats == 0

    def test_wider_bus_is_faster(self):
        clock_narrow = Clock()
        ram_narrow = LocalRam(65536, clock=clock_narrow)
        narrow = DataInputModule(ram_narrow, clock_narrow, bus_width_bytes=1)
        allocation_narrow = ram_narrow.allocate("in", 4096)
        narrow.feed(allocation_narrow, 4096)

        clock_wide = Clock()
        ram_wide = LocalRam(65536, clock=clock_wide)
        wide = DataInputModule(ram_wide, clock_wide, bus_width_bytes=8)
        allocation_wide = ram_wide.allocate("in", 4096)
        wide.feed(allocation_wide, 4096)
        assert clock_wide.now < clock_narrow.now

    def test_invalid_bus_width(self):
        clock = Clock()
        ram = LocalRam(64, clock=clock)
        with pytest.raises(ValueError):
            DataInputModule(ram, clock, bus_width_bytes=0)
