"""Schedule policies and the kernel's ready-set dispatch path.

Covers the SchedulePolicy contract (recording, scripting, divergence,
seeded randomness), byte-identity of the policy path against the default
merged-head loop, genuine permutation of conflicting same-instant events,
``max_events`` / ``until_ns`` accounting parity under permuted ready sets,
and the eager-get synchronous-grant chain bound.
"""

import pytest

from repro.sim.kernel import Simulator, SimulationError, StoreGet, Timeout
from repro.sim.schedule import (
    RandomTieBreakPolicy,
    ScheduleDivergenceError,
    SchedulePolicy,
    ScriptedPolicy,
)


def _conflict_scenario(policy, producers=2):
    """Two same-instant puts to one store: order is policy-observable."""
    sim = Simulator(schedule_policy=policy)
    store = sim.store("shared")
    log = []

    def producer(tag):
        yield Timeout(10.0)
        store.put(tag)

    def consumer():
        for _ in range(producers):
            item = yield StoreGet(store)
            log.append(item)

    for index in range(producers):
        sim.spawn(producer(chr(ord("a") + index)), name=f"p{index}")
    sim.spawn(consumer(), name="consumer")
    sim.run()
    return sim, log


class TestPolicyObjects:
    def test_base_policy_always_picks_zero(self):
        policy = SchedulePolicy()
        assert policy.choose([(0,), (1,), (2,)]) == 0
        assert policy.choices == [] and policy.branching == []

    def test_scripted_policy_records_choices_and_branching(self):
        policy = ScriptedPolicy((1,))
        ready = [(0, 0, i) for i in range(3)]
        assert policy.choose(ready) == 1
        assert policy.choose(ready[:2]) == 0  # past the prefix: default
        assert policy.choices == [1, 0]
        assert policy.branching == [3, 2]

    def test_scripted_policy_rejects_negative_prefix(self):
        with pytest.raises(ValueError):
            ScriptedPolicy((0, -1))

    def test_scripted_policy_raises_on_divergence(self):
        policy = ScriptedPolicy((5,))
        with pytest.raises(ScheduleDivergenceError):
            policy.choose([(0,), (1,)])

    def test_random_policy_is_seed_deterministic_and_resettable(self):
        ready = [(0, 0, i) for i in range(4)]
        first = RandomTieBreakPolicy(seed=42)
        picks = [first.choose(ready) for _ in range(8)]
        again = RandomTieBreakPolicy(seed=42)
        assert [again.choose(ready) for _ in range(8)] == picks
        first.reset()
        assert first.choices == [] and first.branching == []
        assert [first.choose(ready) for _ in range(8)] == picks

    def test_policy_reset_clears_recordings(self):
        policy = ScriptedPolicy((1,))
        policy.choose([(0,), (1,)])
        policy.reset()
        assert policy.choices == [] and policy.branching == []


class TestPolicyDispatchPath:
    def test_default_policy_matches_no_policy_byte_for_byte(self):
        _, base_log = _conflict_scenario(None, producers=3)
        sim_scripted, scripted_log = _conflict_scenario(ScriptedPolicy(()), producers=3)
        sim_plain, _ = _conflict_scenario(None, producers=3)
        assert scripted_log == base_log
        assert sim_scripted.events_dispatched == sim_plain.events_dispatched
        assert sim_scripted.clock.now == sim_plain.clock.now

    def test_permuted_choice_flips_observable_order(self):
        _, default_order = _conflict_scenario(ScriptedPolicy(()))
        _, flipped_order = _conflict_scenario(ScriptedPolicy((1,)))
        assert default_order == ["a", "b"]
        assert flipped_order == ["b", "a"]

    def test_choice_points_cascade_through_the_ready_set(self):
        policy = ScriptedPolicy(())
        _conflict_scenario(policy, producers=3)
        # The t=0 spawn burst is a 4-wide ready set (3 producers + consumer)
        # which shrinks by one per dispatch; singleton sets never consult
        # the policy.
        assert policy.branching[:3] == [4, 3, 2]

    def test_permutation_preserves_dispatch_count(self):
        sims = [
            _conflict_scenario(policy, producers=3)[0]
            for policy in (None, ScriptedPolicy((2, 1)), RandomTieBreakPolicy(7))
        ]
        counts = {sim.events_dispatched for sim in sims}
        assert len(counts) == 1

    def test_max_events_bound_enforced_identically_under_policy(self):
        def spinner(sim):
            while True:
                yield Timeout(0.0)

        for policy in (None, ScriptedPolicy(()), RandomTieBreakPolicy(3)):
            sim = Simulator(schedule_policy=policy)
            sim.spawn(spinner(sim), name="spin")
            with pytest.raises(SimulationError):
                sim.run(max_events=50)
            # The bound dispatches exactly max_events + 1 before raising,
            # policy or not.
            assert sim.events_dispatched == 51

    def test_until_ns_pauses_before_popping_under_policy(self):
        ticks = []

        def ticker():
            while True:
                yield Timeout(100.0)
                ticks.append(1)

        sim = Simulator(schedule_policy=ScriptedPolicy(()))
        sim.spawn(ticker(), name="ticker")
        now = sim.run(until_ns=250.0)
        assert now == 250.0
        assert sim.clock.now == 250.0
        assert len(ticks) == 2
        # The paused head is intact: resuming picks up the 300ns tick.
        sim.run(until_ns=300.0)
        assert len(ticks) == 3

    def test_policy_run_drains_to_empty_and_advances_to_horizon(self):
        sim = Simulator(schedule_policy=ScriptedPolicy(()))

        def once():
            yield Timeout(5.0)

        sim.spawn(once(), name="once")
        now = sim.run(until_ns=50.0)
        assert now == 50.0

    def test_cancelled_events_do_not_count_under_policy(self):
        for policy in (None, ScriptedPolicy(())):
            sim = Simulator(schedule_policy=policy)
            fired = []
            keep = sim.queue.schedule(10.0, name="keep", callback=lambda e: fired.append("keep"))
            drop = sim.queue.schedule(10.0, name="drop", callback=lambda e: fired.append("drop"))
            sim.queue.cancel(drop)
            sim.run()
            assert fired == ["keep"]
            assert sim.events_dispatched == 1
            assert keep.live_discounted


class TestEagerChainBound:
    def test_self_feeding_eager_loop_is_bounded(self, monkeypatch):
        sim = Simulator(eager_get=True)
        monkeypatch.setattr(Simulator, "eager_chain_limit", 100)
        store = sim.store("loop")
        store.put("token")

        def feeder():
            while True:
                item = yield StoreGet(store)
                store.put(item)  # feeds itself: the store never drains

        sim.spawn(feeder(), name="feeder")
        with pytest.raises(SimulationError, match="self-feeding"):
            sim.run(max_events=1_000)

    def test_legitimate_eager_drain_stays_unbounded(self):
        sim = Simulator(eager_get=True)
        store = sim.store("queue")
        for index in range(500):
            store.put(index)
        seen = []

        def drainer():
            for _ in range(500):
                item = yield StoreGet(store)
                seen.append(item)

        sim.spawn(drainer(), name="drainer")
        sim.run()
        assert seen == list(range(500))


class TestReadySetQueueApi:
    def test_pop_ready_entries_gathers_only_the_minimal_key(self):
        sim = Simulator()

        def sleeper():
            yield Timeout(1.0)

        sim.spawn(sleeper(), name="a")
        sim.spawn(sleeper(), name="b")
        sim.spawn(sleeper(), name="later", delay_ns=5.0)
        ready = sim.queue.pop_ready_entries()
        assert len(ready) == 2  # the two t=0 starts; the t=5 start stays
        assert len(sim.queue) == 3  # returned entries remain counted

    def test_pop_ready_entries_orders_by_sequence(self):
        sim = Simulator()
        for index in range(4):
            sim.queue.schedule_call(10.0, lambda a, b: None, index, None)
        ready = sim.queue.pop_ready_entries()
        assert [entry[2] for entry in ready] == sorted(entry[2] for entry in ready)
        assert len(ready) == 4

    def test_pop_ready_entries_skips_cancelled_and_settles_counts(self):
        sim = Simulator()
        queue = sim.queue
        kept = queue.schedule(10.0, name="kept")
        dropped = queue.schedule(10.0, name="dropped")
        dropped.cancel()
        ready = queue.pop_ready_entries()
        assert [entry[3] for entry in ready] == [kept]
        assert len(queue) == 1  # returned entries stay counted
        queue.push_entry(ready[0])
        assert queue.pop_entry()[3] is kept
        assert len(queue) == 0

    def test_pop_ready_entries_empty_queue(self):
        sim = Simulator()
        assert sim.queue.pop_ready_entries() == []
