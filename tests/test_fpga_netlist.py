"""Tests for the netlist representation and the netlist builders."""

import pytest

from repro.fpga.lut import LookUpTable
from repro.fpga.netlist import CellKind, Netlist
from repro.functions.netgen import (
    add_padded_lut,
    build_adder_netlist,
    build_parity_netlist,
    build_popcount_netlist,
    padded_lut,
)


class TestNetlistConstruction:
    def test_add_input_and_lut(self):
        netlist = Netlist("demo")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        out = netlist.add_lut("xor0", LookUpTable.logic_xor(2), [a, b])
        netlist.add_output(out)
        netlist.validate()
        assert netlist.lut_count == 1
        assert netlist.inputs == ["a", "b"]
        assert netlist.outputs == [out]

    def test_duplicate_net_and_cell_names_rejected(self):
        netlist = Netlist("demo")
        netlist.add_input("a")
        with pytest.raises(ValueError):
            netlist.add_input("a")
        netlist.add_lut("l0", LookUpTable.logic_and(1), ["a"])
        with pytest.raises(ValueError):
            netlist.add_lut("l0", LookUpTable.logic_and(1), ["a"])

    def test_fanin_arity_must_match_lut(self):
        netlist = Netlist("demo")
        netlist.add_input("a")
        with pytest.raises(ValueError):
            netlist.add_lut("bad", LookUpTable.logic_and(2), ["a"])

    def test_output_requires_existing_net(self):
        netlist = Netlist("demo")
        with pytest.raises(ValueError):
            netlist.add_output("ghost")

    def test_driver_conflict_rejected(self):
        netlist = Netlist("demo")
        a = netlist.add_input("a")
        netlist.add_lut("l0", LookUpTable.logic_and(1), [a], output_net="n")
        with pytest.raises(ValueError):
            netlist.add_lut("l1", LookUpTable.logic_and(1), [a], output_net="n")

    def test_validate_detects_undriven_net(self):
        netlist = Netlist("demo")
        netlist.add_input("a")
        netlist.add_lut("l0", LookUpTable.logic_and(2), ["a", "phantom"])
        with pytest.raises(ValueError):
            netlist.validate()

    def test_topological_order_and_depth(self):
        netlist = Netlist("chain")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        stage1 = netlist.add_lut("s1", LookUpTable.logic_xor(2), [a, b])
        stage2 = netlist.add_lut("s2", LookUpTable.logic_and(2), [stage1, a])
        netlist.add_output(stage2)
        order = [cell.name for cell in netlist.topological_lut_order()]
        assert order.index("s1") < order.index("s2")
        assert netlist.logic_depth() == 2

    def test_combinational_cycle_detected(self):
        netlist = Netlist("cycle")
        a = netlist.add_input("a")
        netlist.add_lut("l0", LookUpTable.logic_and(2), [a, "loop"], output_net="n0")
        netlist.add_lut("l1", LookUpTable.logic_and(2), ["n0", a], output_net="loop")
        with pytest.raises(ValueError):
            netlist.topological_lut_order()

    def test_flip_flop_breaks_cycles(self):
        netlist = Netlist("counter")
        a = netlist.add_input("a")
        q = netlist.add_flip_flop("ff0", "next")
        netlist.add_lut("inv", LookUpTable.from_function(2, lambda bits: not bits[0]), [q, a], output_net="next")
        netlist.add_output(q)
        netlist.validate()
        assert netlist.flip_flop_count == 1
        assert [cell.name for cell in netlist.topological_lut_order()] == ["inv"]

    def test_lut_cell_requires_truth_table(self):
        from repro.fpga.netlist import Cell

        with pytest.raises(ValueError):
            Cell("bad", CellKind.LUT, ("a",), "n")


class TestNetgenHelpers:
    def test_padded_lut_ignores_padding_inputs(self, tiny_geometry):
        lut = padded_lut(tiny_geometry, 2, lambda bits: bits[0] ^ bits[1])
        assert lut.inputs == tiny_geometry.lut_inputs
        assert lut.evaluate([True, False, True, True])
        assert not lut.evaluate([True, True, False, False])

    def test_padded_lut_width_limit(self, tiny_geometry):
        with pytest.raises(ValueError):
            padded_lut(tiny_geometry, tiny_geometry.lut_inputs + 1, all)

    def test_add_padded_lut_requires_fanin(self, tiny_geometry):
        netlist = Netlist("x")
        with pytest.raises(ValueError):
            add_padded_lut(netlist, tiny_geometry, "l0", all, [])

    def test_parity_netlist_structure(self, tiny_geometry):
        netlist = build_parity_netlist(tiny_geometry, 32)
        netlist.validate()
        assert len(netlist.inputs) == 32
        assert len(netlist.outputs) == 1
        assert netlist.lut_count >= 8

    def test_adder_netlist_structure(self, tiny_geometry):
        netlist = build_adder_netlist(tiny_geometry, 8)
        netlist.validate()
        assert len(netlist.inputs) == 16
        assert len(netlist.outputs) == 9

    def test_popcount_netlist_structure(self, tiny_geometry):
        netlist = build_popcount_netlist(tiny_geometry, 8)
        netlist.validate()
        assert len(netlist.inputs) == 8
        assert len(netlist.outputs) == 4

    def test_popcount_only_supports_eight_bits(self, tiny_geometry):
        with pytest.raises(ValueError):
            build_popcount_netlist(tiny_geometry, 16)

    def test_parity_rejects_nonpositive_width(self, tiny_geometry):
        with pytest.raises(ValueError):
            build_parity_netlist(tiny_geometry, 0)
