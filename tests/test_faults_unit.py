"""Unit coverage for the fault-injection / scrub / repair subsystem.

Frame check words, upset injection, golden images, port faults, the fault
spec/injector, the scrubber's detect-and-repair loop and the SCRUB command
threading host → PCI → card → mini-OS service.
"""

import pytest

from repro.bitstream.crc import crc32
from repro.core.builder import build_coprocessor, build_host_driver
from repro.core.config import SMALL_CONFIG
from repro.core.exceptions import CoprocessorError
from repro.faults import (
    FaultInjector,
    FaultSpec,
    FrameHazardDetector,
    GoldenImageStore,
)
from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.errors import ConfigurationError
from repro.fpga.frame import Frame
from repro.fpga.geometry import TEST_GEOMETRY
from repro.functions.bank import build_small_bank
from repro.sim.rand import SeededRandom


def small_driver():
    return build_host_driver(config=SMALL_CONFIG, bank=build_small_bank())


def protected_coprocessor():
    copro = build_coprocessor(config=SMALL_CONFIG, bank=build_small_bank())
    copro.enable_fault_protection()
    return copro


class TestFrameCheckWord:
    def test_fresh_and_cleared_frames_pass_crc(self):
        frame = Frame(TEST_GEOMETRY, TEST_GEOMETRY.all_frames()[0])
        assert frame.crc_ok
        frame.clear()
        assert frame.crc_ok
        assert frame.stored_crc == crc32(bytes(frame.config_byte_length))

    def test_legitimate_write_refreshes_check_word(self):
        frame = Frame(TEST_GEOMETRY, TEST_GEOMETRY.all_frames()[0])
        payload = bytes(range(frame.config_byte_length % 256)).ljust(
            frame.config_byte_length, b"\x00"
        )
        # Canonicalise through a scratch frame so the write round-trips.
        frame.load_config_bytes(payload)
        canonical = frame.to_config_bytes()
        frame.load_config_bytes(canonical)
        assert frame.crc_ok
        assert frame.stored_crc == crc32(canonical)

    def test_upset_breaks_crc_and_clear_restores_it(self):
        frame = Frame(TEST_GEOMETRY, TEST_GEOMETRY.all_frames()[0])
        # Flip the LSB of the first LUT byte — a bit the parser keeps.
        changed = frame.inject_upset(0)
        assert changed
        assert not frame.crc_ok
        frame.clear()
        assert frame.crc_ok

    def test_upset_rejects_nonpositive_burst(self):
        frame = Frame(TEST_GEOMETRY, TEST_GEOMETRY.all_frames()[0])
        with pytest.raises(ValueError):
            frame.inject_upset(0, bits=0)

    def test_double_flip_is_byte_identical_but_interim_detected(self):
        frame = Frame(TEST_GEOMETRY, TEST_GEOMETRY.all_frames()[0])
        before = frame.to_config_bytes()
        frame.inject_upset(3)
        assert not frame.crc_ok
        frame.inject_upset(3)  # flip back
        assert frame.to_config_bytes() == before
        assert frame.crc_ok


class TestConfigurationMemoryFaultApi:
    def test_corrupt_bit_flags_frame_crc(self):
        memory = ConfigurationMemory(TEST_GEOMETRY)
        address = TEST_GEOMETRY.all_frames()[2]
        assert memory.frame_crc_ok(address)
        assert memory.corrupt_bit(address, 0)
        assert not memory.frame_crc_ok(address)

    def test_configured_frames_tracks_ownership(self):
        copro = build_coprocessor(config=SMALL_CONFIG, bank=build_small_bank())
        memory = copro.device.memory
        assert memory.configured_frames() == []
        copro.preload("crc32")
        owned = memory.configured_frames()
        assert owned and all(memory.owner_of(a) == "crc32" for a in owned)


class TestGoldenImageStore:
    def test_capture_release_and_default_zeros(self):
        store = GoldenImageStore(8)
        frames = TEST_GEOMETRY.all_frames()[:2]
        store.capture(frames, [b"\x01" * 8, b"\x02" * 8])
        assert store.payload_for(frames[0]) == b"\x01" * 8
        assert len(store) == 2
        store.release(frames)
        assert store.payload_for(frames[0]) == bytes(8)
        assert len(store) == 0

    def test_capture_validates_shapes(self):
        store = GoldenImageStore(8)
        frames = TEST_GEOMETRY.all_frames()[:2]
        with pytest.raises(ValueError):
            store.capture(frames, [b"\x01" * 8])
        with pytest.raises(ValueError):
            store.capture(frames[:1], [b"\x01" * 4])

    def test_device_feeds_golden_on_configure_and_unload(self):
        copro = protected_coprocessor()
        golden = copro.device.golden
        copro.preload("crc32")
        region = copro.device.region_of("crc32")
        assert all(address in golden for address in region)
        assert [golden.payload_for(a) for a in region] == copro.device.readback("crc32")
        copro.evict("crc32")
        assert all(address not in golden for address in region)


class TestConfigurationPortFaults:
    def test_wedged_port_refuses_sessions_until_unwedged(self):
        copro = build_coprocessor(config=SMALL_CONFIG, bank=build_small_bank())
        port = copro.device.port
        port.wedge()
        assert port.stats.wedge_events == 1
        with pytest.raises(ConfigurationError):
            copro.preload("crc32")
        port.unwedge()
        copro.preload("crc32")
        assert copro.is_loaded("crc32")

    def test_stall_charges_time_on_next_session(self):
        copro = build_coprocessor(config=SMALL_CONFIG, bank=build_small_bank())
        port = copro.device.port
        port.stall_for(5_000.0)
        before = copro.clock.now
        copro.preload("crc32")
        assert port.stats.stall_events == 1
        assert port.stats.stalled_time_ns == 5_000.0
        assert copro.clock.now - before >= 5_000.0
        # Consumed: a second preload pays no further stall.
        assert port._pending_stall_ns == 0.0

    def test_stall_rejects_negative_duration(self):
        copro = build_coprocessor(config=SMALL_CONFIG, bank=build_small_bank())
        with pytest.raises(ValueError):
            copro.device.port.stall_for(-1.0)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(process="gamma-ray")
        with pytest.raises(ValueError):
            FaultSpec(upset_rate_per_s=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(burst_bits=0)
        with pytest.raises(ValueError):
            FaultSpec(card_kill_times_ns=((-1.0, 0),))

    def test_mean_gaps(self):
        assert FaultSpec().mean_upset_gap_ns == float("inf")
        assert FaultSpec(upset_rate_per_s=1e3).mean_upset_gap_ns == 1e6
        spec = FaultSpec(port_fault_rate_per_s=2e3)
        assert spec.mean_port_fault_gap_ns == 5e5

    def test_with_overrides(self):
        spec = FaultSpec().with_overrides(upset_rate_per_s=7.0)
        assert spec.upset_rate_per_s == 7.0


class TestFaultInjectorManual:
    def test_targeted_process_hits_only_configured_frames(self):
        copro = build_coprocessor(config=SMALL_CONFIG, bank=build_small_bank())
        copro.preload("crc32")
        memory = copro.device.memory
        owned = set(memory.configured_frames())
        injector = FaultInjector(FaultSpec(process="targeted"))
        for _ in range(30):
            address, _ = injector.upset_memory(memory)
            assert address in owned

    def test_burst_flips_multiple_bits(self):
        memory = ConfigurationMemory(TEST_GEOMETRY)
        injector = FaultInjector(FaultSpec(process="burst", burst_bits=6))
        injector.upset_memory(memory)
        assert injector.bits_flipped == 6
        assert injector.upsets == 1

    def test_counters_split_effective_and_masked(self):
        memory = ConfigurationMemory(TEST_GEOMETRY)
        injector = FaultInjector(FaultSpec(process="poisson"))
        for _ in range(64):
            injector.upset_memory(memory)
        assert injector.upsets == 64
        assert injector.effective_upsets + injector.masked_upsets == 64

    def test_injection_is_seed_deterministic(self):
        def run(seed):
            memory = ConfigurationMemory(TEST_GEOMETRY)
            injector = FaultInjector(FaultSpec(process="poisson", seed=seed))
            return [injector.upset_memory(memory)[0] for _ in range(10)]

        assert run(1) == run(1)
        assert run(1) != run(2)


class TestScrubber:
    def test_detects_and_repairs_to_golden(self):
        copro = protected_coprocessor()
        copro.preload("crc32")
        memory = copro.device.memory
        region = list(copro.device.region_of("crc32"))
        golden_bytes = [copro.device.golden.payload_for(a) for a in region]
        for address in region:
            memory.corrupt_bit(address, 1)
        corrupted = [a for a in region if not memory.frame_crc_ok(a)]
        assert corrupted
        result = copro.scrubber.scrub_pass()
        assert result.detected == len(corrupted)
        assert result.corrected == len(corrupted)
        assert result.uncorrectable == 0
        assert [memory.read_frame(a) for a in region] == golden_bytes
        assert all(memory.frame_crc_ok(a) for a in region)

    def test_scrub_charges_card_time(self):
        copro = protected_coprocessor()
        before = copro.clock.now
        result = copro.scrubber.scrub_pass()
        assert result.elapsed_ns > 0
        assert copro.clock.now - before == result.elapsed_ns

    def test_partial_passes_cover_device_with_rotating_cursor(self):
        copro = protected_coprocessor()
        total = copro.geometry.frame_count
        window = 7
        checked = 0
        passes = 0
        while checked < total:
            checked += copro.scrubber.scrub_pass(max_frames=window).frames_checked
            passes += 1
        assert passes == -(-total // window)
        assert copro.scrubber.stats.frames_checked == checked

    def test_repairs_free_frames_to_zeros(self):
        copro = protected_coprocessor()
        memory = copro.device.memory
        address = memory.unowned_frames()[0]
        memory.corrupt_bit(address, 0)
        assert not memory.frame_crc_ok(address)
        copro.scrubber.scrub_pass()
        assert memory.read_frame(address) == bytes(copro.geometry.frame_config_bytes)


class TestScrubCommandPath:
    def test_host_scrub_command_round_trip(self):
        driver = small_driver()
        copro = driver.coprocessor
        copro.enable_fault_protection()
        driver.preload("crc32")
        memory = copro.device.memory
        for address in copro.device.region_of("crc32"):
            memory.corrupt_bit(address, 1)
        broken = sum(
            1 for a in copro.geometry.all_frames() if not memory.frame_crc_ok(a)
        )
        assert broken > 0
        corrected = driver.scrub_card()
        assert corrected == broken
        assert all(memory.frame_crc_ok(a) for a in copro.geometry.all_frames())

    def test_scrub_without_protection_is_a_bad_command(self):
        driver = small_driver()
        with pytest.raises(CoprocessorError):
            driver.scrub_card()

    def test_preload_on_wedged_port_reports_config_failed(self):
        driver = small_driver()
        driver.coprocessor.device.port.wedge()
        with pytest.raises(CoprocessorError):
            driver.preload("crc32")

    def test_enable_fault_protection_is_idempotent_and_snapshots_live_state(self):
        copro = build_coprocessor(config=SMALL_CONFIG, bank=build_small_bank())
        copro.preload("crc32")
        scrubber = copro.enable_fault_protection()
        assert copro.enable_fault_protection() is scrubber
        region = copro.device.region_of("crc32")
        golden = copro.device.golden
        assert [golden.payload_for(a) for a in region] == copro.device.readback("crc32")


class TestHazardDetector:
    def test_counts_executions_over_corrupted_frames(self):
        copro = protected_coprocessor()
        copro.preload("crc32")
        detector = copro.device.hazard_detector
        copro.execute("crc32", bytes(4))
        assert detector.checks == 1
        assert detector.hazard_executions == 0
        region = list(copro.device.region_of("crc32"))
        copro.device.memory.corrupt_bit(region[0], 1)
        copro.execute("crc32", bytes(4))
        assert detector.hazard_executions == 1
        assert detector.per_function["crc32"] == 1
        assert detector.last_was_hazard
        # Scrub, then the hazard stops.
        copro.scrubber.scrub_pass()
        copro.execute("crc32", bytes(4))
        assert detector.hazard_executions == 1
        assert detector.hazard_rate == pytest.approx(1 / 3)

    def test_reset_clears_counters(self):
        detector = FrameHazardDetector(ConfigurationMemory(TEST_GEOMETRY))
        detector.checks = 5
        detector.hazard_executions = 2
        detector.reset()
        assert detector.checks == 0 and detector.hazard_executions == 0


class TestRandomisedRepair:
    def test_random_upsets_always_repaired_byte_identically(self):
        copro = protected_coprocessor()
        copro.preload("crc32")
        copro.preload("parity32")
        memory = copro.device.memory
        golden = copro.device.golden
        rng = SeededRandom(77)
        frames = copro.geometry.all_frames()
        for _ in range(50):
            address = frames[rng.integer(0, len(frames) - 1)]
            memory.corrupt_bit(
                address,
                rng.integer(0, copro.geometry.frame_config_bytes * 8 - 1),
                bits=rng.integer(1, 4),
            )
            copro.scrubber.scrub_pass()
            for check in frames:
                assert memory.read_frame(check) == golden.payload_for(check)
                assert memory.frame_crc_ok(check)
