"""Property tests for the O(1)-memory streaming statistics sketches.

The documented contract (see ``repro/analysis/sketch.py``): a quantile
estimate is within relative **value** error ``e`` of the exact nearest-rank
quantile of the stream, the sketch is a deterministic pure fold (no RNG), and
two sketches over disjoint halves of a stream merge into the sketch of the
whole stream.  The property tests below check all three against brute-force
sorted streams.
"""

import math
import random

import pytest

from repro.analysis.sketch import StreamingQuantileSketch, WindowedTimeSeries


def exact_nearest_rank(values, q):
    """The estimator the sketch documents parity with (index round(q*(n-1)))."""
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))]


def latency_like_stream(seed, count, *, low=200.0, high=5e6):
    """A clumpy, repeat-heavy positive stream like the fleet's sojourn times."""
    rng = random.Random(seed)
    distinct = [math.exp(rng.uniform(math.log(low), math.log(high))) for _ in range(64)]
    return [distinct[min(int(rng.expovariate(0.15)), 63)] for _ in range(count)]


class TestQuantileAccuracy:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    @pytest.mark.parametrize("relative_error", [0.01, 0.05])
    def test_p50_p95_p99_within_relative_value_error(self, seed, relative_error):
        values = latency_like_stream(seed, 5_000)
        sketch = StreamingQuantileSketch(relative_error=relative_error)
        for value in values:
            sketch.add(value)
        for q in (0.50, 0.95, 0.99):
            exact = exact_nearest_rank(values, q)
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) <= relative_error * exact + 1e-9, (
                f"q={q}: estimate {estimate} vs exact {exact}"
            )

    def test_uniform_integers_within_bound(self):
        # A non-clumpy stream: every value distinct, overflowing the bucket memo.
        values = [float(v) for v in range(1, 4_001)]
        sketch = StreamingQuantileSketch(relative_error=0.01)
        for value in values:
            sketch.add(value)
        for q in (0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0):
            exact = exact_nearest_rank(values, q)
            assert abs(sketch.quantile(q) - exact) <= 0.01 * exact + 1e-9

    def test_extremes_clamped_to_observed_range(self):
        sketch = StreamingQuantileSketch()
        for value in (10.0, 100.0, 1000.0):
            sketch.add(value)
        assert sketch.quantile(0.0) >= 10.0 - 1e-9
        assert sketch.quantile(1.0) <= 1000.0 + 1e-9

    def test_memory_is_bounded_by_bucket_count(self):
        sketch = StreamingQuantileSketch(relative_error=0.01)
        rng = random.Random(3)
        for _ in range(50_000):
            sketch.add(rng.uniform(1.0, 1e9))
        # log(1e9)/log(gamma) buckets at most — hundreds, never O(n).
        ceiling = int(math.log(1e9) / math.log(sketch.gamma)) + 2
        assert sketch.bucket_count <= ceiling
        assert len(sketch._bucket_memo) <= 1024
        assert sketch.seen == 50_000


class TestDeterminismAndMerge:
    def test_pure_fold_is_reproducible(self):
        values = latency_like_stream(9, 2_000)
        first, second = StreamingQuantileSketch(), StreamingQuantileSketch()
        for value in values:
            first.add(value)
        for value in values:
            second.add(value)
        assert first.to_dict() == second.to_dict()

    def test_merge_equals_single_sketch_over_whole_stream(self):
        values = latency_like_stream(11, 3_000)
        whole = StreamingQuantileSketch()
        left, right = StreamingQuantileSketch(), StreamingQuantileSketch()
        for value in values:
            whole.add(value)
        for value in values[: len(values) // 2]:
            left.add(value)
        for value in values[len(values) // 2 :]:
            right.add(value)
        left.merge(right)
        assert left._buckets == whole._buckets
        assert left.seen == whole.seen
        assert left._sum == pytest.approx(whole._sum)
        for q in (0.5, 0.95, 0.99):
            assert left.quantile(q) == whole.quantile(q)

    def test_merge_rejects_mismatched_geometry(self):
        with pytest.raises(ValueError):
            StreamingQuantileSketch(relative_error=0.01).merge(
                StreamingQuantileSketch(relative_error=0.02)
            )

    def test_add_with_index_matches_add(self):
        values = latency_like_stream(13, 1_000)
        plain, indexed = StreamingQuantileSketch(), StreamingQuantileSketch()
        for value in values:
            plain.add(value)
            if value >= indexed.min_value:
                indexed.add_with_index(value, indexed.bucket_index(value))
            else:
                indexed.add(value)
        assert plain._buckets == indexed._buckets
        assert plain.seen == indexed.seen

    def test_dict_round_trip(self):
        sketch = StreamingQuantileSketch(relative_error=0.02, min_value=2.0)
        for value in (0.5, 3.0, 700.0, 700.0, 1e6):
            sketch.add(value)
        clone = StreamingQuantileSketch.from_dict(sketch.to_dict())
        assert clone.to_dict() == sketch.to_dict()
        assert clone.quantile(0.95) == sketch.quantile(0.95)

    def test_low_values_counted_not_bucketed(self):
        sketch = StreamingQuantileSketch(min_value=10.0)
        sketch.add(0.0)
        sketch.add(5.0)
        sketch.add(100.0)
        assert sketch._low_count == 2
        assert sketch.seen == 3
        assert sketch.quantile(0.0) == 10.0  # reported as min_value

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            StreamingQuantileSketch().add(-1.0)


class TestWindowedTimeSeries:
    def test_counts_and_sums_per_window(self):
        series = WindowedTimeSeries(window_ns=100.0)
        for time_ns, value in ((10, 2.0), (20, 3.0), (150, 1.0), (260, 4.0)):
            series.record(time_ns, value)
        assert series.windows() == [(0.0, 2, 5.0), (100.0, 1, 1.0), (200.0, 1, 4.0)]
        assert series.total_count == 4
        assert series.total_value == 10.0
        assert series.peak_rate_per_s() == pytest.approx(2 / (100.0 / 1e9))

    def test_eviction_keeps_totals_and_bounds_memory(self):
        series = WindowedTimeSeries(window_ns=10.0, max_windows=4)
        for step in range(100):
            series.record(step * 10.0)
        assert len(series._windows) == 4
        assert series.dropped_windows == 96
        assert series.total_count == 100

    def test_monotone_cache_matches_dict_path(self):
        cached = WindowedTimeSeries(window_ns=50.0)
        for step in range(500):
            cached.record(step * 7.0, 0.5)
        # Same stream recorded out of cache-friendly order (shuffled).
        shuffled = WindowedTimeSeries(window_ns=50.0)
        times = [step * 7.0 for step in range(500)]
        random.Random(5).shuffle(times)
        for time_ns in times:
            shuffled.record(time_ns, 0.5)
        assert cached.windows() == shuffled.windows()
        assert cached.total_value == pytest.approx(shuffled.total_value)

    def test_backward_jump_does_not_cache_evicted_row(self):
        series = WindowedTimeSeries(window_ns=10.0, max_windows=2)
        series.record(500.0)
        series.record(600.0)
        # Backward jump below every retained window: the new row is evicted
        # immediately; totals must still count it and the cache must not
        # point at the orphan.
        series.record(0.0)
        assert series.total_count == 3
        assert series.dropped_windows == 1
        assert sorted(series._windows) == [50, 60]
        series.record(600.0)  # must not resurrect the orphan row
        assert series._windows[60] == [2.0, 2.0]

    def test_merge_window_by_window(self):
        left = WindowedTimeSeries(window_ns=100.0)
        right = WindowedTimeSeries(window_ns=100.0)
        left.record(10.0, 1.0)
        left.record(110.0, 2.0)
        right.record(120.0, 3.0)
        right.record(210.0, 4.0)
        left.merge(right)
        assert left.windows() == [(0.0, 1, 1.0), (100.0, 2, 5.0), (200.0, 1, 4.0)]
        assert left.total_count == 4
        left.record(110.0, 1.0)  # cache was reset by merge; row must update
        assert left._windows[1] == [3.0, 6.0]

    def test_merge_rejects_mismatched_width(self):
        with pytest.raises(ValueError):
            WindowedTimeSeries(window_ns=10.0).merge(WindowedTimeSeries(window_ns=20.0))

    def test_merge_misaligned_window_boundaries(self):
        # Same window width but the two streams' events straddle different
        # boundaries: rows must combine by window *index*, never by event
        # order, and the straddling row must sum both sides.
        left = WindowedTimeSeries(window_ns=100.0)
        right = WindowedTimeSeries(window_ns=100.0)
        left.record(95.0, 1.0)  # window 0, just before the boundary
        left.record(205.0, 2.0)  # window 2
        right.record(105.0, 4.0)  # window 1, just after the boundary
        right.record(199.0, 8.0)  # window 1, just before the next one
        right.record(230.0, 16.0)  # window 2, overlaps left's row
        left.merge(right)
        assert left.windows() == [
            (0.0, 1, 1.0),
            (100.0, 2, 12.0),
            (200.0, 2, 18.0),
        ]
        assert left.total_count == 5
        assert left.total_value == 31.0

    def test_merge_evicts_down_to_max_windows(self):
        # Merging a wide series into a narrow ring must evict the *oldest*
        # rows until the bound holds again, counting every eviction, while
        # lifetime totals keep the evicted events.
        narrow = WindowedTimeSeries(window_ns=10.0, max_windows=2)
        wide = WindowedTimeSeries(window_ns=10.0)
        narrow.record(0.0, 1.0)
        for step in range(5):
            wide.record(step * 10.0, 1.0)
        narrow.merge(wide)
        assert len(narrow._windows) == 2
        assert sorted(narrow._windows) == [3, 4]
        assert narrow.dropped_windows == 3
        assert narrow.total_count == 6
        assert narrow.total_value == 6.0

    def test_merge_empty_into_nonempty_and_back(self):
        # Empty-into-nonempty is a no-op on the rows; nonempty-into-empty
        # copies them.  Both must leave the receiver's cache consistent.
        series = WindowedTimeSeries(window_ns=100.0)
        series.record(10.0, 2.0)
        series.merge(WindowedTimeSeries(window_ns=100.0))
        assert series.windows() == [(0.0, 1, 2.0)]
        assert series.total_count == 1
        empty = WindowedTimeSeries(window_ns=100.0)
        empty.merge(series)
        assert empty.windows() == series.windows()
        empty.record(20.0, 3.0)  # cache reset by merge; row must update
        assert empty._windows[0] == [2.0, 5.0]

    def test_trailing_counts_only_the_horizon_windows(self):
        series = WindowedTimeSeries(window_ns=100.0)
        for time_ns, value in ((50.0, 1.0), (150.0, 2.0), (250.0, 4.0)):
            series.record(time_ns, value)
        # Horizon of one window at t=260: windows 1 and 2 are in range
        # (window-granular: the horizon rounds out to whole windows).
        count, value = series.trailing(260.0, 100.0)
        assert (count, value) == (2, 6.0)
        # A horizon spanning everything returns the lifetime totals.
        assert series.trailing(260.0, 1_000.0) == (3, 7.0)


class TestHistogramPercentileEdges:
    def test_empty_histogram_reports_zero(self):
        from repro.obs.registry import Histogram

        histogram = Histogram("fleet.sojourn")
        assert histogram.count == 0
        assert histogram.percentile(50) == 0.0
        assert histogram.mean == 0.0

    def test_single_observation_is_every_percentile(self):
        from repro.obs.registry import Histogram

        histogram = Histogram("fleet.sojourn")
        histogram.observe(42_000.0)
        for percentile in (0, 50, 95, 99, 100):
            assert histogram.percentile(percentile) == 42_000.0
        assert histogram.mean == 42_000.0
