"""Tests for LUTs, CLBs and switch boxes."""

import pytest

from repro.fpga.clb import ConfigurableLogicBlock, SwitchBox
from repro.fpga.lut import LookUpTable


class TestLookUpTable:
    def test_constant_luts(self):
        zero = LookUpTable.constant(4, False)
        one = LookUpTable.constant(4, True)
        assert not zero.evaluate([False] * 4)
        assert one.evaluate([True, False, True, False])
        assert zero.is_constant() and one.is_constant()

    def test_from_function_xor(self):
        lut = LookUpTable.logic_xor(3)
        assert lut.evaluate([True, False, False])
        assert not lut.evaluate([True, True, False])

    def test_and_or_passthrough(self):
        and_lut = LookUpTable.logic_and(2)
        or_lut = LookUpTable.logic_or(2)
        pass_lut = LookUpTable.passthrough(3, which=1)
        assert and_lut.evaluate([True, True]) and not and_lut.evaluate([True, False])
        assert or_lut.evaluate([False, True]) and not or_lut.evaluate([False, False])
        assert pass_lut.evaluate([False, True, False])

    def test_truth_table_from_integer(self):
        lut = LookUpTable(2, 0b0110)  # XOR
        assert lut.evaluate([True, False]) and lut.evaluate([False, True])
        assert not lut.evaluate([True, True])
        assert lut.as_integer() == 0b0110

    def test_bytes_round_trip(self):
        lut = LookUpTable.logic_xor(4)
        rebuilt = LookUpTable.from_bytes(4, lut.to_bytes())
        assert rebuilt == lut
        assert hash(rebuilt) == hash(lut)

    def test_input_count_validation(self):
        with pytest.raises(ValueError):
            LookUpTable(0)
        with pytest.raises(ValueError):
            LookUpTable(9)
        with pytest.raises(ValueError):
            LookUpTable(2, [True] * 3)

    def test_evaluate_wrong_arity(self):
        with pytest.raises(ValueError):
            LookUpTable.logic_and(2).evaluate([True])

    def test_passthrough_index_validation(self):
        with pytest.raises(ValueError):
            LookUpTable.passthrough(2, which=2)


class TestSwitchBox:
    def test_starts_clear(self):
        box = SwitchBox(8)
        assert box.is_clear and len(box.state) == 8

    def test_load_and_clear(self):
        box = SwitchBox(4)
        box.load_config_bytes(b"\x01\x02\x03\x04")
        assert not box.is_clear
        box.clear()
        assert box.is_clear

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            SwitchBox(4).load_config_bytes(b"\x01")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SwitchBox(-1)


class TestConfigurableLogicBlock:
    def _clb(self):
        return ConfigurableLogicBlock(luts_per_clb=8, lut_inputs=4, switch_bytes=16)

    def test_config_length_matches_serialisation(self):
        clb = self._clb()
        assert len(clb.to_config_bytes()) == clb.config_byte_length()

    def test_round_trip_preserves_logic(self):
        clb = self._clb()
        clb.luts[0] = LookUpTable.logic_xor(4)
        clb.luts[5] = LookUpTable.logic_and(4)
        clb.ff_init[3] = True
        clb.switch_box.state[2] = 0x7F
        data = clb.to_config_bytes()

        other = self._clb()
        other.load_config_bytes(data)
        assert other.luts[0] == LookUpTable.logic_xor(4)
        assert other.luts[5] == LookUpTable.logic_and(4)
        assert other.ff_init[3] is True
        assert other.switch_box.state[2] == 0x7F
        assert other.to_config_bytes() == data

    def test_clear_resets_everything(self):
        clb = self._clb()
        clb.luts[1] = LookUpTable.logic_or(4)
        clb.ff_init[0] = True
        clb.clear()
        assert clb.is_clear

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            self._clb().load_config_bytes(b"\x00" * 3)

    def test_evaluate_lut(self):
        clb = self._clb()
        clb.luts[2] = LookUpTable.logic_and(4)
        assert clb.evaluate_lut(2, [True] * 4)
        with pytest.raises(IndexError):
            clb.evaluate_lut(99, [True] * 4)

    def test_needs_at_least_one_lut(self):
        with pytest.raises(ValueError):
            ConfigurableLogicBlock(0, 4, 16)
