"""Property tests: traced front-door runs produce well-formed span forests.

Hypothesis drives the whole stack — lossy links × retry budgets × a
mid-trace card kill — and asserts the structural contract of the tracing
layer on whatever schedule falls out:

* every trace has exactly one root and no orphaned parent references;
* span counts are conserved against the (independently-migrated)
  ``FleetStatistics`` counters: one client root per network request, one
  attempt span per send, one queue-wait + one service span per completion,
  one link-transit span per delivered packet;
* the exported trace fingerprint is a pure function of the parameters —
  running the same cell twice traces identically, span for span.

Sampling and capacity bounds get direct (non-property) tests at the end.
"""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_fleet, build_frontdoor
from repro.core.config import SMALL_CONFIG
from repro.faults import FaultSpec
from repro.functions.bank import build_small_bank
from repro.net import LinkSpec, OpenLoopPopulation, TransportConfig
from repro.obs import Observability, names, trace_fingerprint

REQUESTS = 40


def run_traced(loss, retries, kill, seed, sample_rate=1.0, capacity=1_000_000):
    from repro.workloads.multitenant import default_tenant_mix, multi_tenant_trace

    bank = build_small_bank()
    tenants = default_tenant_mix(bank, tenants=2, skew=1.2)
    trace = multi_tenant_trace(
        bank, tenants, length=REQUESTS, mean_interarrival_ns=30_000.0, seed=seed
    )
    observability = Observability(sample_rate=sample_rate, seed=seed, capacity=capacity)
    fleet = build_fleet(
        cards=2,
        config=SMALL_CONFIG.with_overrides(seed=seed),
        bank=bank,
        queue_depth=8,
        observability=observability,
        fault_tolerance=kill,
        scrub_period_ns=100_000.0 if kill else None,
        fault_spec=(
            FaultSpec(card_kill_times_ns=((400_000.0, 0),), seed=seed)
            if kill
            else None
        ),
    )
    frontdoor = build_frontdoor(
        fleet,
        seed=seed,
        gateways=2,
        uplink=LinkSpec(latency_ns=20_000.0, loss=loss, jitter_ns=4_000.0),
        transport=TransportConfig(max_retries=retries),
        deadline_ns=30_000_000.0,
    )
    frontdoor.add_population(OpenLoopPopulation(trace))
    stats = frontdoor.run()
    return frontdoor, observability, stats


@settings(max_examples=10, deadline=None)
@given(
    loss=st.floats(min_value=0.0, max_value=0.35),
    retries=st.integers(min_value=0, max_value=3),
    kill=st.booleans(),
    seed=st.integers(min_value=0, max_value=50),
)
def test_traced_runs_yield_wellformed_conserved_span_forests(
    loss, retries, kill, seed
):
    frontdoor, observability, stats = run_traced(loss, retries, kill, seed)
    spans = observability.spans
    assert spans, "a full-rate traced run must record spans"
    assert observability.tracer.dropped == 0

    by_trace = defaultdict(list)
    by_name = defaultdict(int)
    for span in spans:
        assert span.end_ns >= span.start_ns
        assert isinstance(span.start_ns, int) and isinstance(span.end_ns, int)
        assert span.name in names.SPAN_NAMES or span.name.startswith(
            names.DEVICE_SPAN_PREFIX
        )
        by_trace[span.trace_id].append(span)
        by_name[span.name] += 1

    for trace_id, trace_spans in by_trace.items():
        roots = [span for span in trace_spans if span.parent_id is None]
        assert len(roots) == 1, f"trace {trace_id} has {len(roots)} roots"
        span_ids = {span.span_id for span in trace_spans}
        for span in trace_spans:
            if span.parent_id is not None:
                assert span.parent_id in span_ids, f"orphan in trace {trace_id}"

    # Conservation against the FleetStatistics counters.
    assert by_name[names.SPAN_CLIENT_REQUEST] == stats.net_requests == REQUESTS
    assert by_name[names.SPAN_NET_ATTEMPT] == stats.net_requests + stats.net_retries
    admitted = sum(
        1
        for span in spans
        if span.name == names.SPAN_GW_ADMISSION
        and span.attrs.get("verdict") == "admitted"
    )
    assert admitted == sum(gateway.admitted for gateway in frontdoor.gateways)
    assert by_name[names.SPAN_FLEET_QUEUE] == by_name[names.SPAN_CARD_SERVICE]
    assert by_name[names.SPAN_CARD_SERVICE] == stats.completed
    assert by_name[names.SPAN_LINK_TRANSIT] == frontdoor.link_summary()["delivered"]
    # Backoff sleeps can outlive their request, so they bound retries above.
    assert by_name[names.SPAN_NET_BACKOFF] >= stats.net_retries

    # The whole trace is a pure function of the cell parameters.
    _, rerun, _ = run_traced(loss, retries, kill, seed)
    assert trace_fingerprint(rerun.spans) == trace_fingerprint(spans)


def test_sampling_thins_traces_head_based():
    _, full, _ = run_traced(0.05, 2, False, seed=9)
    _, sampled, _ = run_traced(0.05, 2, False, seed=9, sample_rate=0.4)
    full_ids = set(span.trace_id for span in full.spans)
    kept_ids = set(span.trace_id for span in sampled.spans)
    assert kept_ids < full_ids  # strictly fewer traces, none invented
    # Head-based: a sampled trace keeps its *entire* span tree, bit-for-bit.
    tracer = sampled.tracer
    for trace_id in kept_ids:
        assert tracer.sampled(trace_id)
        full_trace = [s for s in full.spans if s.trace_id == trace_id]
        kept_trace = [s for s in sampled.spans if s.trace_id == trace_id]
        assert len(full_trace) == len(kept_trace)
        assert [(s.name, s.start_ns, s.end_ns) for s in full_trace] == [
            (s.name, s.start_ns, s.end_ns) for s in kept_trace
        ]
    dropped_ids = full_ids - kept_ids
    assert all(not tracer.sampled(trace_id) for trace_id in dropped_ids)


def test_capacity_bounds_retained_spans_and_counts_the_rest():
    _, unbounded, _ = run_traced(0.0, 1, False, seed=4)
    total = len(unbounded.spans)
    _, bounded, _ = run_traced(0.0, 1, False, seed=4, capacity=25)
    assert len(bounded.spans) == 25
    assert bounded.tracer.dropped == total - 25
    # The first 25 spans are the same ones the unbounded run recorded.
    assert [s.name for s in bounded.spans] == [s.name for s in unbounded.spans[:25]]
