"""Tests for the placer and the bit-stream generator."""

import pytest

from repro.bitstream.format import parse_bitstream
from repro.fpga.bitgen import BitstreamGenerator
from repro.fpga.errors import PlacementError
from repro.fpga.frame import Frame
from repro.fpga.placer import Placer, PlacementStrategy
from repro.functions.netgen import build_adder_netlist, build_parity_netlist


class TestPlacer:
    def test_frames_required_scales_with_luts(self, tiny_geometry):
        placer = Placer(tiny_geometry)
        parity = build_parity_netlist(tiny_geometry, 32)
        assert placer.frames_required(parity) >= 1

    def test_contiguous_first_fit_prefers_runs(self, tiny_geometry):
        placer = Placer(tiny_geometry, PlacementStrategy.CONTIGUOUS_FIRST_FIT)
        free = [tiny_geometry.frame_at(index) for index in (0, 2, 3, 4, 9)]
        chosen = placer.choose_frames(3, free)
        assert [address.flat_index(tiny_geometry.tiles_per_column) for address in chosen] == [2, 3, 4]

    def test_contiguous_first_fit_falls_back_to_scatter(self, tiny_geometry):
        placer = Placer(tiny_geometry, PlacementStrategy.CONTIGUOUS_FIRST_FIT)
        free = [tiny_geometry.frame_at(index) for index in (0, 2, 4, 6)]
        chosen = placer.choose_frames(3, free)
        assert len(chosen) == 3

    def test_contiguous_only_fails_when_fragmented(self, tiny_geometry):
        placer = Placer(tiny_geometry, PlacementStrategy.CONTIGUOUS_ONLY)
        free = [tiny_geometry.frame_at(index) for index in (0, 2, 4, 6)]
        with pytest.raises(PlacementError):
            placer.choose_frames(2, free)

    def test_scatter_takes_lowest_indices(self, tiny_geometry):
        placer = Placer(tiny_geometry, PlacementStrategy.SCATTER)
        free = [tiny_geometry.frame_at(index) for index in (9, 1, 5)]
        chosen = placer.choose_frames(2, free)
        assert [address.flat_index(tiny_geometry.tiles_per_column) for address in chosen] == [1, 5]

    def test_insufficient_frames_raises(self, tiny_geometry):
        placer = Placer(tiny_geometry)
        with pytest.raises(PlacementError):
            placer.choose_frames(4, [tiny_geometry.frame_at(0)])
        with pytest.raises(PlacementError):
            placer.choose_frames(0, [tiny_geometry.frame_at(0)])

    def test_place_assigns_every_lut_a_unique_site(self, tiny_geometry):
        placer = Placer(tiny_geometry)
        netlist = build_adder_netlist(tiny_geometry, 8)
        placement = placer.place(netlist, tiny_geometry.all_frames())
        assert len(placement.sites) == netlist.lut_count
        sites = {(site.frame, site.clb_index, site.lut_index) for site in placement.sites.values()}
        assert len(sites) == netlist.lut_count
        for site in placement.sites.values():
            assert site.frame in placement.region
            assert 0 <= site.clb_index < tiny_geometry.clbs_per_frame
            assert 0 <= site.lut_index < tiny_geometry.luts_per_clb

    def test_place_rejects_overfull_region(self, tiny_geometry):
        placer = Placer(tiny_geometry)
        # A 128-input parity tree needs more LUTs than one frame offers.
        netlist = build_parity_netlist(tiny_geometry, 128)
        assert netlist.lut_count > tiny_geometry.luts_per_frame
        with pytest.raises(PlacementError):
            placer.place(netlist, tiny_geometry.all_frames(), frames_needed=1)

    def test_lut_utilisation(self, tiny_geometry):
        placer = Placer(tiny_geometry)
        netlist = build_adder_netlist(tiny_geometry, 8)
        placement = placer.place(netlist, tiny_geometry.all_frames())
        utilisation = placement.lut_utilisation(tiny_geometry)
        assert 0.0 < utilisation <= 1.0

    def test_fragmentation_index(self, tiny_geometry):
        placer = Placer(tiny_geometry)
        assert placer.fragmentation([]) == 0.0
        contiguous = [tiny_geometry.frame_at(index) for index in range(4)]
        assert placer.fragmentation(contiguous) == 0.0
        scattered = [tiny_geometry.frame_at(index) for index in (0, 2, 4, 6)]
        assert placer.fragmentation(scattered) == pytest.approx(0.75)


class TestBitstreamGenerator:
    def test_generated_bitstream_parses_and_matches_geometry(self, tiny_geometry):
        placer = Placer(tiny_geometry)
        generator = BitstreamGenerator(tiny_geometry)
        netlist = build_adder_netlist(tiny_geometry, 8)
        placement = placer.place(netlist, tiny_geometry.all_frames())
        bitstream = generator.generate(netlist, placement, function_id=13, input_bytes=2, output_bytes=2)
        assert bitstream.header.function_name == "adder8"
        assert bitstream.header.frame_count == len(placement.region)
        assert all(len(frame) == tiny_geometry.frame_config_bytes for frame in bitstream.frames)
        parsed = parse_bitstream(bitstream.to_bytes())
        assert parsed.frames == bitstream.frames

    def test_rendered_frames_contain_the_netlist_luts(self, tiny_geometry):
        placer = Placer(tiny_geometry)
        generator = BitstreamGenerator(tiny_geometry)
        netlist = build_adder_netlist(tiny_geometry, 8)
        placement = placer.place(netlist, tiny_geometry.all_frames())
        payloads = generator.render_frames(netlist, placement)
        configured_luts = 0
        for slot, address in enumerate(placement.region):
            frame = Frame(tiny_geometry, address)
            frame.load_config_bytes(payloads[slot])
            configured_luts += sum(
                1 for clb in frame.clbs for lut in clb.luts if lut.as_integer() != 0
            )
        # Every non-trivial LUT cell of the netlist appears in the frames.
        nontrivial = sum(1 for cell in netlist.lut_cells if cell.lut.as_integer() != 0)
        assert configured_luts == nontrivial

    def test_generation_is_deterministic(self, tiny_geometry):
        generator = BitstreamGenerator(tiny_geometry)
        placer = Placer(tiny_geometry)
        netlist = build_parity_netlist(tiny_geometry, 32)
        placement = placer.place(netlist, tiny_geometry.all_frames())
        first = generator.generate(netlist, placement, 12, 4, 1).to_bytes()
        second = generator.generate(netlist, placement, 12, 4, 1).to_bytes()
        assert first == second

    def test_synthetic_frames_shape_and_determinism(self, tiny_geometry):
        generator = BitstreamGenerator(tiny_geometry)
        frames_a = generator.synthetic_frames(frame_count=3, lut_count=50, seed=5)
        frames_b = generator.synthetic_frames(frame_count=3, lut_count=50, seed=5)
        frames_c = generator.synthetic_frames(frame_count=3, lut_count=50, seed=6)
        assert frames_a == frames_b
        assert frames_a != frames_c
        assert len(frames_a) == 3
        assert all(len(frame) == tiny_geometry.frame_config_bytes for frame in frames_a)

    def test_synthetic_frames_respect_lut_budget(self, tiny_geometry):
        generator = BitstreamGenerator(tiny_geometry)
        frames = generator.synthetic_frames(frame_count=2, lut_count=10, seed=1)
        configured = 0
        for payload in frames:
            frame = Frame(tiny_geometry, tiny_geometry.frame_at(0))
            frame.load_config_bytes(payload)
            configured += sum(1 for clb in frame.clbs for lut in clb.luts if lut.as_integer() != 0)
        assert configured == 10

    def test_synthetic_frames_validation(self, tiny_geometry):
        generator = BitstreamGenerator(tiny_geometry)
        with pytest.raises(ValueError):
            generator.synthetic_frames(frame_count=0, lut_count=1)
