"""Shared fixtures for the test suite.

Most tests use deliberately small fabrics, banks and memories so the suite
stays fast; a handful of integration tests build the full default system.
"""

from __future__ import annotations

import pytest

from repro.core.builder import build_coprocessor
from repro.core.config import CoprocessorConfig, SMALL_CONFIG
from repro.fpga.geometry import FabricGeometry
from repro.functions.bank import FunctionBank, build_default_bank, build_small_bank
from repro.sim.clock import Clock


@pytest.fixture
def clock() -> Clock:
    return Clock()


@pytest.fixture
def tiny_geometry() -> FabricGeometry:
    """4x16 CLBs, 16 frames of 4 CLBs — big enough for the netlist functions."""
    return FabricGeometry(columns=4, rows=16, clb_rows_per_frame=4)


@pytest.fixture
def small_geometry() -> FabricGeometry:
    """8x32 CLBs, 64 frames — matches SMALL_CONFIG."""
    return FabricGeometry(columns=8, rows=32, clb_rows_per_frame=4)


@pytest.fixture
def small_config() -> CoprocessorConfig:
    return SMALL_CONFIG.with_overrides(seed=7)


@pytest.fixture
def small_bank() -> FunctionBank:
    return build_small_bank()


@pytest.fixture(scope="session")
def default_bank() -> FunctionBank:
    """The full 14-function bank (session-scoped: building AES etc. is not free)."""
    return build_default_bank()


@pytest.fixture
def small_coprocessor(small_config, small_bank):
    """A small, fully downloaded co-processor (fast to build)."""
    return build_coprocessor(config=small_config, bank=small_bank)
