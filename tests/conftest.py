"""Shared fixtures for the test suite.

Most tests use deliberately small fabrics, banks and memories so the suite
stays fast; a handful of integration tests build the full default system.

The fleet-shaped fixtures (``small_trace`` / ``small_fleet`` /
``protected_fleet`` / ``host_driver_factory``) are *factories*: they return a
builder function so one test can produce several fleets or traces with
different knobs while every suite shares a single definition of "a tiny
deterministic fleet" (previously copy-pasted across the cluster, fault and
multi-card PCI suites).

Hypothesis runs under registered profiles: both are derandomized (a property
failure must reproduce on the next run and on every CI machine), CI trades
example count for wall-clock, and ``HYPOTHESIS_PROFILE`` overrides the
auto-selection when needed.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck
from hypothesis import settings as hypothesis_settings

from repro.core.builder import build_coprocessor, build_fleet, build_host_driver
from repro.core.config import CoprocessorConfig, SMALL_CONFIG
from repro.fpga.geometry import FabricGeometry
from repro.functions.bank import FunctionBank, build_default_bank, build_small_bank
from repro.sim.clock import Clock
from repro.workloads.multitenant import default_tenant_mix, multi_tenant_trace

# --------------------------------------------------------------- hypothesis
hypothesis_settings.register_profile(
    "ci",
    max_examples=20,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.register_profile(
    "dev",
    max_examples=40,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev")
)


@pytest.fixture
def clock() -> Clock:
    return Clock()


@pytest.fixture
def tiny_geometry() -> FabricGeometry:
    """4x16 CLBs, 16 frames of 4 CLBs — big enough for the netlist functions."""
    return FabricGeometry(columns=4, rows=16, clb_rows_per_frame=4)


@pytest.fixture
def small_geometry() -> FabricGeometry:
    """8x32 CLBs, 64 frames — matches SMALL_CONFIG."""
    return FabricGeometry(columns=8, rows=32, clb_rows_per_frame=4)


@pytest.fixture
def small_config() -> CoprocessorConfig:
    return SMALL_CONFIG.with_overrides(seed=7)


@pytest.fixture(scope="session")
def small_bank() -> FunctionBank:
    """The 4-function test bank (session-scoped: its memos are shareable)."""
    return build_small_bank()


@pytest.fixture(scope="session")
def default_bank() -> FunctionBank:
    """The full 14-function bank (session-scoped: building AES etc. is not free)."""
    return build_default_bank()


@pytest.fixture
def small_coprocessor(small_config, small_bank):
    """A small, fully downloaded co-processor (fast to build)."""
    return build_coprocessor(config=small_config, bank=small_bank)


# ------------------------------------------------------------ fleet factories
#: Six functions (~63 frames) on a 32-frame fabric: no single card can hold
#: the fleet's working set, so dispatch decisions change hit rates.
FLEET_WORKING_SET = ["sha1", "crc32", "fir16", "strmatch", "bitonic64", "parity32"]


@pytest.fixture(scope="session")
def fleet_working_set():
    return list(FLEET_WORKING_SET)


@pytest.fixture(scope="session")
def pressure_config() -> CoprocessorConfig:
    """The fleet-pressure card: 32 big frames against a ~63-frame working set."""
    return CoprocessorConfig(
        fabric_columns=8, fabric_rows=32, clb_rows_per_frame=8, seed=2005
    )


@pytest.fixture
def small_trace():
    """Factory: a small deterministic multi-tenant open-arrival trace."""

    def make(bank, length=60, seed=3, mean_interarrival_ns=30_000.0, tenants=2, skew=1.2):
        specs = default_tenant_mix(bank, tenants=tenants, skew=skew)
        return multi_tenant_trace(
            bank, specs, length=length, mean_interarrival_ns=mean_interarrival_ns, seed=seed
        )

    return make


@pytest.fixture
def small_fleet():
    """Factory: a tiny fleet of identically configured SMALL_CONFIG cards."""

    def make(bank, policy="affinity", cards=2, queue_depth=8, seed=3, **kwargs):
        return build_fleet(
            cards=cards,
            config=SMALL_CONFIG.with_overrides(seed=seed),
            bank=bank,
            policy=policy,
            queue_depth=queue_depth,
            **kwargs,
        )

    return make


@pytest.fixture
def protected_fleet():
    """Factory: a tiny fleet with the fault-tolerance stack installed."""

    def make(bank, cards=3, seed=3, **kwargs):
        return build_fleet(
            cards=cards,
            config=SMALL_CONFIG.with_overrides(seed=seed),
            bank=bank,
            policy="affinity",
            queue_depth=8,
            fault_tolerance=True,
            **kwargs,
        )

    return make


@pytest.fixture
def host_driver_factory():
    """Factory: one SMALL_CONFIG card on its own PCI bus behind a driver."""

    def make(bank, config=None):
        return build_host_driver(
            config=config if config is not None else SMALL_CONFIG, bank=bank
        )

    return make
