"""Tests for the function bank and the netlist-backed functions on the fabric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.executor import NetlistExecutor
from repro.functions.base import CallableFunction, FunctionCategory, FunctionSpec
from repro.functions.bank import FunctionBank, build_small_bank
from repro.functions.misc.logic import AdderFunction, ParityFunction, PopcountFunction


class TestFunctionSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionSpec("", 1, "d", FunctionCategory.MISC, 1, 1, 1)
        with pytest.raises(ValueError):
            FunctionSpec("a-very-long-function-name", 1, "d", FunctionCategory.MISC, 1, 1, 1)
        with pytest.raises(ValueError):
            FunctionSpec("ok", 1, "d", FunctionCategory.MISC, 0, 1, 1)
        with pytest.raises(ValueError):
            FunctionSpec("ok", 1, "d", FunctionCategory.MISC, 1, 1, 0)

    def test_callable_function_adapter(self):
        spec = FunctionSpec("upper", 99, "uppercase", FunctionCategory.MISC, 8, 8, 32)
        function = CallableFunction(spec, lambda data: data.upper())
        assert function.behaviour(b"abc") == b"ABC"
        assert function.reference(b"abc") == b"ABC"
        assert function.build_netlist(None) is None

    def test_software_cycles_scale_with_slowdown(self):
        function = ParityFunction()
        assert function.software_cycles(4, slowdown=40.0) == 2 * function.software_cycles(4, slowdown=20.0)


class TestFunctionBank:
    def test_default_bank_contents(self, default_bank):
        assert len(default_bank) == 14
        names = default_bank.names()
        for expected in ("aes128", "des", "sha1", "sha256", "modexp512", "fir16", "fft256",
                         "matmul8", "crc32", "bitonic64", "strmatch", "parity32", "adder8", "popcount8"):
            assert expected in names

    def test_small_bank_is_subset_of_cheap_functions(self):
        bank = build_small_bank()
        assert len(bank) == 4
        assert all(function.spec.lut_estimate < 300 for function in bank)

    def test_lookup_by_name_and_id(self, default_bank):
        assert default_bank.by_name("aes128").function_id == 1
        assert default_bank.by_id(1).name == "aes128"
        with pytest.raises(KeyError):
            default_bank.by_name("ghost")
        with pytest.raises(KeyError):
            default_bank.by_id(999)

    def test_duplicate_names_and_ids_rejected(self):
        bank = FunctionBank([ParityFunction(function_id=1)])
        with pytest.raises(ValueError):
            bank.add(ParityFunction(function_id=2))
        with pytest.raises(ValueError):
            bank.add(AdderFunction(function_id=1))

    def test_by_category(self, default_bank):
        crypto = default_bank.by_category(FunctionCategory.CRYPTO)
        assert {function.name for function in crypto} == {"aes128", "des", "modexp512"}

    def test_subset_preserves_order(self, default_bank):
        subset = default_bank.subset(["sha1", "aes128"])
        assert subset.names() == ["sha1", "aes128"]

    def test_unique_ids_across_default_bank(self, default_bank):
        ids = [function.function_id for function in default_bank]
        assert len(ids) == len(set(ids))

    def test_describe_lists_every_function(self, default_bank):
        text = default_bank.describe()
        assert text.count("\n") == len(default_bank) - 1

    def test_frames_required_positive_for_all(self, default_bank, small_geometry):
        for function in default_bank:
            assert function.frames_required(small_geometry) >= 1


class TestNetlistBackedFunctions:
    """The three netlist functions must behave identically when evaluated
    gate-by-gate on the fabric and when run as reference software."""

    @pytest.mark.parametrize("function_class", [ParityFunction, AdderFunction, PopcountFunction])
    def test_netlist_executor_matches_behaviour_exhaustive_small(self, function_class, tiny_geometry):
        function = function_class()
        netlist = function.build_netlist(tiny_geometry)
        executor = NetlistExecutor(netlist)
        samples = {
            "parity32": [bytes(4), b"\xff\xff\xff\xff", b"\x01\x00\x00\x80", b"\x12\x34\x56\x78"],
            "adder8": [bytes(2), b"\xff\xff", b"\x01\x02", b"\x80\x80", b"\xc8\x64"],
            "popcount8": [bytes([value]) for value in range(0, 256, 23)],
        }[function.name]
        for data in samples:
            assert executor.run(data)[0] == function.behaviour(data)

    @given(data=st.binary(min_size=4, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_parity_netlist_property(self, data):
        from repro.fpga.geometry import FabricGeometry

        geometry = FabricGeometry(columns=4, rows=16, clb_rows_per_frame=4)
        function = ParityFunction()
        executor = NetlistExecutor(function.build_netlist(geometry))
        assert executor.run(data)[0] == function.behaviour(data)

    @given(data=st.binary(min_size=2, max_size=2))
    @settings(max_examples=30, deadline=None)
    def test_adder_netlist_property(self, data):
        from repro.fpga.geometry import FabricGeometry

        geometry = FabricGeometry(columns=4, rows=16, clb_rows_per_frame=4)
        function = AdderFunction()
        executor = NetlistExecutor(function.build_netlist(geometry))
        assert executor.run(data)[0] == function.behaviour(data)

    def test_executor_selection(self, tiny_geometry):
        # Netlist-backed functions get a NetlistExecutor, others a behavioural one.
        from repro.fpga.executor import BehaviouralExecutor
        from repro.functions.misc.crc import Crc32Function

        assert isinstance(ParityFunction().executor(tiny_geometry), NetlistExecutor)
        assert isinstance(Crc32Function().executor(tiny_geometry), BehaviouralExecutor)
