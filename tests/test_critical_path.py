"""Unit + property tests for the layered critical-path sweep.

The module is duck-typed, so the tests drive it with a five-field stub
rather than real ``repro.obs`` spans — anything with name / trace_id /
span_id / parent_id / start_ns / end_ns works.  The load-bearing invariant
is *tiling*: every critical path's segments partition the root window
exactly, so the per-stage attribution always explains 100% of a request's
latency.  The load-bearing behaviour is *layering*: a fleet queue wait
beats the transport attempt that envelopes it, which is what makes the E12
overload story legible from traces.
"""

from typing import NamedTuple, Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.critical_path import (
    Segment,
    critical_path,
    critical_paths,
    dominant_stages,
    find_root,
    stage_breakdown,
    stage_depth,
    top_critical_paths,
)


class FakeSpan(NamedTuple):
    name: str
    trace_id: int
    span_id: int
    parent_id: Optional[int]
    start_ns: int
    end_ns: int


def span(name, start, end, span_id, parent=None, trace=1):
    return FakeSpan(name, trace, span_id, parent, start, end)


def segments_of(path):
    return [(seg.name, seg.start_ns, seg.end_ns) for seg in path.segments]


class TestCriticalPath:
    def test_nested_spans_get_classic_innermost_attribution(self):
        trace = [
            span("client.request", 0, 100, 1),
            span("net.attempt", 10, 90, 2, parent=1),
            span("net.link.transit", 20, 40, 3, parent=2),
        ]
        path = critical_path(trace)
        assert path.duration_ns == 100
        assert segments_of(path) == [
            ("client.request", 0, 10),
            ("net.attempt", 10, 20),
            ("net.link.transit", 20, 40),
            ("net.attempt", 40, 90),
            ("client.request", 90, 100),
        ]

    def test_queue_wait_beats_the_attempt_that_envelopes_it(self):
        # The E12 shape: the attempt times out at 60 while the request is
        # still queued until 80.  The queue stage sits deeper in the system,
        # so it owns every instant it covers — including the overlap.
        trace = [
            span("client.request", 0, 100, 1),
            span("net.attempt", 0, 60, 2, parent=1),
            span("fleet.queue", 10, 80, 3, parent=1),
        ]
        path = critical_path(trace)
        assert segments_of(path) == [
            ("net.attempt", 0, 10),
            ("fleet.queue", 10, 80),
            ("client.request", 80, 100),
        ]

    def test_markers_and_out_of_window_spans_never_own_time(self):
        trace = [
            span("client.request", 10, 50, 1),
            span("gw.admission", 20, 20, 2, parent=1),  # zero-width marker
            span("net.backoff", 60, 70, 3, parent=1),  # after the root ends
        ]
        path = critical_path(trace)
        assert segments_of(path) == [("client.request", 10, 50)]

    def test_spans_are_clipped_to_the_root_window(self):
        trace = [
            span("client.request", 10, 50, 1),
            span("fleet.queue", 0, 30, 2, parent=1),
        ]
        assert segments_of(critical_path(trace)) == [
            ("fleet.queue", 10, 30),
            ("client.request", 30, 50),
        ]

    def test_malformed_traces_return_none(self):
        assert critical_path([]) is None
        two_roots = [span("a.b", 0, 10, 1), span("c.d", 0, 10, 2)]
        assert critical_path(two_roots) is None
        assert find_root(two_roots) is None

    def test_custom_depth_overrides_the_default_layering(self):
        trace = [
            span("client.request", 0, 100, 1),
            span("net.attempt", 0, 60, 2, parent=1),
            span("fleet.queue", 10, 80, 3, parent=1),
        ]
        flat = critical_path(trace, depth=lambda name: 0)
        # With every stage in one layer, latest-start (call-stack) wins the
        # overlap instead: the queue still takes [10, 60] but the attempt
        # keeps nothing of it... the queue started later, so it wins there
        # too; the difference shows after 60 where only the queue remains.
        assert ("fleet.queue", 10, 80) in segments_of(flat)

    def test_stage_depth_prefix_lookup(self):
        assert stage_depth("client.request") == 0
        assert stage_depth("net.attempt") == stage_depth("net.backoff")
        assert stage_depth("fleet.queue") > stage_depth("net.attempt")
        assert stage_depth("card.service") > stage_depth("fleet.queue")
        assert stage_depth("card.fpga.execute") > stage_depth("card.service")
        assert stage_depth("unknown.stage") == 0

    def test_segment_and_path_accounting(self):
        assert Segment("x.y", 5, 12).duration_ns == 7
        trace = [
            span("client.request", 0, 50, 1),
            span("fleet.queue", 10, 30, 2, parent=1),
        ]
        path = critical_path(trace)
        assert path.by_stage() == {"client.request": 30, "fleet.queue": 20}


class TestAggregation:
    def _spans(self):
        out = []
        for index, duration in enumerate((100, 200, 400)):
            trace_id = index + 1
            root_id = index * 10 + 1
            out.append(
                FakeSpan("client.request", trace_id, root_id, None, 0, duration)
            )
            out.append(
                FakeSpan(
                    "fleet.queue", trace_id, root_id + 1, root_id, 10, duration - 10
                )
            )
        return out

    def test_critical_paths_and_top_ordering(self):
        paths = critical_paths(self._spans())
        assert [path.trace_id for path in paths] == [1, 2, 3]
        top = top_critical_paths(self._spans(), k=2)
        assert [path.duration_ns for path in top] == [400, 200]

    def test_where_filter_scopes_by_root(self):
        kept = critical_paths(
            self._spans(), where=lambda root: root.end_ns >= 200
        )
        assert [path.trace_id for path in kept] == [2, 3]

    def test_dominant_stages_over_the_slowest_fraction(self):
        # top_fraction=0.34 keeps only the slowest of the three traces.
        dominant = dominant_stages(self._spans(), top_fraction=0.34)
        assert dominant[0] == ("fleet.queue", 380)
        assert dict(dominant)["client.request"] == 20
        with pytest.raises(ValueError):
            dominant_stages(self._spans(), top_fraction=0.0)
        assert dominant_stages([], top_fraction=0.5) == []

    def test_stage_breakdown_totals_and_order(self):
        breakdown = stage_breakdown(self._spans())
        assert list(breakdown) == ["client.request", "fleet.queue"]
        assert breakdown["fleet.queue"]["count"] == 3
        assert breakdown["fleet.queue"]["total_ns"] == 80 + 180 + 380
        assert breakdown["client.request"]["p95_ns"] == 400


@st.composite
def random_trace(draw):
    """One root plus arbitrary child spans, all inside a padded window."""
    root_end = draw(st.integers(min_value=1, max_value=1_000))
    spans = [FakeSpan("client.request", 1, 1, None, 0, root_end)]
    names = ("net.attempt", "net.link.transit", "fleet.queue", "card.service")
    children = draw(
        st.lists(
            st.tuples(
                st.sampled_from(names),
                st.integers(min_value=-100, max_value=1_100),
                st.integers(min_value=0, max_value=400),
            ),
            max_size=8,
        )
    )
    for index, (name, start, length) in enumerate(children):
        spans.append(FakeSpan(name, 1, index + 2, 1, start, start + length))
    return spans


class TestTilingProperty:
    @settings(max_examples=200, deadline=None)
    @given(random_trace())
    def test_segments_tile_the_root_window_exactly(self, trace):
        path = critical_path(trace)
        root = trace[0]
        assert path.duration_ns == root.end_ns - root.start_ns
        # Chronological, gap-free, overlap-free, exactly covering the window.
        cursor = root.start_ns
        for segment in path.segments:
            assert segment.start_ns == cursor
            assert segment.end_ns > segment.start_ns
            cursor = segment.end_ns
        assert cursor == root.end_ns
        # Adjacent segments are merged, so no two neighbours share a name.
        names = [segment.name for segment in path.segments]
        assert all(a != b for a, b in zip(names, names[1:]))
        assert sum(path.by_stage().values()) == path.duration_ns
